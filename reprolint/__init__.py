"""Checkout shim: makes ``python -m reprolint`` work from the repo root.

The real package lives in ``tools/reprolint`` (and installs from there
via ``pip install -e .``); this shim points this package's ``__path__``
at it and executes the real ``__init__`` in place, so an uninstalled
checkout gets the identical package — submodules, ``__main__`` and all
— without touching ``PYTHONPATH``.
"""

import os

_REAL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools", "reprolint"
)
__path__ = [_REAL]

with open(os.path.join(_REAL, "__init__.py"), encoding="utf-8") as _handle:
    exec(compile(_handle.read(), os.path.join(_REAL, "__init__.py"), "exec"), globals())
