#!/usr/bin/env python3
"""The power/reliability tradeoff knobs the paper builds on.

Section I: power management and aging are no longer conflicting — the
drowsy state saves leakage *and* suppresses NBTI stress. This example
quantifies the coupling with the calibrated models:

1. drowsy retention voltage: lower Vdd_low leaks less and ages less,
   down to the retention limit;
2. breakeven time: an aggressive (short) breakeven converts more idle
   gaps into sleep — both energy and lifetime improve together until
   transition energy eats the gains;
3. the cell-level view: SNM degradation curves for different sleep
   fractions, straight from the characterization framework.

Run:  python examples/energy_aging_tradeoff.py
"""

from __future__ import annotations

from repro import (
    ArchitectureConfig,
    CacheGeometry,
    CharacterizationFramework,
    NBTIModel,
    WorkloadGenerator,
    profile_for,
    simulate,
)
from repro.aging.lut import LifetimeLUT
from repro.utils.tables import format_table


def retention_voltage_study() -> None:
    """Drowsy voltage vs aging suppression (the eta knob)."""
    rows = []
    for vdd_low in (0.95, 0.80, 0.66, 0.50, 0.40):
        model = NBTIModel(vdd_low=vdd_low)
        rows.append(
            [
                vdd_low,
                model.sleep_stress_factor,
                model.sleep_recovery_efficiency,
            ]
        )
    print(
        format_table(
            ["Vdd_low [V]", "drowsy stress γ", "recovery η"],
            rows,
            float_fmt=".3f",
            title="retention-voltage sensitivity (calibrated point: 0.66 V)",
        )
    )


def breakeven_study() -> None:
    """Energy and lifetime vs the programmed breakeven time."""
    geometry = CacheGeometry(16 * 1024, 16)
    trace = WorkloadGenerator(geometry, num_windows=600).generate(
        profile_for("dijkstra")
    )
    lut = LifetimeLUT.default()
    rows = []
    for breakeven in (5, 10, 20, 40, 80, 160, 320):
        config = ArchitectureConfig(
            geometry,
            num_banks=4,
            policy="probing",
            update_period_cycles=trace.horizon // 16,
            breakeven_override=breakeven,
        )
        result = simulate(config, trace, lut)
        rows.append(
            [
                breakeven,
                100 * result.energy_savings,
                result.lifetime_years,
                100 * result.average_idleness,
            ]
        )
    print()
    print(
        format_table(
            ["breakeven [cyc]", "Esav [%]", "lifetime [y]", "useful idleness [%]"],
            rows,
            title="breakeven sweep — dijkstra, 16kB, M=4, probing",
        )
    )
    print("Short breakeven: more gaps become sleep (good for both metrics)")
    print("until wake-up transitions dominate; the computed optimum sits at")
    print(f"{ArchitectureConfig(geometry, num_banks=4).breakeven()} cycles for this bank size.")


def cell_curves() -> None:
    """SNM-vs-time for three sleep fractions."""
    framework = CharacterizationFramework()
    print()
    print("read SNM degradation of the calibrated 6T cell [mV]:")
    header = "  t [years]:" + "".join(f"{t:>8.1f}" for t in (0, 2, 4, 6, 8, 10))
    print(header)
    for psleep in (0.0, 0.42, 0.68):
        snms = [1000 * framework.snm_at(t, 0.5, psleep) for t in (0, 2, 4, 6, 8, 10)]
        life = framework.lifetime_years(0.5, psleep)
        values = "".join(f"{snm:>8.1f}" for snm in snms)
        print(f"  Psleep={psleep:4.2f}{values}   -> dead at {life:.2f} y")


def main() -> None:
    retention_voltage_study()
    breakeven_study()
    cell_curves()


if __name__ == "__main__":
    main()
