#!/usr/bin/env python3
"""Design-space exploration: lifetime vs banks, policy and update count.

Reproduces, for a single benchmark, the architectural exploration of the
paper's Section IV-B3 (number of banks) plus a study the paper only
alludes to: how many re-indexing updates probing and scrambling need
before the idleness distribution — and therefore lifetime — converges.

Run:  python examples/lifetime_exploration.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import (
    ArchitectureConfig,
    CacheGeometry,
    WorkloadGenerator,
    profile_for,
    simulate,
)
from repro.utils.tables import format_table


def bank_sweep(geometry, trace) -> None:
    """Lifetime vs M for static and probing indexing (Table IV's axis)."""
    rows = []
    for banks in (1, 2, 4, 8, 16):
        cells: list = [banks]
        for policy in ("static", "probing"):
            if policy != "static" and banks == 1:
                cells.extend([None, None])
                continue
            config = ArchitectureConfig(
                geometry,
                num_banks=banks,
                policy=policy,
                power_managed=banks > 1,
                update_period_cycles=(
                    trace.horizon // 32 if policy != "static" else None
                ),
            )
            result = simulate(config, trace)
            cells.extend([result.lifetime_years, 100 * result.average_idleness])
        rows.append(cells)
    print(
        format_table(
            ["M", "LT static [y]", "idle [%]", "LT probing [y]", "idle' [%]"],
            rows,
            title=f"bank-count sweep — {trace.name}",
        )
    )


def update_convergence(geometry, trace) -> None:
    """How many updates until dynamic indexing reaches its full benefit."""
    rows = []
    for updates in (2, 4, 8, 16, 32, 64):
        cells: list = [updates]
        for policy in ("probing", "scrambling"):
            config = ArchitectureConfig(
                geometry,
                num_banks=4,
                policy=policy,
                update_period_cycles=max(1, trace.horizon // updates),
            )
            result = simulate(config, trace)
            cells.append(result.lifetime_years)
        rows.append(cells)
    print()
    print(
        format_table(
            ["updates", "LT probing [y]", "LT scrambling [y]"],
            rows,
            title="update-count convergence (probing is uniform once "
            "updates >= M; scrambling approaches it as 1/sqrt(N))",
        )
    )


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "adpcm.dec"
    geometry = CacheGeometry(16 * 1024, 16)
    trace = WorkloadGenerator(geometry, num_windows=800).generate(
        profile_for(benchmark)
    )
    bank_sweep(geometry, trace)
    update_convergence(geometry, trace)


if __name__ == "__main__":
    main()
