#!/usr/bin/env python3
"""Quickstart: simulate one benchmark on the paper's reference cache.

Builds the paper's reference configuration (16kB direct-mapped cache,
16-byte lines, M = 4 uniform banks), generates the synthetic `sha`
workload, and compares three architectures:

* the monolithic, unmanaged cache (the paper's baseline);
* a conventional power-managed partitioned cache (static indexing);
* the paper's proposal: partitioned + probing dynamic indexing.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ArchitectureConfig,
    CacheGeometry,
    WorkloadGenerator,
    profile_for,
    simulate,
)


def main() -> None:
    geometry = CacheGeometry(size_bytes=16 * 1024, line_size=16)

    # Synthetic MediaBench-like workload, calibrated to the paper's
    # Table I idleness signature for `sha`.
    generator = WorkloadGenerator(geometry, num_windows=800)
    trace = generator.generate(profile_for("sha"))
    print(
        f"workload: {trace.name}, {len(trace):,} accesses over "
        f"{trace.horizon:,} cycles ({trace.access_density:.2f}/cycle)"
    )

    monolithic = ArchitectureConfig(geometry).monolithic()
    static = ArchitectureConfig(geometry, num_banks=4, policy="static")
    probing = ArchitectureConfig(
        geometry,
        num_banks=4,
        policy="probing",
        update_period_cycles=trace.horizon // 16,
    )

    print()
    for label, config in [
        ("monolithic (baseline)", monolithic),
        ("partitioned, static", static),
        ("partitioned + probing", probing),
    ]:
        result = simulate(config, trace)
        idle = ", ".join(f"{v:.0%}" for v in result.bank_idleness)
        print(f"{label:>22}: lifetime = {result.lifetime_years:5.2f} years   "
              f"Esav = {result.energy_savings:6.1%}   "
              f"hit rate = {result.hit_rate:.1%}   "
              f"bank idleness = [{idle}]")

    print()
    print("The static partition barely helps lifetime: aging follows the")
    print("*least* idle bank. Probing re-indexing spreads the idleness, so")
    print("every bank recovers equally and the cache outlives the baseline.")


if __name__ == "__main__":
    main()
