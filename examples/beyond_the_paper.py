#!/usr/bin/env python3
"""Beyond the paper: baselines and second-order effects.

Four studies the paper motivates but does not evaluate, built on the
same substrate:

1. **Granularity** — the paper vs its own upper bound: line-granularity
   dynamic indexing ([7], requires touching the SRAM array) against the
   paper's bank-granularity scheme (memory-compiler friendly).
2. **Content flipping** ([11]/[15]) — the value-axis mitigation, shown
   to be orthogonal (and ineffective for balanced cache contents).
3. **Process variation** — lifetime distributions once every cell draws
   its own Vth; the weakest-cell effect vs array size.
4. **Self-heating** — hot banks age faster, compounding the imbalance
   the paper fights.

Run:  python examples/beyond_the_paper.py
"""

from __future__ import annotations

from repro import ArchitectureConfig, CacheGeometry, WorkloadGenerator, profile_for, simulate
from repro.aging.cell import CharacterizationFramework
from repro.aging.flipping import flip_gain
from repro.aging.lut import LifetimeLUT
from repro.aging.thermal import thermal_bank_lifetimes
from repro.aging.variation import VariationModel
from repro.finegrain import FineGrainConfig, FineGrainSimulator
from repro.utils.tables import format_table


def granularity_study(geometry, trace, lut) -> None:
    rows = []
    for banks in (4, 8, 16):
        config = ArchitectureConfig(
            geometry, num_banks=banks, policy="probing",
            update_period_cycles=trace.horizon // 16,
        )
        result = simulate(config, trace, lut)
        rows.append([f"banked M={banks} (paper)", result.lifetime_years,
                     100 * result.energy_savings])
    for policy, label in (("static", "drowsy lines [20]"), ("probing", "dyn. indexing [7]")):
        config = FineGrainConfig(
            geometry, policy=policy,
            update_period_cycles=trace.horizon // 32 if policy != "static" else None,
        )
        result = FineGrainSimulator(config, lut).run(trace)
        rows.append([label, result.lifetime_years, 100 * result.energy_savings])
    print(format_table(
        ["architecture", "lifetime [y]", "Esav [%]"], rows,
        title=f"granularity study — {trace.name}",
    ))
    print("Fine grain catches more idleness (lifetime upper bound) but")
    print("saves no dynamic energy and modifies the array internals.\n")


def flipping_study(framework) -> None:
    rows = [[p0, flip_gain(framework, p0)] for p0 in (0.5, 0.7, 0.9, 0.99)]
    print(format_table(
        ["content p0", "flip gain [x]"], rows,
        title="content flipping ([11]/[15]) — value-axis mitigation",
    ))
    print("Gain vanishes for balanced content: caches need the idleness axis.\n")


def variation_study(framework) -> None:
    model = VariationModel(framework, sigma_vth=0.01, offset_grid_points=5)
    rows = []
    for cells in (512, 2048, 8192):
        dist = model.bank_lifetime_distribution(cells, psleep=0.42, samples=60)
        rows.append([cells, dist.mean, dist.yield_lifetime])
    print(format_table(
        ["cells/bank", "mean LT [y]", "99%-yield LT [y]"], rows,
        title="process variation (sigma = 10 mV) at Psleep = 0.42 "
              "(nominal 4.28 y)",
    ))
    print("Bigger arrays die at their weakest cell's pace; wear-leveling")
    print("gains persist as a multiplicative factor on the distribution.\n")


def thermal_study() -> None:
    unbalanced = [0.02, 0.99, 0.99, 0.04]
    balanced = [0.51] * 4
    rows = [
        ["static (unbalanced)", float(thermal_bank_lifetimes(unbalanced).min())],
        ["re-indexed (balanced)", float(thermal_bank_lifetimes(balanced).min())],
    ]
    print(format_table(
        ["configuration", "thermal-aware lifetime [y]"], rows,
        title="self-heating (45°C ambient, 35°C activity rise)",
    ))
    print("Heat concentrates where accesses do — rotation cools the hot")
    print("set while it rests, compounding the paper's benefit.")


def main() -> None:
    geometry = CacheGeometry(16 * 1024, 16)
    trace = WorkloadGenerator(geometry, num_windows=600).generate(
        profile_for("adpcm.dec")
    )
    lut = LifetimeLUT.default()
    framework = CharacterizationFramework()
    granularity_study(geometry, trace, lut)
    flipping_study(framework)
    variation_study(framework)
    thermal_study()


if __name__ == "__main__":
    main()
