#!/usr/bin/env python3
"""Bring your own workload: trace files and hand-built traces.

The library is not tied to the bundled MediaBench-like profiles — any
timed address stream drives the same architecture. This example:

1. builds a pathological "hot bank" trace by hand (all accesses land in
   one bank) — the worst case for a conventional partition and the best
   showcase for dynamic indexing;
2. saves/loads it through the text trace format, showing the on-disk
   interchange point for users with real traces (e.g. from gem5 or pin);
3. runs both simulation engines on it and checks they agree;
4. repeats the comparison on a 4-way set-associative geometry — the
   vectorized engine covers those too, so ``engine="auto"`` is always
   the right default.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import ArchitectureConfig, CacheGeometry, Trace, simulate
from repro.trace.io import load_trace, save_trace


def build_hot_bank_trace(geometry: CacheGeometry, cycles_total: int = 400_000) -> Trace:
    """All activity in bank 0's index range, with long global pauses."""
    rng = np.random.default_rng(99)
    bank_sets = geometry.num_sets // 4
    cycles = []
    addresses = []
    cycle = 0
    while cycle < cycles_total:
        # A burst of 200 accesses to bank 0, every ~4 cycles ...
        for _ in range(200):
            index = int(rng.integers(0, bank_sets))  # bank 0's sets
            addresses.append(index * geometry.line_size)
            cycles.append(cycle)
            cycle += int(rng.integers(2, 6))
        # ... then the whole cache idles for ~2000 cycles.
        cycle += 2000
    return Trace(
        np.asarray(cycles, dtype=np.int64),
        np.asarray(addresses, dtype=np.int64),
        horizon=cycle + 1,
        name="hot-bank",
    )


def main() -> None:
    geometry = CacheGeometry(16 * 1024, 16)
    trace = build_hot_bank_trace(geometry)

    # Round-trip through the interchange format.
    with tempfile.NamedTemporaryFile(suffix=".trc", delete=False) as handle:
        path = handle.name
    save_trace(trace, path)
    trace = load_trace(path)
    print(f"loaded {len(trace):,} accesses from {path}")

    static = ArchitectureConfig(geometry, num_banks=4, policy="static")
    probing = ArchitectureConfig(
        geometry, num_banks=4, policy="probing",
        update_period_cycles=trace.horizon // 8,
    )

    for label, config in (("static", static), ("probing", probing)):
        fast = simulate(config, trace, engine="fast")
        reference = simulate(config, trace, engine="reference")
        assert fast.bank_stats == reference.bank_stats, "engines disagree!"
        idle = ", ".join(f"{v:.0%}" for v in fast.bank_idleness)
        print(
            f"{label:>8}: lifetime {fast.lifetime_years:5.2f} y, "
            f"bank idleness [{idle}] (engines agree)"
        )

    print()
    print("Under static indexing bank 0 never rests while banks 1-3 sleep")
    print("almost permanently — the cache dies at bank 0's pace. Probing")
    print("rotates the hot set across all four banks, recovering most of")
    print("the lifetime that the idleness makes available.")

    # The same trace on a 4-way set-associative variant: the fast
    # engine (engine="auto") handles associativity too, bit-identically
    # to the behavioral reference.
    sa_geometry = CacheGeometry(16 * 1024, 16, ways=4)
    sa_config = ArchitectureConfig(
        sa_geometry, num_banks=4, policy="probing",
        update_period_cycles=trace.horizon // 8,
    )
    auto = simulate(sa_config, trace, engine="auto")
    reference = simulate(sa_config, trace, engine="reference")
    assert auto.bank_stats == reference.bank_stats, "engines disagree!"
    print()
    print(
        f"4-way variant: lifetime {auto.lifetime_years:5.2f} y, "
        f"hit rate {auto.hit_rate:.1%} (fast and reference engines agree)"
    )


if __name__ == "__main__":
    main()
