"""Tests for the shared trace-plan layer and the batched idleness kernel.

Three contracts are pinned here:

* :func:`~repro.power.idleness.batch_stats_from_sorted_accesses` equals
  the per-bank :func:`~repro.power.idleness.stats_from_access_cycles`
  oracle for every bank and every breakeven in the vector;
* :class:`~repro.core.plan.TracePlan` caches are keyed by exactly the
  configuration fields each layer depends on, and sharing a plan across
  heterogeneous configurations never changes a result;
* a seeded fuzz loop holds FastSimulator-with-plan to the
  event-by-event ReferenceSimulator over ~50 random
  (trace, geometry, policy, period, ways, breakeven) combinations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator, run_breakeven_group
from repro.core.plan import TracePlan, ensure_plan
from repro.core.simulator import ReferenceSimulator
from repro.errors import SimulationError
from repro.power.idleness import (
    batch_stats_from_sorted_accesses,
    stats_from_access_cycles,
)
from repro.trace.trace import Trace
from tests.conftest import make_random_trace
from tests.test_engines import assert_results_equal


def make_sorted_stream(rng, num_banks, horizon):
    """Random bank-sorted access stream: (sorted_cycles, splits)."""
    per_bank = []
    for _ in range(num_banks):
        count = int(rng.integers(0, 40))
        cycles = np.sort(rng.choice(horizon, size=count, replace=False))
        per_bank.append(cycles.astype(np.int64))
    splits = np.concatenate(([0], np.cumsum([c.size for c in per_bank])))
    sorted_cycles = (
        np.concatenate(per_bank) if per_bank else np.empty(0, dtype=np.int64)
    )
    return sorted_cycles, splits.astype(np.int64), per_bank


class TestBatchIdlenessKernel:
    def test_matches_oracle_per_bank_and_breakeven(self):
        rng = np.random.default_rng(7)
        horizon = 5000
        sorted_cycles, splits, per_bank = make_sorted_stream(rng, 6, horizon)
        breakevens = [1, 7, 50, 400, horizon + 1]
        batches = batch_stats_from_sorted_accesses(
            sorted_cycles, splits, breakevens, 0, horizon
        )
        assert len(batches) == len(breakevens)
        for breakeven, stats in zip(breakevens, batches):
            for bank, bank_cycles in enumerate(per_bank):
                expected = stats_from_access_cycles(
                    bank_cycles, breakeven, 0, horizon
                )
                assert stats[bank] == expected, (bank, breakeven)

    def test_empty_stream_and_empty_banks(self):
        empty = np.empty(0, dtype=np.int64)
        [stats] = batch_stats_from_sorted_accesses(
            empty, np.array([0, 0, 0]), [10], 0, 1000
        )
        expected = stats_from_access_cycles(empty, 10, 0, 1000)
        assert stats == [expected, expected]

    def test_nonzero_start_cycle(self):
        cycles = np.array([120, 150, 400], dtype=np.int64)
        [stats] = batch_stats_from_sorted_accesses(
            cycles, np.array([0, 3]), [25], 100, 500
        )
        assert stats == [stats_from_access_cycles(cycles, 25, 100, 500)]

    def test_rejects_non_monotonic_bank_segment(self):
        cycles = np.array([5, 5], dtype=np.int64)
        with pytest.raises(SimulationError):
            batch_stats_from_sorted_accesses(cycles, np.array([0, 2]), [10], 0, 100)

    def test_rejects_out_of_window(self):
        cycles = np.array([100], dtype=np.int64)
        with pytest.raises(SimulationError):
            batch_stats_from_sorted_accesses(cycles, np.array([0, 1]), [10], 0, 100)

    def test_rejects_bad_splits(self):
        cycles = np.array([1, 2], dtype=np.int64)
        with pytest.raises(SimulationError):
            batch_stats_from_sorted_accesses(cycles, np.array([0, 1]), [10], 0, 100)

    def test_huge_horizon_stays_integer_exact(self):
        """Sleep accumulation past 2**53 cycles must not round (the same
        bug class the fine-grain float64 bincount had)."""
        horizon = 2**55
        cycles = np.array([2**54 + 1], dtype=np.int64)
        [stats] = batch_stats_from_sorted_accesses(
            cycles, np.array([0, 1]), [3], 0, horizon
        )
        leading = 2**54 + 1
        trailing = horizon - (2**54 + 1) - 1
        assert stats[0].sleep_cycles == (leading - 3) + (trailing - 3)
        assert stats[0].idle_cycles == leading + trailing


class TestTracePlanCaching:
    def test_decode_is_cached_by_bit_split(self, random_trace):
        plan = TracePlan(random_trace)
        index_a, tag_a = plan.decode(4, 10)
        index_b, tag_b = plan.decode(4, 10)
        assert index_a is index_b and tag_a is tag_b
        index_c, _ = plan.decode(5, 9)
        assert index_c is not index_a

    def test_epoch_starts_shared_across_policies(self, random_trace):
        plan = TracePlan(random_trace)
        geometry = CacheGeometry(8 * 1024, 16)
        probing = ArchitectureConfig(
            geometry, num_banks=4, policy="probing", update_period_cycles=5000
        )
        scrambling = ArchitectureConfig(
            geometry, num_banks=8, policy="scrambling", update_period_cycles=5000
        )
        assert plan.epoch_starts(probing)[0] is plan.epoch_starts(scrambling)[0]

    def test_static_schedule_key_is_none(self, random_trace):
        plan = TracePlan(random_trace)
        geometry = CacheGeometry(8 * 1024, 16)
        static = ArchitectureConfig(
            geometry, num_banks=4, policy="static", update_period_cycles=5000
        )
        assert plan.schedule_key(static) is None
        boundaries, starts = plan.epoch_starts(static)
        assert boundaries.size == 0
        assert starts.tolist() == [0, len(random_trace)]

    def test_single_bank_skips_the_sort(self, random_trace):
        plan = TracePlan(random_trace)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16), num_banks=1, power_managed=False
        )
        route = plan.bank_order(config)
        # Identity order: the sorted stream *is* the trace's cycle array.
        assert route.sorted_cycles is random_trace.cycles
        assert route.splits.tolist() == [0, len(random_trace)]

    def test_idle_gaps_shared_across_power_axes(self, random_trace):
        plan = TracePlan(random_trace)
        geometry = CacheGeometry(8 * 1024, 16)
        a = ArchitectureConfig(
            geometry, num_banks=4, policy="probing", update_period_cycles=5000
        )
        b = ArchitectureConfig(
            geometry,
            num_banks=4,
            policy="probing",
            update_period_cycles=5000,
            breakeven_override=50,
            power_managed=False,
        )
        assert plan.idle_gaps(a) is plan.idle_gaps(b)
        c = ArchitectureConfig(
            geometry, num_banks=8, policy="probing", update_period_cycles=5000
        )
        assert plan.idle_gaps(c) is not plan.idle_gaps(a)

    def test_idle_gaps_cache_is_bounded(self, random_trace):
        """The per-routing gap cache evicts FIFO past max_gap_routings;
        eviction costs a recompute, never a wrong result."""
        plan = TracePlan(random_trace)
        geometry = CacheGeometry(8 * 1024, 16)
        configs = [
            ArchitectureConfig(
                geometry,
                num_banks=banks,
                policy=policy,
                update_period_cycles=None if policy == "static" else 5000,
            )
            for banks in (2, 4, 8)
            for policy in ("static", "probing", "scrambling")
        ]
        assert len(configs) > TracePlan.max_gap_routings
        for config in configs:
            plan.idle_gaps(config)
        gap_entries = [
            k for k in plan._cache if isinstance(k, tuple) and k[0] == "gaps"
        ]
        assert len(gap_entries) == TracePlan.max_gap_routings
        # An evicted routing recomputes to the same values.
        first = plan.idle_gaps(configs[0])
        fresh = TracePlan(random_trace).idle_gaps(configs[0])
        assert np.array_equal(first.gap_values, fresh.gap_values)
        assert np.array_equal(first.gap_banks, fresh.gap_banks)

    def test_matches_identity_and_equality(self, random_trace):
        plan = TracePlan(random_trace)
        assert plan.matches(random_trace)
        clone = Trace(
            random_trace.cycles.copy(),
            random_trace.addresses.copy(),
            horizon=random_trace.horizon,
        )
        assert plan.matches(clone)
        assert not plan.matches(make_random_trace(seed=1234))

    def test_mismatched_plan_refused(self, lut, random_trace):
        other = make_random_trace(seed=999)
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4)
        with pytest.raises(SimulationError):
            FastSimulator(config, lut, plan=TracePlan(other)).run(random_trace)

    def test_ensure_plan_builds_when_missing(self, random_trace):
        plan = ensure_plan(None, random_trace)
        assert plan.matches(random_trace)
        assert ensure_plan(plan, random_trace) is plan


class TestBreakevenGroup:
    def test_group_equals_independent_runs(self, lut, random_trace):
        base = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_period_cycles=9000,
        )
        from dataclasses import replace

        configs = [
            replace(base, breakeven_override=b) for b in (None, 5, 60, 700)
        ]
        plan = TracePlan(random_trace)
        grouped = run_breakeven_group(configs, random_trace, lut=lut, plan=plan)
        for config, result in zip(configs, grouped):
            solo = FastSimulator(config, lut).run(random_trace)
            assert result.bank_stats == solo.bank_stats
            assert result.cache_stats.hits == solo.cache_stats.hits
            assert result.energy_pj == solo.energy_pj
            assert result.lifetime_years == solo.lifetime_years
            assert result.config == config

    def test_rejects_heterogeneous_group(self, lut, random_trace):
        geometry = CacheGeometry(8 * 1024, 16)
        configs = [
            ArchitectureConfig(geometry, num_banks=4),
            ArchitectureConfig(geometry, num_banks=2),
        ]
        with pytest.raises(SimulationError):
            run_breakeven_group(configs, random_trace, lut=lut)

    def test_empty_group(self, lut, random_trace):
        assert run_breakeven_group([], random_trace, lut=lut) == []

    def test_gap_structure_shared_across_groups(self, lut, random_trace):
        """Separate groups with the same routing (here: a power_managed
        axis) reuse one cached idle-gap structure."""
        from dataclasses import replace

        base = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_period_cycles=9000,
        )
        plan = TracePlan(random_trace)
        run_breakeven_group(
            [replace(base, breakeven_override=b) for b in (5, 60)],
            random_trace,
            lut=lut,
            plan=plan,
        )
        sections_after_first = len(plan)
        results = run_breakeven_group(
            [replace(base, power_managed=False)], random_trace, lut=lut, plan=plan
        )
        assert len(plan) == sections_after_first  # nothing recomputed
        assert results[0].bank_stats == (
            FastSimulator(replace(base, power_managed=False), lut)
            .run(random_trace)
            .bank_stats
        )


def random_config(rng) -> ArchitectureConfig:
    """One random-but-valid architecture for the fuzz loop."""
    size = int(rng.choice([4, 8, 16])) * 1024
    line = int(rng.choice([16, 32]))
    ways = int(rng.choice([1, 1, 2, 4]))
    geometry = CacheGeometry(size, line, ways=ways)
    bank_choices = [m for m in (1, 2, 4, 8) if m <= geometry.num_sets]
    num_banks = int(rng.choice(bank_choices))
    policy = "static" if num_banks == 1 else str(
        rng.choice(["static", "probing", "scrambling"])
    )
    period = None
    if policy != "static":
        period = int(rng.integers(500, 15000))
    breakeven = None if rng.random() < 0.4 else int(rng.integers(1, 500))
    return ArchitectureConfig(
        geometry,
        num_banks=num_banks,
        policy=policy,
        power_managed=bool(rng.random() < 0.85),
        update_period_cycles=period,
        breakeven_override=breakeven,
    )


class TestDifferentialFuzz:
    def test_fifty_random_combos_match_reference(self, lut):
        """The PR's safety net: FastSimulator sharing one plan per trace
        must agree with the reference engine on every measured field,
        over ~50 random (trace, geometry, policy, period, ways,
        breakeven) combinations."""
        rng = np.random.default_rng(20110311)
        combos_per_trace = 10
        for trace_round in range(5):
            trace = make_random_trace(
                seed=int(rng.integers(0, 2**31)),
                length=int(rng.integers(150, 400)),
                max_gap=int(rng.integers(5, 120)),
            )
            plan = TracePlan(trace)  # shared across this trace's combos
            for _ in range(combos_per_trace):
                config = random_config(rng)
                fast = FastSimulator(config, lut, plan=plan).run(trace)
                reference = ReferenceSimulator(config, lut).run(trace)
                assert_results_equal(reference, fast)
