"""Engine registry: views, misuse, dispatch, and the finegrain engine
joining sweeps, campaigns, the runner and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.sweep import sweep
from repro.cache.geometry import CacheGeometry
from repro.campaign import CampaignSpec, TraceSpec, run_campaign
from repro.cli import main
from repro.core.config import ArchitectureConfig
from repro.core.engine import (
    Engine,
    engine_names,
    get_engine,
    register_engine,
    registered_engines,
    resolve_engine,
    result_family,
    unregister_engine,
    validate_engine,
)
from repro.core.simulator import ReferenceSimulator, simulate
from repro.core.plan import TracePlan
from repro.errors import ConfigurationError, SimulationError, UnknownEngineError
from repro.finegrain import FineGrainConfig, FineGrainSimulator
from tests.conftest import make_random_trace


@pytest.fixture()
def config():
    return ArchitectureConfig(
        CacheGeometry(4 * 1024, 16),
        num_banks=4,
        policy="probing",
        update_period_cycles=5000,
    )


@pytest.fixture()
def trace():
    return make_random_trace(seed=11, length=800)


class RecordingEngine(Engine):
    """Custom engine for registry tests: reference + a call counter."""

    name = "recording"
    description = "test engine wrapping the reference oracle"
    auto_eligible = False

    def __init__(self):
        self.calls = 0

    def supports(self, config):
        return True

    def run(self, config, trace, lut=None, plan=None):
        self.calls += 1
        return ReferenceSimulator(config, lut, plan=plan).run(trace)


class RejectingEngine(Engine):
    name = "rejecting"
    description = "supports nothing"
    requires = "the impossible"

    def supports(self, config):
        return False

    def run(self, config, trace, lut=None, plan=None):  # pragma: no cover
        raise AssertionError("must never run")


@pytest.fixture()
def scratch_registry():
    """Let a test register engines and leave the global registry clean."""
    added = []

    def add(engine, **kwargs):
        register_engine(engine, **kwargs)
        added.append(engine.name)
        return engine

    yield add
    for name in added:
        try:
            unregister_engine(name)
        except UnknownEngineError:
            pass


class TestRegistryViews:
    def test_builtins_registered(self):
        assert engine_names() == (
            "auto", "compiled", "estimate", "fast", "finegrain", "reference"
        )
        assert [e.name for e in registered_engines()] == [
            "compiled",
            "estimate",
            "fast",
            "finegrain",
            "reference",
        ]

    def test_engine_names_is_a_live_view(self, scratch_registry):
        scratch_registry(RecordingEngine())
        assert "recording" in engine_names()
        import repro.core

        assert "recording" in repro.core.ENGINE_NAMES
        from repro.core import simulator

        assert "recording" in simulator.ENGINE_NAMES

    def test_validate_accepts_auto_and_registered(self):
        for name in engine_names():
            validate_engine(name)

    def test_result_family(self):
        assert result_family("auto") == "banked"
        assert result_family("fast") == "banked"
        assert result_family("compiled") == "banked"
        assert result_family("reference") == "banked"
        assert result_family("finegrain") == "finegrain"


class TestRegistryMisuse:
    def test_duplicate_name_rejected(self, scratch_registry):
        scratch_registry(RecordingEngine())
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(RecordingEngine())

    def test_duplicate_builtin_rejected(self):
        class Impostor(Engine):
            name = "fast"

        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(Impostor())

    def test_replace_allows_override(self, scratch_registry):
        first = scratch_registry(RecordingEngine())
        second = RecordingEngine()
        register_engine(second, replace=True)
        assert get_engine("recording") is second
        assert get_engine("recording") is not first

    def test_reserved_and_empty_names(self):
        class Nameless(Engine):
            name = ""

        class Auto(Engine):
            name = "auto"

        with pytest.raises(ConfigurationError):
            register_engine(Nameless())
        with pytest.raises(ConfigurationError):
            register_engine(Auto())

    def test_unknown_engine_error_lists_registered_names(self, config, trace):
        with pytest.raises(UnknownEngineError) as excinfo:
            simulate(config, trace, engine="warp")
        message = str(excinfo.value)
        for name in ("auto", "compiled", "fast", "finegrain", "reference"):
            assert name in message
        # Back-compat: it is still a ValueError.
        assert isinstance(excinfo.value, ValueError)

    def test_explicit_engine_that_rejects_the_config(
        self, scratch_registry, config, trace
    ):
        scratch_registry(RejectingEngine())
        with pytest.raises(SimulationError, match="the impossible"):
            simulate(config, trace, engine="rejecting")

    def test_auto_with_no_supporting_engine(self, config, monkeypatch):
        import repro.core.engine as engine_module

        rejecting = RejectingEngine()
        monkeypatch.setattr(engine_module, "_REGISTRY", {"rejecting": rejecting})
        with pytest.raises(SimulationError, match="no registered engine supports"):
            resolve_engine("auto", config)

    def test_unregister_unknown(self):
        with pytest.raises(UnknownEngineError):
            unregister_engine("never-registered")

    def test_auto_eligible_engines_must_be_banked_family(self):
        class AlienAuto(Engine):
            name = "alien"
            family = "alien"
            auto_eligible = True

        with pytest.raises(ConfigurationError, match="banked"):
            register_engine(AlienAuto())

    def test_replaced_builtin_counts_as_a_plugin_for_workers(self):
        from repro.core.engine import custom_engines, get_engine

        original = get_engine("reference")
        assert all(e.name != "reference" for e in custom_engines())

        class ShadowReference(Engine):
            name = "reference"
            description = "override"

            def supports(self, config):
                return True

            def run(self, config, trace, lut=None, plan=None):
                return original.run(config, trace, lut=lut, plan=plan)

        override = ShadowReference()
        register_engine(override, replace=True)
        try:
            shipped = custom_engines()
            assert any(e is override for e in shipped)
        finally:
            register_engine(original, replace=True)
        assert all(e.name != "reference" for e in custom_engines())


class TestDispatch:
    def test_auto_resolves_to_best_banked_engine(self, config):
        # With a compiled kernel backend loadable the compiled engine
        # outranks fast (priority 20 vs 10); numpy-only environments
        # keep resolving to fast (compiled drops to priority 5).
        from repro.kernels.engine import BACKEND

        expected = "compiled" if BACKEND else "fast"
        assert resolve_engine("auto", config).name == expected

    def test_auto_never_picks_non_eligible_engines(self, config):
        # finegrain supports this config but must not be auto-picked:
        # it simulates a different machine.
        assert get_engine("finegrain").supports(config)
        assert resolve_engine("auto", config).name != "finegrain"

    def test_fast_and_reference_bit_identical_through_registry(
        self, config, trace, lut
    ):
        fast = simulate(config, trace, lut, engine="fast")
        reference = simulate(config, trace, lut, engine="reference")
        assert fast.bank_stats == reference.bank_stats
        assert fast.cache_stats.hits == reference.cache_stats.hits
        assert fast.cache_stats.misses == reference.cache_stats.misses
        assert fast.cache_stats.flushes == reference.cache_stats.flushes
        assert fast.energy_pj == reference.energy_pj
        assert fast.lifetime == reference.lifetime
        assert fast.metrics == reference.metrics

    def test_custom_engine_runs_via_simulate_and_sweep(
        self, scratch_registry, config, trace, lut
    ):
        engine = scratch_registry(RecordingEngine())
        result = simulate(config, trace, lut, engine="recording")
        fast = simulate(config, trace, lut, engine="fast")
        assert engine.calls == 1
        assert result.bank_stats == fast.bank_stats
        grid = sweep(config, trace, {"num_banks": [2, 4]}, lut, engine="recording")
        assert engine.calls == 3
        assert len(grid) == 2

    def test_breakeven_axis_stays_grouped_only_for_group_capable_engines(
        self, config, trace, lut, scratch_registry
    ):
        engine = scratch_registry(RecordingEngine())
        axes = {"breakeven_override": [None, 5, 60]}
        batched = sweep(config, trace, axes, lut, engine="fast")
        per_point = sweep(config, trace, axes, lut, engine="recording")
        assert engine.calls == 3  # no run_group => per-point dispatch
        for a, b in zip(batched, per_point):
            assert a.result.bank_stats == b.result.bank_stats


class TestReferencePlanSupport:
    def test_reference_reads_the_memoized_decode(self, config, trace, lut):
        plan = TracePlan(trace)
        # Warm the decode cache through the plan, then make the trace's
        # address array unreadable: the planned run must not re-decode.
        geometry = config.geometry
        plan.decode(geometry.offset_bits, geometry.index_bits)
        planned = ReferenceSimulator(config, lut, plan=plan).run(trace)
        plain = ReferenceSimulator(config, lut).run(trace)
        assert planned.bank_stats == plain.bank_stats
        assert planned.cache_stats == plain.cache_stats
        assert planned.energy_pj == plain.energy_pj
        assert len(plan) >= 1  # the decode section lives in the plan

    def test_reference_rejects_mismatched_plan(self, config, lut):
        trace_a = make_random_trace(seed=1, length=100)
        trace_b = make_random_trace(seed=2, length=100)
        with pytest.raises(SimulationError):
            ReferenceSimulator(config, lut, plan=TracePlan(trace_a)).run(trace_b)


class TestFineGrainEngine:
    def test_supports_only_direct_mapped(self):
        engine = get_engine("finegrain")
        direct = ArchitectureConfig(CacheGeometry(4096, 16), num_banks=2)
        setassoc = ArchitectureConfig(CacheGeometry(4096, 16, ways=2), num_banks=2)
        events = ArchitectureConfig(
            CacheGeometry(4096, 16),
            num_banks=2,
            policy="probing",
            update_events=(100, 200),
        )
        assert engine.supports(direct)
        assert not engine.supports(setassoc)
        assert not engine.supports(events)

    def test_explicit_rejection_is_loud(self, trace, lut):
        setassoc = ArchitectureConfig(CacheGeometry(4096, 16, ways=2), num_banks=2)
        with pytest.raises(SimulationError, match="finegrain"):
            simulate(setassoc, trace, lut, engine="finegrain")

    def test_matches_the_direct_finegrain_simulator(self, config, trace, lut):
        result = simulate(config, trace, lut, engine="finegrain")
        direct = FineGrainSimulator(
            FineGrainConfig(
                config.geometry,
                policy=config.policy,
                update_period_cycles=config.update_period_cycles,
            ),
            lut,
        ).run(trace)
        assert result.template == "finegrain"
        assert len(result.bank_stats) == config.geometry.num_lines
        assert result.cache_stats.hits == direct.hits
        assert result.cache_stats.misses == direct.misses
        assert result.updates_applied == direct.updates_applied
        assert result.energy_pj == pytest.approx(direct.energy_pj, rel=1e-12)
        assert result.baseline_energy_pj == pytest.approx(
            direct.baseline_energy_pj, rel=1e-12
        )
        assert np.allclose(
            result.bank_idleness, direct.line_sleep_fraction, rtol=0, atol=0
        )
        assert result.lifetime_years == pytest.approx(
            direct.lifetime_years, rel=1e-9
        )
        assert result.metrics["line_breakeven_cycles"] == float(
            FineGrainConfig(config.geometry).breakeven()
        )

    def test_unmanaged_config_never_sleeps(self, trace, lut):
        config = ArchitectureConfig(
            CacheGeometry(4096, 16), num_banks=2, power_managed=False
        )
        result = simulate(config, trace, lut, engine="finegrain")
        assert all(s.sleep_cycles == 0 for s in result.bank_stats)
        assert result.metrics["line_breakeven_cycles"] == float(trace.horizon + 1)

    def test_sweep_with_finegrain_engine(self, config, trace, lut):
        grid = sweep(
            config,
            trace,
            {"policy": ["static", "probing"], "breakeven_override": [None, 40]},
            lut,
            engine="finegrain",
        )
        assert len(grid) == 4
        assert {p.result.template for p in grid} == {"finegrain"}
        best = grid.best("lifetime_years")
        assert best.result.lifetime_years >= 2.93

    def test_experiment_runner_with_finegrain_engine(self, lut):
        from repro.experiments.runner import ExperimentRunner
        from repro.experiments.suite import ExperimentSettings

        settings = ExperimentSettings(engine="finegrain").quick()
        runner = ExperimentRunner(settings=settings, lut=lut)
        result = runner.run("sha", 4 * 1024, 16, 4, "static")
        assert result.template == "finegrain"
        assert result.metric("idleness_spread") >= 0.0
        # Memoized: the second call returns the very same object.
        assert runner.run("sha", 4 * 1024, 16, 4, "static") is result

    def test_runner_store_never_aliases_across_families(self, lut):
        from repro.experiments.runner import ExperimentRunner
        from repro.experiments.suite import ExperimentSettings

        fine = ExperimentRunner(
            settings=ExperimentSettings(engine="finegrain").quick(), lut=lut
        )
        banked = ExperimentRunner(
            settings=ExperimentSettings(engine="fast").quick(),
            lut=lut,
            store=fine.store,
        )
        a = fine.run("sha", 4 * 1024, 16, 4, "static")
        b = banked.run("sha", 4 * 1024, 16, 4, "static")
        assert a.template == "finegrain"
        assert b.template == "banked"
        assert a.energy_pj != b.energy_pj


class TestFineGrainCampaigns:
    def spec_payload(self):
        return {
            "name": "fg-e2e",
            "engine": "finegrain",
            "traces": [
                {
                    "kind": "synthetic",
                    "params": {
                        "benchmark": "sha",
                        "num_windows": 30,
                        "size_bytes": 4096,
                    },
                }
            ],
            "base": {
                "geometry": {"size_bytes": 4096, "line_size": 16},
                "num_banks": 2,
                "policy": "probing",
                "update_period_cycles": 4000,
            },
            "axes": {"policy": ["static", "probing"]},
        }

    def test_campaign_spec_json_with_finegrain_engine_runs_end_to_end(
        self, tmp_path, lut
    ):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.spec_payload()))
        spec = CampaignSpec.load(spec_path)
        assert spec.engine == "finegrain"
        store_dir = tmp_path / "store"
        first = run_campaign(spec, directory=store_dir, lut=lut)
        assert (first.simulated, first.reused) == (2, 0)
        second = run_campaign(spec, directory=store_dir, lut=lut)
        assert (second.simulated, second.reused) == (0, 2)
        for point in second:
            assert point.record.template == "finegrain"
            rebuilt = point.record.to_result(lut)
            assert rebuilt.template == "finegrain"
            assert rebuilt.metrics["line_breakeven_cycles"] > 0

    def test_finegrain_and_banked_specs_do_not_share_store_entries(
        self, tmp_path, lut
    ):
        payload = self.spec_payload()
        spec_fine = CampaignSpec.from_dict(payload)
        payload_banked = dict(payload, engine="fast")
        spec_banked = CampaignSpec.from_dict(payload_banked)
        assert spec_fine.spec_hash() != spec_banked.spec_hash()
        store_dir = tmp_path / "store"
        run_campaign(spec_fine, directory=store_dir, lut=lut)
        banked = run_campaign(spec_banked, directory=store_dir, lut=lut)
        assert banked.simulated == 2  # no aliasing with the finegrain records

    def test_unknown_engine_in_spec_json_lists_registered_names(self, tmp_path):
        payload = dict(self.spec_payload(), engine="warp9")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(payload))
        with pytest.raises(UnknownEngineError) as excinfo:
            CampaignSpec.load(spec_path)
        message = str(excinfo.value)
        assert "warp9" in message
        for name in ("compiled", "fast", "finegrain", "reference"):
            assert name in message

    def test_unknown_engine_in_spec_reported_cleanly_by_cli(self, tmp_path, capsys):
        payload = dict(self.spec_payload(), engine="warp9")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(payload))
        code = main(["campaign", "status", str(spec_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown engine" in captured.err
        assert "finegrain" in captured.err


class TestCLI:
    def test_engines_command_lists_registry(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("auto", "compiled", "fast", "finegrain", "reference"):
            assert name in out
        assert "explicit-only" in out  # finegrain is not auto-eligible

    def test_sweep_engine_finegrain_end_to_end(self, capsys):
        code = main(
            [
                "--engine",
                "finegrain",
                "sweep",
                "--benchmark",
                "sha",
                "--size",
                "4",
                "--banks",
                "2,4",
                "--policies",
                "static,probing",
                "--windows",
                "40",
                "--updates",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "best lifetime" in out
        assert "4 points" in out


class TestExperimentSettingsValidation:
    def test_registered_engines_accepted(self):
        from repro.experiments.suite import ExperimentSettings

        for name in ("auto", "compiled", "fast", "reference", "finegrain"):
            ExperimentSettings(engine=name)

    def test_unknown_engine_is_a_configuration_error(self):
        from repro.experiments.suite import ExperimentSettings

        with pytest.raises(ConfigurationError, match="finegrain"):
            ExperimentSettings(engine="warp")
