"""Streaming (out-of-core) trace pipeline tests.

The load-bearing property here is **bit-identity**: a streamed
simulation — any chunk size, any chunk/epoch alignment — must produce
exactly the per-bank counters, cache stats and derived fields of the
one-shot engines. The fuzz classes below drive that across banks,
ways, policies, breakevens and adversarial chunkings (size 1, chunk
boundaries exactly on update boundaries, chunks bigger than the trace).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.analysis.sweep import stream_sweep, sweep
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.plan import StreamingPlan
from repro.core.simulator import simulate
from repro.core.streamsim import run_streaming_group, simulate_stream
from repro.errors import SimulationError, TraceError
from repro.power.idleness import (
    StreamingGapAccumulator,
    batch_stats_from_sorted_accesses,
)
from repro.trace.generator import WorkloadGenerator
from repro.trace.io import save_trace
from repro.trace.mediabench import profile_for
from repro.trace.stream import (
    InMemoryTraceStream,
    MmapTraceStream,
    TraceChunk,
    chunk_trace,
    open_trace_stream,
    save_trace_mmap,
    stream_to_trace,
)
from repro.trace.trace import Trace


def random_trace(rng: np.random.Generator, accesses: int, horizon_slack: int = 50) -> Trace:
    """A random valid trace with clustered gaps (some exceeding breakeven)."""
    gaps = rng.choice([1, 1, 1, 2, 3, 7, 25, 90], size=accesses).astype(np.int64)
    cycles = np.cumsum(gaps) - 1
    addresses = (rng.integers(0, 1 << 14, size=accesses) * 16).astype(np.int64)
    horizon = int(cycles[-1]) + 1 + int(rng.integers(0, horizon_slack))
    return Trace(cycles, addresses, horizon=horizon, name="fuzz")


def assert_results_identical(one, streamed, context=""):
    assert one.bank_stats == streamed.bank_stats, context
    # Field-wise: the reference oracle returns a BankedCacheStats
    # subclass whose dataclass equality is stricter than the counters.
    assert one.cache_stats.hits == streamed.cache_stats.hits, context
    assert one.cache_stats.misses == streamed.cache_stats.misses, context
    assert one.cache_stats.flushes == streamed.cache_stats.flushes, context
    assert one.updates_applied == streamed.updates_applied, context
    assert one.flush_invalidations == streamed.flush_invalidations, context
    assert one.energy_pj == streamed.energy_pj, context
    assert one.baseline_energy_pj == streamed.baseline_energy_pj, context
    assert one.lifetime_years == streamed.lifetime_years, context
    assert one.total_cycles == streamed.total_cycles, context


class TestChunking:
    def test_chunks_partition_the_trace(self):
        rng = np.random.default_rng(0)
        trace = random_trace(rng, 300)
        chunks = list(chunk_trace(trace, 64))
        total = sum(len(c) for c in chunks)
        assert total == len(trace)
        rebuilt = np.concatenate([c.cycles for c in chunks])
        assert np.array_equal(rebuilt, trace.cycles)
        for chunk in chunks:
            assert chunk.start_cycle % 64 == 0
            assert chunk.end_cycle == chunk.start_cycle + 64
            assert chunk.cycles[0] >= chunk.start_cycle
            assert chunk.cycles[-1] < chunk.end_cycle
            assert len(chunk) > 0  # empty windows are skipped

    def test_chunk_size_one(self):
        trace = Trace(np.array([0, 3, 4]), np.array([0, 16, 32]))
        chunks = list(chunk_trace(trace, 1))
        assert [c.start_cycle for c in chunks] == [0, 3, 4]
        assert all(len(c) == 1 for c in chunks)

    def test_chunk_bigger_than_trace(self):
        rng = np.random.default_rng(1)
        trace = random_trace(rng, 50)
        chunks = list(chunk_trace(trace, 10 ** 9))
        assert len(chunks) == 1
        assert np.array_equal(chunks[0].cycles, trace.cycles)

    def test_chunk_cycles_validated(self):
        trace = Trace(np.array([0]), np.array([0]))
        with pytest.raises(TraceError):
            list(chunk_trace(trace, 0))

    def test_stream_to_trace_round_trip(self):
        rng = np.random.default_rng(2)
        trace = random_trace(rng, 200)
        rebuilt = stream_to_trace(InMemoryTraceStream(trace, 33))
        assert np.array_equal(rebuilt.cycles, trace.cycles)
        assert np.array_equal(rebuilt.addresses, trace.addresses)
        assert rebuilt.horizon == trace.horizon
        assert rebuilt.name == trace.name

    def test_chunk_rejects_out_of_window_accesses(self):
        from repro.trace.stream import _validated_chunk

        with pytest.raises(TraceError):
            _validated_chunk(np.array([5]), np.array([0]), 0, 5)
        with pytest.raises(TraceError):
            _validated_chunk(np.array([3, 3]), np.array([0, 0]), 0, 5)


class TestStreamingGapAccumulator:
    def equivalence(self, seed, num_banks, breakevens, chunk_sizes):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 120))
        cycles = np.sort(rng.choice(2000, size=n, replace=False)).astype(np.int64)
        banks = rng.integers(0, num_banks, size=n).astype(np.int64)
        horizon = 2000 + int(rng.integers(0, 10))
        order = np.argsort(banks, kind="stable")
        splits = np.searchsorted(banks[order], np.arange(num_banks + 1))
        expected = batch_stats_from_sorted_accesses(
            cycles[order], splits, [b for b in breakevens if b is not None], 0, horizon
        )

        accumulator = StreamingGapAccumulator(num_banks, breakevens)
        pos = 0
        for size in chunk_sizes:
            lo, hi = pos, min(pos + size, n)
            pos = hi
            chunk_cycles = cycles[lo:hi]
            chunk_banks = banks[lo:hi]
            chunk_order = np.argsort(chunk_banks, kind="stable")
            chunk_splits = np.searchsorted(
                chunk_banks[chunk_order], np.arange(num_banks + 1)
            )
            accumulator.update(chunk_cycles[chunk_order], chunk_splits)
            if pos >= n:
                break
        batches = accumulator.finalize(horizon)
        finite = [s for b, s in zip(breakevens, batches) if b is not None]
        assert finite == expected
        # Infinite (None) thresholds never sleep but share every other counter.
        for b, stats in zip(breakevens, batches):
            if b is None:
                for bank_stats, finite_stats in zip(stats, batches[0]):
                    assert bank_stats.sleep_cycles == 0
                    assert bank_stats.useful_intervals == 0
                    assert bank_stats.idle_cycles == finite_stats.idle_cycles

    def test_fuzz_against_one_shot_kernel(self):
        rng = np.random.default_rng(99)
        for seed in range(40):
            num_banks = int(rng.choice([1, 2, 4, 8]))
            breakevens = [int(rng.integers(1, 200)), 1, None]
            sizes = [int(rng.integers(1, 40)) for _ in range(200)]
            self.equivalence(seed, num_banks, breakevens, sizes)

    def test_rejects_time_travel(self):
        accumulator = StreamingGapAccumulator(2, [5])
        accumulator.update(np.array([10]), np.array([0, 1, 1]))
        with pytest.raises(SimulationError):
            accumulator.update(np.array([10]), np.array([0, 1, 1]))

    def test_rejects_access_past_finalize_window(self):
        accumulator = StreamingGapAccumulator(1, [5])
        accumulator.update(np.array([10]), np.array([0, 1]))
        with pytest.raises(SimulationError):
            accumulator.finalize(10)

    def test_rejects_bad_breakeven(self):
        with pytest.raises(SimulationError):
            StreamingGapAccumulator(1, [0])

    def test_never_accessed_bank_idles_whole_window(self):
        accumulator = StreamingGapAccumulator(2, [3])
        accumulator.update(np.array([4]), np.array([0, 1, 1]))
        [stats] = accumulator.finalize(20)
        assert stats[1].idle_cycles == 20
        assert stats[1].sleep_cycles == 17
        assert stats[0].accesses == 1


def fuzz_configs(rng) -> ArchitectureConfig:
    ways = int(rng.choice([1, 1, 1, 2, 4]))
    geometry = CacheGeometry(8 * 1024, 16, ways=ways)
    num_banks = int(rng.choice([1, 2, 4, 8]))
    policy = "static" if num_banks == 1 else str(rng.choice(["static", "probing", "scrambling"]))
    kwargs = {}
    if policy != "static":
        if rng.random() < 0.3:
            events = np.sort(rng.choice(np.arange(1, 1900), size=3, replace=False))
            kwargs["update_events"] = tuple(int(e) for e in events)
        else:
            kwargs["update_period_cycles"] = int(rng.choice([64, 100, 333, 1000]))
    if rng.random() < 0.3:
        kwargs["breakeven_override"] = int(rng.integers(1, 80))
    if rng.random() < 0.2:
        kwargs["power_managed"] = False
    return ArchitectureConfig(geometry, num_banks=num_banks, policy=policy, **kwargs)


class TestStreamedEngineBitIdentity:
    """The acceptance-criterion fuzz: streamed == one-shot, exactly."""

    def test_fuzz_random_configs_and_chunkings(self):
        rng = np.random.default_rng(2011)
        for round_ in range(25):
            trace = random_trace(rng, int(rng.integers(1, 400)))
            config = fuzz_configs(rng)
            chunk_cycles = int(rng.choice([1, 7, 64, 100, 1024, 10 ** 7]))
            one = simulate(config, trace, engine="fast")
            streamed = simulate_stream(config, InMemoryTraceStream(trace, chunk_cycles))
            assert_results_identical(
                one, streamed, context=(round_, config, chunk_cycles)
            )

    def test_chunk_boundary_exactly_on_update_boundary(self):
        # Updates every 256 cycles, chunks of 256 cycles: every epoch
        # boundary coincides with a chunk boundary.
        rng = np.random.default_rng(5)
        trace = random_trace(rng, 300)
        geometry = CacheGeometry(8 * 1024, 16)
        for policy in ("probing", "scrambling"):
            config = ArchitectureConfig(
                geometry, num_banks=4, policy=policy, update_period_cycles=256
            )
            one = simulate(config, trace, engine="fast")
            streamed = simulate_stream(config, InMemoryTraceStream(trace, 256))
            assert_results_identical(one, streamed, context=policy)

    def test_chunk_boundary_exactly_on_update_events(self):
        rng = np.random.default_rng(6)
        trace = random_trace(rng, 300)
        geometry = CacheGeometry(8 * 1024, 16)
        # Events on exact multiples of the chunk size, plus one off-grid.
        config = ArchitectureConfig(
            geometry,
            num_banks=4,
            policy="probing",
            update_events=(128, 256, 300, 512),
        )
        one = simulate(config, trace, engine="fast")
        streamed = simulate_stream(config, InMemoryTraceStream(trace, 128))
        assert_results_identical(one, streamed)

    def test_streamed_matches_reference_oracle(self):
        rng = np.random.default_rng(7)
        trace = random_trace(rng, 200)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_period_cycles=300,
        )
        oracle = simulate(config, trace, engine="reference")
        streamed = simulate_stream(config, InMemoryTraceStream(trace, 97))
        assert_results_identical(oracle, streamed)

    def test_set_associative_carry_across_chunks(self):
        rng = np.random.default_rng(8)
        trace = random_trace(rng, 400)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16, ways=4),
            num_banks=2,
            policy="probing",
            update_period_cycles=500,
        )
        one = simulate(config, trace, engine="fast")
        for chunk_cycles in (1, 13, 500, 501):
            streamed = simulate_stream(config, InMemoryTraceStream(trace, chunk_cycles))
            assert_results_identical(one, streamed, context=chunk_cycles)

    def test_empty_trace_stream(self):
        trace = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=500)
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4)
        one = simulate(config, trace, engine="fast")
        streamed = simulate_stream(config, InMemoryTraceStream(trace, 64))
        assert_results_identical(one, streamed)

    def test_breakeven_group_single_pass(self):
        rng = np.random.default_rng(9)
        trace = random_trace(rng, 250)
        geometry = CacheGeometry(8 * 1024, 16)
        base = ArchitectureConfig(
            geometry, num_banks=4, policy="probing", update_period_cycles=400
        )
        from dataclasses import replace

        configs = [replace(base, breakeven_override=b) for b in (1, 5, 40, None)]
        streamed = run_streaming_group(configs, InMemoryTraceStream(trace, 77))
        for config, result in zip(configs, streamed):
            one = simulate(config, trace, engine="fast")
            assert_results_identical(one, result, context=config.breakeven_override)

    def test_engine_without_capability_fails_loudly(self):
        trace = Trace(np.array([0, 5]), np.array([0, 16]))
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=2,
                                    policy="probing", update_period_cycles=4)
        with pytest.raises(SimulationError, match="streaming"):
            simulate_stream(config, InMemoryTraceStream(trace, 4), engine="reference")


class TestStreamSweep:
    def test_grid_bit_identical_to_sweep(self):
        geometry = CacheGeometry(8 * 1024, 16)
        generator = WorkloadGenerator(geometry, num_windows=30, master_seed=11)
        profile = profile_for("sha")
        trace = generator.generate(profile)
        base = ArchitectureConfig(
            geometry, num_banks=4, policy="probing",
            update_period_cycles=trace.horizon // 8,
        )
        axes = {
            "num_banks": [2, 4],
            "policy": ["static", "probing"],
            "breakeven_override": [5, 40, None],
        }
        in_memory = sweep(base, trace, axes)
        streamed = stream_sweep(base, generator.stream(profile, 1500), axes)
        assert len(in_memory) == len(streamed)
        for a, b in zip(in_memory, streamed):
            assert a.parameters == b.parameters
            assert_results_identical(a.result, b.result, context=a.parameters)

    def test_synthetic_stream_bit_identical_to_generate(self):
        geometry = CacheGeometry(8 * 1024, 16)
        generator = WorkloadGenerator(geometry, num_windows=25, master_seed=13)
        profile = profile_for("adpcm.dec")
        trace = generator.generate(profile)
        for chunk_cycles in (100, 1024, 5000):
            rebuilt = stream_to_trace(generator.stream(profile, chunk_cycles))
            assert np.array_equal(rebuilt.cycles, trace.cycles)
            assert np.array_equal(rebuilt.addresses, trace.addresses)
            assert rebuilt.horizon == trace.horizon

    def test_repeated_passes_identical(self):
        geometry = CacheGeometry(8 * 1024, 16)
        generator = WorkloadGenerator(geometry, num_windows=20, master_seed=17)
        stream = generator.stream(profile_for("sha"), 777)
        first = stream_to_trace(stream)
        second = stream_to_trace(stream)
        assert np.array_equal(first.cycles, second.cycles)
        assert np.array_equal(first.addresses, second.addresses)


class TestFileStreams:
    def make_trace(self, seed=21, accesses=250):
        return random_trace(np.random.default_rng(seed), accesses)

    def test_text_stream_round_trip(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "t.trc"
        save_trace(trace, path)
        stream = open_trace_stream(path, 120)
        assert stream.horizon == trace.horizon  # header declares it up front
        rebuilt = stream_to_trace(stream)
        assert np.array_equal(rebuilt.cycles, trace.cycles)
        assert np.array_equal(rebuilt.addresses, trace.addresses)
        assert rebuilt.horizon == trace.horizon

    def test_text_stream_without_header_resolves_horizon_at_eof(self, tmp_path):
        path = tmp_path / "h.trc"
        path.write_text("3 0x10\n9 0x20\n")
        stream = open_trace_stream(path, 4)
        assert stream.horizon is None
        rebuilt = stream_to_trace(stream)
        assert stream.horizon == 10
        assert rebuilt.horizon == 10

    def test_text_stream_late_name_header_matches_load_trace(self, tmp_path):
        from repro.trace.io import load_trace

        path = tmp_path / "late.trc"
        path.write_text("3 0x10\n# name: late\n9 0x20\n")
        stream = open_trace_stream(path, 4)
        assert load_trace(path).name == "late"
        assert stream_to_trace(stream).name == "late"

    def test_load_trace_reads_mmap_directory(self, tmp_path):
        from repro.trace.io import load_trace

        trace = self.make_trace(25)
        directory = tmp_path / "t.mmap"
        save_trace_mmap(trace, directory)
        loaded = load_trace(directory)
        assert np.array_equal(loaded.cycles, trace.cycles)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.horizon == trace.horizon and loaded.name == trace.name
        plain = tmp_path / "not-a-trace-dir"
        plain.mkdir()
        with pytest.raises(TraceError):
            load_trace(plain)

    def test_text_stream_rejects_non_monotonic(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("5 0x10\n5 0x20\n")
        with pytest.raises(TraceError):
            list(open_trace_stream(path, 4).chunks())

    def test_npz_stream_round_trip(self, tmp_path):
        trace = self.make_trace(22)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        stream = open_trace_stream(os.fspath(path), 90)
        assert stream.horizon == trace.horizon
        rebuilt = stream_to_trace(stream)
        assert np.array_equal(rebuilt.cycles, trace.cycles)
        assert rebuilt.name == trace.name

    def test_mmap_stream_round_trip(self, tmp_path):
        trace = self.make_trace(23)
        directory = tmp_path / "t.mmap"
        save_trace_mmap(trace, directory)
        stream = open_trace_stream(directory, 64)
        assert isinstance(stream, MmapTraceStream)
        assert stream.horizon == trace.horizon
        assert stream.accesses == len(trace)
        rebuilt = stream_to_trace(stream)
        assert np.array_equal(rebuilt.cycles, trace.cycles)
        assert np.array_equal(rebuilt.addresses, trace.addresses)

    def test_mmap_meta_write_is_atomic(self, tmp_path, monkeypatch):
        # A crash mid-rewrite (simulated by making the final os.replace
        # fail) must leave the previous meta.json fully intact — never
        # a truncated file that poisons every later open (REPRO003).
        import repro.core.serialize as serialize

        trace = self.make_trace(21)
        directory = tmp_path / "t.mmap"
        save_trace_mmap(trace, directory)
        before = (directory / "meta.json").read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash between temp write and publish")

        # Rewrite the same trace: the interesting part is the crash,
        # and the arrays (written before meta) stay consistent.
        monkeypatch.setattr(serialize.os, "replace", crash)
        with pytest.raises(OSError):
            save_trace_mmap(trace, directory)
        monkeypatch.undo()
        assert (directory / "meta.json").read_bytes() == before
        # No half-written temp file left behind to confuse the reader.
        assert [p.name for p in directory.glob("meta.json.*")] == []
        loaded = stream_to_trace(open_trace_stream(directory, 64))
        assert loaded.horizon == trace.horizon and loaded.name == trace.name

    def test_mmap_rejects_foreign_directory(self, tmp_path):
        (tmp_path / "meta.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(TraceError):
            open_trace_stream(tmp_path, 64)

    def test_plain_directory_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            open_trace_stream(tmp_path, 64)

    def test_streamed_simulation_from_file(self, tmp_path):
        trace = self.make_trace(24)
        path = tmp_path / "t.trc"
        save_trace(trace, path)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16), num_banks=4, policy="probing",
            update_period_cycles=200,
        )
        one = simulate(config, trace, engine="fast")
        streamed = simulate_stream(config, open_trace_stream(path, 150))
        assert_results_identical(one, streamed)


class TestStreamingPlanSharing:
    def test_decode_and_epochs_computed_once_per_chunk(self):
        rng = np.random.default_rng(30)
        trace = random_trace(rng, 100)
        plan = StreamingPlan()
        calls = []
        for chunk in chunk_trace(trace, 256):
            plan.begin_chunk(chunk)
            first = plan.decode(4, 9)
            again = plan.decode(4, 9)
            assert first[0] is again[0]  # memoized within the chunk
            calls.append(first)
        # Chunk-keyed sections are invalidated between chunks.
        assert len({id(c[0]) for c in calls}) == len(calls)

    def test_campaign_chunked_spec_matches_unchunked(self, tmp_path):
        from repro.campaign import CampaignSpec, run_campaign

        trace = random_trace(np.random.default_rng(31), 200)
        trace_path = tmp_path / "t.trc"
        save_trace(trace, trace_path)
        payload = {
            "name": "stream-equivalence",
            "traces": [{"kind": "file", "params": {"path": os.fspath(trace_path)}}],
            "base": {
                "geometry": {"size_bytes": 8192, "line_size": 16},
                "num_banks": 4,
                "policy": "probing",
                "update_period_cycles": 300,
            },
            "axes": {"num_banks": [2, 4], "policy": ["static", "probing"]},
        }
        unchunked = run_campaign(
            CampaignSpec.from_dict(payload), directory=tmp_path / "a"
        )
        payload["traces"][0]["params"]["chunk_cycles"] = 77
        chunked_spec = CampaignSpec.from_dict(payload)
        chunked = run_campaign(chunked_spec, directory=tmp_path / "b")
        assert chunked.simulated == len(chunked.points)
        for a, b in zip(unchunked.points, chunked.points):
            # Hash-neutral chunking: same store identities, same counters.
            assert a.trace_hash == b.trace_hash
            assert a.config_hash == b.config_hash
            assert_results_identical(
                a.record.to_result(), b.record.to_result(), context=a.parameters
            )
        # And the chunked spec resumes the unchunked store with zero work.
        resumed = run_campaign(chunked_spec, directory=tmp_path / "a")
        assert resumed.simulated == 0

    def test_chunked_spec_round_trips_and_default_stays_out_of_dict(self):
        from repro.campaign.tracespec import TraceSpec

        spec = TraceSpec.from_file("/tmp/x.trc")
        assert "chunk_cycles" not in spec.to_dict()["params"]
        chunked = TraceSpec(
            kind="file", params={"path": "/tmp/x.trc", "chunk_cycles": 64}
        )
        assert chunked.to_dict()["params"]["chunk_cycles"] == 64
        assert TraceSpec.from_dict(chunked.to_dict()) == chunked
        assert chunked.trace_hash() == spec.trace_hash()
