"""Tests for the sweep framework and Pareto extraction."""

from __future__ import annotations

import itertools
import pickle

import pytest

from repro.analysis.pareto import pareto_front
from repro.analysis.sweep import (
    _breakeven_group_ids,
    _chunk_payloads,
    sweep,
)
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.errors import ConfigurationError
from tests.conftest import make_random_trace


@pytest.fixture(scope="module")
def base_and_trace():
    geometry = CacheGeometry(8 * 1024, 16)
    base = ArchitectureConfig(
        geometry, num_banks=4, policy="probing", update_period_cycles=8000
    )
    return base, make_random_trace(seed=17, length=1500)


class TestSweep:
    def test_cartesian_product_size(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(base, trace, {"num_banks": [2, 4, 8], "policy": ["static", "probing"]}, lut)
        assert len(result) == 6

    def test_where_filters(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(base, trace, {"num_banks": [2, 4], "policy": ["static", "probing"]}, lut)
        static_only = result.where(policy="static")
        assert len(static_only) == 2
        assert all(p.parameters["policy"] == "static" for p in static_only)

    def test_series_sorted(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(base, trace, {"num_banks": [8, 2, 4]}, lut)
        series = result.series("num_banks", "lifetime_years")
        assert [m for m, _ in series] == [2, 4, 8]

    def test_best_point(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(base, trace, {"num_banks": [2, 4, 8]}, lut)
        best = result.best("lifetime_years")
        assert best.value("lifetime_years") == max(
            p.value("lifetime_years") for p in result
        )

    def test_best_minimize(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(base, trace, {"num_banks": [2, 4, 8]}, lut)
        worst = result.best("energy_pj", maximize=False)
        assert worst.value("energy_pj") == min(p.value("energy_pj") for p in result)
        assert worst.value("energy_pj") <= result.best("energy_pj").value("energy_pj")

    def test_where_chained_constraints(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(
            base,
            trace,
            {"num_banks": [2, 4], "policy": ["static", "probing"],
             "breakeven_override": [None, 50]},
            lut,
        )
        chained = result.where(policy="probing").where(num_banks=4)
        assert len(chained) == 2
        assert all(
            p.parameters["policy"] == "probing" and p.parameters["num_banks"] == 4
            for p in chained
        )
        # Chaining is identical to one multi-constraint call, and a
        # contradictory chain empties cleanly.
        combined = result.where(policy="probing", num_banks=4)
        assert [p.parameters for p in chained] == [p.parameters for p in combined]
        assert len(chained.where(breakeven_override=50).where(policy="static")) == 0

    def test_rejects_unknown_axis(self, base_and_trace, lut):
        base, trace = base_and_trace
        with pytest.raises(ConfigurationError):
            sweep(base, trace, {"volume": [1]}, lut)

    def test_rejects_empty_axes(self, base_and_trace, lut):
        base, trace = base_and_trace
        with pytest.raises(ConfigurationError):
            sweep(base, trace, {}, lut)

    def test_empty_best_rejected(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(base, trace, {"num_banks": [4]}, lut).where(num_banks=2)
        with pytest.raises(ConfigurationError):
            result.best("lifetime_years")

    def test_geometry_axis_mixing_associativities(self, base_and_trace, lut):
        """Regression: sweep() used to hardcode FastSimulator, so a
        geometry axis containing a set-associative config raised
        ConfigurationError instead of simulating."""
        from dataclasses import replace

        from repro.core.simulator import ReferenceSimulator

        base, trace = base_and_trace
        axes = {
            "geometry": [
                CacheGeometry(8 * 1024, 16),
                CacheGeometry(8 * 1024, 16, ways=4),
            ]
        }
        result = sweep(base, trace, axes, lut)
        assert len(result) == 2
        for point in result:
            config = replace(base, **point.parameters)
            reference = ReferenceSimulator(config, lut).run(trace)
            assert point.result.cache_stats.hits == reference.cache_stats.hits
            assert point.result.bank_stats == reference.bank_stats

    def test_series_with_none_mixed_axis(self, base_and_trace, lut):
        """Regression: series() crashed with TypeError when an axis
        mixed None and numbers (static-vs-dynamic sweeps)."""
        base, trace = base_and_trace
        result = sweep(base, trace, {"update_period_cycles": [50000, None, 8000]}, lut)
        series = result.series("update_period_cycles", "lifetime_years")
        assert [value for value, _ in series] == [None, 8000, 50000]

    def test_engine_parameter_forwarded(self, base_and_trace, lut):
        base, trace = base_and_trace
        fast = sweep(base, trace, {"num_banks": [2, 4]}, lut, engine="fast")
        reference = sweep(base, trace, {"num_banks": [2, 4]}, lut, engine="reference")
        for a, b in zip(fast, reference):
            assert a.parameters == b.parameters
            assert a.result.cache_stats.hits == b.result.cache_stats.hits
            assert a.result.lifetime_years == b.result.lifetime_years

    def test_rejects_bad_parallel(self, base_and_trace, lut):
        base, trace = base_and_trace
        with pytest.raises(ConfigurationError):
            sweep(base, trace, {"num_banks": [2]}, lut, parallel=0)

    def test_rejects_unknown_engine_on_grouped_path(self, base_and_trace, lut):
        """Regression: the breakeven-grouped fast path used to bypass
        simulate()'s engine-name check, silently accepting typos."""
        base, trace = base_and_trace
        with pytest.raises(ValueError):
            sweep(base, trace, {"breakeven_override": [5, 50]}, lut, engine="refrence")
        with pytest.raises(ValueError):
            sweep(base, trace, {"num_banks": [2]}, lut, engine="warp")


class TestPlanSweep:
    """The shared trace-plan fast path must stay invisible in results."""

    def test_breakeven_axis_matches_reference_engine(self, base_and_trace, lut):
        base, trace = base_and_trace
        axes = {
            "num_banks": [2, 4],
            "policy": ["static", "probing"],
            "breakeven_override": [None, 5, 60, 700],
        }
        fast = sweep(base, trace, axes, lut)
        reference = sweep(base, trace, axes, lut, engine="reference")
        assert len(fast) == 16
        for a, b in zip(fast, reference):
            assert a.parameters == b.parameters
            assert a.result.cache_stats.hits == b.result.cache_stats.hits
            assert a.result.cache_stats.flushes == b.result.cache_stats.flushes
            assert a.result.flush_invalidations == b.result.flush_invalidations
            assert a.result.bank_stats == b.result.bank_stats
            assert a.result.energy_pj == pytest.approx(b.result.energy_pj, rel=1e-12)
            assert a.result.lifetime_years == pytest.approx(
                b.result.lifetime_years, rel=1e-12
            )

    def test_breakeven_group_ids(self):
        axes = {"num_banks": [2, 4], "breakeven_override": [1, 2, 3]}
        ids = _breakeven_group_ids(list(axes), axes)
        assert ids == [0, 0, 0, 3, 3, 3]
        assert _breakeven_group_ids(["num_banks"], {"num_banks": [2, 4]}) is None

    def test_chunk_payloads_exclude_trace(self, base_and_trace):
        """The parallel fan-out must not re-pickle the trace per chunk:
        payloads carry only the base config and parameter combos."""
        base, trace = base_and_trace
        axes = {"num_banks": [2, 4, 8], "breakeven_override": [10, 100]}
        names = list(axes)
        combos = list(itertools.product(*(axes[name] for name in names)))
        payloads = _chunk_payloads(
            base, names, combos, _breakeven_group_ids(names, axes), "auto", 3
        )
        assert sum(len(p[2]) for p in payloads) == len(combos)
        trace_bytes = len(pickle.dumps(trace))
        for payload in payloads:
            payload_bytes = len(pickle.dumps(payload))
            assert payload_bytes < 2048
            assert payload_bytes < trace_bytes / 10


class TestParallelSweep:
    def test_matches_serial_in_order_and_values(self, base_and_trace, lut):
        base, trace = base_and_trace
        axes = {"num_banks": [2, 4, 8], "policy": ["static", "probing"]}
        serial = sweep(base, trace, axes, lut)
        parallel = sweep(base, trace, axes, lut, parallel=3)
        assert [p.parameters for p in serial] == [p.parameters for p in parallel]
        for a, b in zip(serial, parallel):
            assert a.result.cache_stats.hits == b.result.cache_stats.hits
            assert a.result.energy_pj == b.result.energy_pj
            assert a.result.lifetime_years == b.result.lifetime_years

    def test_more_workers_than_points(self, base_and_trace, lut):
        base, trace = base_and_trace
        result = sweep(base, trace, {"num_banks": [2, 4]}, lut, parallel=16)
        assert len(result) == 2

    def test_parallel_with_breakeven_axis(self, base_and_trace, lut):
        """Breakeven grouping composes with the process fan-out (groups
        split across chunk boundaries are simply re-batched per chunk)."""
        base, trace = base_and_trace
        axes = {"breakeven_override": [5, 60, 700], "num_banks": [2, 4]}
        serial = sweep(base, trace, axes, lut)
        parallel = sweep(base, trace, axes, lut, parallel=2)
        assert [p.parameters for p in serial] == [p.parameters for p in parallel]
        for a, b in zip(serial, parallel):
            assert a.result.bank_stats == b.result.bank_stats
            assert a.result.energy_pj == b.result.energy_pj
            assert a.result.lifetime_years == b.result.lifetime_years


class TestPareto:
    def test_single_dominant_point(self):
        points = [(1, 5), (2, 4), (2, 5), (0, 0)]
        front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
        assert front == [(2, 5)]

    def test_true_frontier(self):
        points = [(1, 5), (3, 3), (5, 1), (2, 2)]
        front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
        assert set(front) == {(1, 5), (3, 3), (5, 1)}

    def test_minimization_direction(self):
        points = [(1, 5), (3, 3), (5, 1)]
        front = pareto_front(
            points, [lambda p: p[0], lambda p: p[1]], maximize=[True, False]
        )
        assert front == [(5, 1)]

    def test_empty_input(self):
        assert pareto_front([], [lambda p: p]) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pareto_front([(1,)], [])
        with pytest.raises(ConfigurationError):
            pareto_front([(1,)], [lambda p: p[0]], maximize=[True, False])

    def test_on_sweep_results(self, base_and_trace, lut):
        """The headline story as a frontier: re-indexed points dominate
        static ones at equal bank counts."""
        base, trace = base_and_trace
        result = sweep(
            base, trace, {"num_banks": [2, 4, 8], "policy": ["static", "probing"]}, lut
        )
        front = pareto_front(
            list(result),
            [lambda p: p.value("energy_savings"), lambda p: p.value("lifetime_years")],
        )
        assert all(p.parameters["policy"] == "probing" for p in front)
