"""Tests for ArchitectureConfig and the structural summary."""

from __future__ import annotations

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.architecture import summarize
from repro.core.config import ArchitectureConfig
from repro.errors import ConfigurationError

GEOMETRY = CacheGeometry(16 * 1024, 16)


class TestConfigValidation:
    def test_defaults(self):
        config = ArchitectureConfig(GEOMETRY)
        assert config.num_banks == 4
        assert config.policy == "static"
        assert config.power_managed

    def test_rejects_non_power_banks(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(GEOMETRY, num_banks=3)

    def test_rejects_excess_banks(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(CacheGeometry(64, 16), num_banks=8)

    def test_rejects_dynamic_indexing_on_single_bank(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(GEOMETRY, num_banks=1, policy="probing")

    def test_rejects_bad_periods(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(GEOMETRY, update_period_cycles=0)
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(GEOMETRY, breakeven_override=0)
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(GEOMETRY, frequency_hz=0)


class TestFactories:
    def test_policy_factory_fresh_state(self):
        config = ArchitectureConfig(GEOMETRY, policy="probing", update_period_cycles=10)
        a = config.make_policy()
        a.update()
        b = config.make_policy()
        assert b.updates_applied == 0

    def test_update_schedule_inactive_for_static(self):
        config = ArchitectureConfig(GEOMETRY, policy="static", update_period_cycles=None)
        assert config.make_update_schedule().period_cycles is None

    def test_breakeven_override(self):
        config = ArchitectureConfig(GEOMETRY, breakeven_override=33)
        assert config.breakeven() == 33

    def test_breakeven_computed(self):
        config = ArchitectureConfig(GEOMETRY)
        assert 4 <= config.breakeven() <= 63

    def test_energy_models(self):
        config = ArchitectureConfig(GEOMETRY, num_banks=4)
        assert config.make_energy_model().num_banks == 4
        assert config.make_baseline_energy_model().num_banks == 1


class TestVariants:
    def test_with_policy(self):
        config = ArchitectureConfig(GEOMETRY, policy="static")
        assert config.with_policy("probing").policy == "probing"
        assert config.policy == "static"  # original untouched

    def test_monolithic_variant(self):
        config = ArchitectureConfig(GEOMETRY, num_banks=8, policy="probing",
                                    update_period_cycles=100)
        mono = config.monolithic()
        assert mono.num_banks == 1
        assert not mono.power_managed
        assert mono.update_period_cycles is None
        assert mono.geometry == config.geometry


class TestSummary:
    def test_paper_reference_configuration(self):
        config = ArchitectureConfig(GEOMETRY, num_banks=4)
        summary = summarize(config)
        assert summary.index_bits == 10
        assert summary.bank_bits == 2
        assert summary.lines_per_bank == 256
        assert summary.tag_bits_per_line == 19
        # Section III-A1: 5- or 6-bit counters suffice.
        assert summary.counter_width_bits in (5, 6)
        assert 0.0 < summary.wiring_energy_overhead < 0.25

    def test_wiring_overhead_grows_with_banks(self):
        overhead = [
            summarize(ArchitectureConfig(GEOMETRY, num_banks=m)).wiring_energy_overhead
            for m in (2, 4, 8, 16)
        ]
        assert overhead == sorted(overhead)
