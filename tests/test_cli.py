"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCLI:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_cell_command(self, capsys):
        assert main(["cell"]) == 0
        out = capsys.readouterr().out
        assert "fresh read SNM" in out
        assert "2.93 years" in out

    def test_cell_with_sleep(self, capsys):
        assert main(["cell", "--psleep", "0.68"]) == 0
        out = capsys.readouterr().out
        assert "lifetime: 5.9" in out

    def test_arch_command(self, capsys):
        assert main(["arch", "--size", "16", "--banks", "4"]) == 0
        out = capsys.readouterr().out
        assert "breakeven time" in out
        assert "5 bits" in out or "6 bits" in out

    def test_policies_command(self, capsys):
        assert main(["policies", "--banks", "4"]) == 0
        out = capsys.readouterr().out
        assert "probing" in out
        assert "scrambling" in out

    def test_engine_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["--engine", "warp", "cell"])

    def test_sweep_command(self, capsys):
        assert main(
            ["sweep", "--windows", "40", "--banks", "2,4", "--breakevens", "20,80"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 points" in out
        assert "probing" in out
        assert "best lifetime" in out
        assert "points/s" in out

    def test_sweep_chunk_cycles_streams_identically(self, capsys):
        args = ["sweep", "--windows", "40", "--banks", "2,4",
                "--breakevens", "20,80"]
        assert main(args) == 0
        in_memory = capsys.readouterr().out
        assert main(args + ["--chunk-cycles", "4096"]) == 0
        streamed = capsys.readouterr().out
        assert "[streamed, 4,096-cycle chunks]" in streamed
        # Identical point rows and best-point line; only the header
        # suffix and the timing line may differ.
        strip = lambda out: [
            line for line in out.splitlines()
            if not line.startswith(("dijkstra:", "swept "))
        ]
        assert strip(in_memory) == strip(streamed)

    def test_sweep_rejects_bad_chunk_cycles(self, capsys):
        assert main(["sweep", "--windows", "40", "--chunk-cycles", "-1"]) == 2
        assert "--chunk-cycles" in capsys.readouterr().err

    def test_sweep_rejects_bad_updates(self, capsys):
        assert main(["sweep", "--updates", "0"]) == 2
        assert "--updates must be >= 1" in capsys.readouterr().err
        assert main(["sweep", "--windows", "40", "--updates", "999999999"]) == 2
        assert "exceeds the trace horizon" in capsys.readouterr().err

    def test_sweep_reports_invalid_grid_cleanly(self, capsys):
        """--banks 1 with the default dynamic-policy axis is an invalid
        grid point; the CLI must report it, not dump a traceback."""
        assert main(["sweep", "--windows", "40", "--banks", "1"]) == 2
        assert "at least two banks" in capsys.readouterr().err

    def test_sweep_rejects_malformed_axes(self, capsys):
        assert main(["sweep", "--banks", "2,"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err
        assert main(["sweep", "--breakevens", "5,x"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep_save_writes_loadable_results(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--windows", "40", "--banks", "2",
             "--policies", "static,probing", "--save", str(path)]
        ) == 0
        assert "saved 2 results" in capsys.readouterr().out
        from repro.core.serialize import load_results

        records = load_results(path)
        assert len(records) == 2
        assert records[0].architecture().num_banks == 2

    def test_engine_flag_accepted(self, capsys):
        """--engine threads through to the runner settings; the cheap
        cell command just checks the flag parses."""
        assert main(["--engine", "reference", "cell"]) == 0
        assert "fresh read SNM" in capsys.readouterr().out

    @pytest.mark.slow
    def test_table1_quick(self, capsys):
        assert main(["--quick", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "vs paper" in out

    @pytest.mark.slow
    def test_table4_quick_with_compare(self, capsys):
        assert main(["--quick", "table4", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "Idle_M8" in out

    @pytest.mark.slow
    def test_headline_quick(self, capsys):
        assert main(["--quick", "headline"]) == 0
        out = capsys.readouterr().out
        assert "power management only" in out


class TestCampaignCLI:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-test",
                    "traces": [
                        {"kind": "synthetic",
                         "params": {"benchmark": "sha", "num_windows": 40}}
                    ],
                    "base": {
                        "geometry": {"size_bytes": 8192, "line_size": 16},
                        "num_banks": 4,
                        "policy": "probing",
                        "update_period_cycles": 5120,
                    },
                    "axes": {"num_banks": [2, 4]},
                }
            )
        )
        return path

    def test_run_then_rerun_reuses_everything(self, capsys, spec_path, tmp_path):
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert "simulated 2, reused 0" in out
        assert "sha" in out
        assert main(["campaign", "run", str(spec_path), "--dir", str(store)]) == 0
        assert "simulated 0, reused 2" in capsys.readouterr().out

    def test_status_tracks_store_coverage(self, capsys, spec_path, tmp_path):
        store = tmp_path / "store"
        assert main(["campaign", "status", str(spec_path), "--dir", str(store)]) == 0
        assert "0/2 points done, 2 missing" in capsys.readouterr().out
        assert main(["campaign", "run", str(spec_path), "--dir", str(store)]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(spec_path), "--dir", str(store)]) == 0
        assert "2/2 points done, 0 missing" in capsys.readouterr().out

    def test_show_renders_store_and_saved_files(self, capsys, spec_path, tmp_path):
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--dir", str(store)]) == 0
        capsys.readouterr()
        assert main(["campaign", "show", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2 stored records" in out
        assert "sha" in out

    def test_bad_spec_reports_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        assert main(["campaign", "run", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["campaign", "run", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err
