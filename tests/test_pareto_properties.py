"""Property-based tests for :func:`repro.analysis.pareto.pareto_front`.

The planner's estimator-pruned and pareto-active strategies both lean
on ``pareto_front`` to decide which design points deserve a real
simulation, so its semantics (tie survival, direction flags, order
independence) are pinned here with Hypothesis rather than a handful of
examples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import pareto_front

# Bounded integers keep dominance checks exact (no float rounding) and
# force plenty of ties, which is exactly the regime the planner hits
# (hit rate plateaus across the breakeven axis).
points = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=24
)

OBJECTIVES = [lambda p: p[0], lambda p: p[1]]


def dominates(a, b, maximize):
    oriented = [
        (x, y) if up else (-x, -y) for (x, y), up in zip(zip(a, b), maximize)
    ]
    return all(x >= y for x, y in oriented) and any(x > y for x, y in oriented)


@settings(max_examples=200)
@given(points)
def test_front_is_exactly_the_nondominated_subset(items):
    front = pareto_front(items, OBJECTIVES)
    expected = [
        item
        for item in items
        if not any(dominates(other, item, (True, True)) for other in items)
    ]
    assert front == expected
    assert front  # ties survive, so non-empty input keeps a front


@settings(max_examples=200)
@given(points, st.randoms(use_true_random=False))
def test_front_membership_is_permutation_invariant(items, rng):
    baseline = set(pareto_front(items, OBJECTIVES))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert set(pareto_front(shuffled, OBJECTIVES)) == baseline


@settings(max_examples=200)
@given(points)
def test_duplicates_of_a_front_point_all_survive(items):
    front = pareto_front(items, OBJECTIVES)
    doubled = items + list(front)
    front_doubled = pareto_front(doubled, OBJECTIVES)
    for item in front:
        assert front_doubled.count(item) == doubled.count(item)


@settings(max_examples=200)
@given(points, st.tuples(st.booleans(), st.booleans()))
def test_maximize_flags_mirror_negated_objectives(items, maximize):
    flagged = pareto_front(items, OBJECTIVES, maximize=list(maximize))
    negated = pareto_front(
        items,
        [
            (lambda p: p[0]) if maximize[0] else (lambda p: -p[0]),
            (lambda p: p[1]) if maximize[1] else (lambda p: -p[1]),
        ],
    )
    assert flagged == negated


@settings(max_examples=200)
@given(points)
def test_front_of_front_is_idempotent(items):
    front = pareto_front(items, OBJECTIVES)
    assert pareto_front(front, OBJECTIVES) == front
