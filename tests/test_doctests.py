"""Run the doctests embedded in the library's docstrings.

The examples in docstrings are part of the public documentation; this
keeps them honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.pareto
import repro.cache.directmapped
import repro.cache.geometry
import repro.cache.setassoc
import repro.hw.counter
import repro.hw.decoder
import repro.hw.lfsr
import repro.hw.onehot
import repro.indexing.policies
import repro.indexing.update
import repro.utils.bitops
import repro.utils.rng
import repro.utils.tables

MODULES = [
    repro.utils.bitops,
    repro.utils.rng,
    repro.utils.tables,
    repro.hw.lfsr,
    repro.hw.onehot,
    repro.hw.counter,
    repro.hw.decoder,
    repro.cache.geometry,
    repro.cache.directmapped,
    repro.cache.setassoc,
    repro.indexing.policies,
    repro.indexing.update,
    repro.analysis.pareto,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests_pass(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
