"""Unit and property tests for repro.utils.bitops."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.bitops import (
    bit_slice,
    bits_required,
    concat_bits,
    is_power_of_two,
    log2_exact,
    mask,
    parity,
    reverse_bits,
)


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_zero_and_negatives(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)

    def test_rejects_composites(self):
        for value in (3, 6, 12, 24, 1023, 1025):
            assert not is_power_of_two(value)


class TestLog2Exact:
    def test_round_trip(self):
        for exponent in range(24):
            assert log2_exact(1 << exponent) == exponent

    def test_rejects_non_powers(self):
        with pytest.raises(ConfigurationError):
            log2_exact(24)

    @given(st.integers(min_value=0, max_value=60))
    def test_property_round_trip(self, exponent):
        assert log2_exact(1 << exponent) == exponent


class TestBitsRequired:
    def test_typical_breakeven_values(self):
        # The paper: breakeven of a few tens of cycles -> 5-6 bit counters.
        assert bits_required(24) == 5
        assert bits_required(63) == 6

    def test_zero_needs_one_bit(self):
        assert bits_required(0) == 1

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bits_required(-1)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_property_bound(self, value):
        width = bits_required(value)
        assert (1 << width) > value >= (1 << (width - 1)) or value == 0


class TestMaskAndSlice:
    def test_mask_values(self):
        assert mask(0) == 0
        assert mask(4) == 0xF
        assert mask(16) == 0xFFFF

    def test_mask_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            mask(-1)

    def test_bit_slice_verilog_style(self):
        value = 0b1101_0110
        assert bit_slice(value, 0, 4) == 0b0110
        assert bit_slice(value, 4, 4) == 0b1101

    def test_bit_slice_rejects_negative_value(self):
        with pytest.raises(ConfigurationError):
            bit_slice(-1, 0, 4)

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_property_slice_matches_shift_and(self, value, low, width):
        assert bit_slice(value, low, width) == (value >> low) & ((1 << width) - 1)


class TestConcatBits:
    def test_example(self):
        assert concat_bits(0b10, 2, 0b011, 3) == 0b10011

    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=2**12 - 1),
    )
    def test_property_split_round_trip(self, high, low):
        combined = concat_bits(high, 10, low, 12)
        assert bit_slice(combined, 12, 10) == high
        assert bit_slice(combined, 0, 12) == low


class TestReverseBits:
    def test_examples(self):
        assert reverse_bits(0b0011, 4) == 0b1100
        assert reverse_bits(0b1, 1) == 0b1

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_property_involution(self, value):
        assert reverse_bits(reverse_bits(value, 16), 16) == value


class TestParity:
    def test_examples(self):
        assert parity(0) == 0
        assert parity(0b1011) == 1
        assert parity(0b11) == 0

    @given(st.integers(min_value=0, max_value=2**30), st.integers(min_value=0, max_value=29))
    def test_property_flip_one_bit(self, value, bit):
        assert parity(value ^ (1 << bit)) == 1 - parity(value)
