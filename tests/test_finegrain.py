"""Tests for the line-granularity (fine-grain) template."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.errors import ConfigurationError
from repro.finegrain import FineGrainConfig, FineGrainSimulator, LineEnergyModel
from repro.power.idleness import IdlenessAccountant
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for
from repro.trace.trace import Trace
from tests.conftest import make_random_trace

GEOMETRY = CacheGeometry(4 * 1024, 16)  # 256 lines


@pytest.fixture(scope="module")
def workload():
    geometry = CacheGeometry(16 * 1024, 16)
    trace = WorkloadGenerator(geometry, num_windows=400).generate(
        profile_for("adpcm.dec")
    )
    return geometry, trace


class TestConfig:
    def test_rejects_associative(self):
        with pytest.raises(ConfigurationError):
            FineGrainConfig(CacheGeometry(4096, 16, ways=2))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            FineGrainConfig(GEOMETRY, policy="rotate")

    def test_breakeven_positive_and_small(self):
        breakeven = FineGrainConfig(GEOMETRY).breakeven()
        assert 1 <= breakeven <= 63

    def test_breakeven_override(self):
        assert FineGrainConfig(GEOMETRY, breakeven_override=7).breakeven() == 7


class TestLineEnergyModel:
    def test_access_energy_is_monolithic(self):
        """No banking: each access pays the full-array access energy."""
        from repro.power.energy import EnergyModel

        fine = LineEnergyModel(GEOMETRY)
        mono = EnergyModel(GEOMETRY, 1)
        assert fine.access_energy() >= mono.access_energy()

    def test_line_leakage_sums_to_array(self):
        fine = LineEnergyModel(GEOMETRY)
        from repro.power.energy import EnergyModel

        array = EnergyModel(GEOMETRY, 1).bank_leakage_power()
        total = fine.line_leakage_power() * GEOMETRY.num_lines
        assert total == pytest.approx(array * (1 + fine.CONTROL_OVERHEAD), rel=1e-9)

    def test_all_asleep_cheaper_than_all_awake(self):
        fine = LineEnergyModel(GEOMETRY)
        horizon = 10_000
        sleeping = fine.total_energy(0, horizon, GEOMETRY.num_lines * horizon, 0)
        awake = fine.total_energy(0, horizon, 0, 0)
        assert sleeping < awake

    def test_rejects_negative_counters(self):
        with pytest.raises(ConfigurationError):
            LineEnergyModel(GEOMETRY).total_energy(-1, 0, 0, 0)


class TestPerLineSleepAccounting:
    def test_matches_accountant_per_line(self):
        """The vectorized per-line sleep must equal running one
        IdlenessAccountant with a 'bank' per line."""
        from repro.finegrain.sim import _per_line_sleep

        trace = make_random_trace(seed=3, length=400, address_space_lines=64)
        geometry = CacheGeometry(1024, 16)  # 64 lines
        index = (trace.addresses >> 4) & 63
        breakeven = 9

        accountant = IdlenessAccountant(64, breakeven)
        for cycle, line in zip(trace.cycles.tolist(), index.tolist()):
            accountant.on_access(line, cycle)
        expected = accountant.finalize(trace.horizon)

        sleep, transitions, accesses = _per_line_sleep(
            index, trace.cycles, 64, breakeven, trace.horizon
        )
        for line in range(64):
            assert sleep[line] == expected[line].sleep_cycles, line
            assert transitions[line] == expected[line].transitions, line
            assert accesses[line] == expected[line].accesses, line

    def test_untouched_lines_sleep_whole_horizon(self):
        from repro.finegrain.sim import _per_line_sleep

        cycles = np.array([5], dtype=np.int64)
        index = np.array([0], dtype=np.int64)
        sleep, transitions, _ = _per_line_sleep(index, cycles, 4, 10, 1000)
        assert sleep[1] == 990
        assert transitions[1] == 1

    def test_empty_trace(self):
        from repro.finegrain.sim import _per_line_sleep

        sleep, transitions, accesses = _per_line_sleep(
            np.empty(0, np.int64), np.empty(0, np.int64), 4, 10, 1000
        )
        assert (sleep == 990).all()
        assert accesses.sum() == 0

    def test_huge_horizon_integer_exact(self):
        """Regression: sleep used to be accumulated through a
        float64-weighted bincount, which rounds past 2**53 cycles.
        Accumulation is integer now, so huge horizons stay exact."""
        from repro.finegrain.sim import _per_line_sleep

        horizon = 2**55
        breakeven = 10
        cycles = np.array([3, 2**54 + 1], dtype=np.int64)
        index = np.array([0, 0], dtype=np.int64)
        sleep, transitions, _ = _per_line_sleep(index, cycles, 2, breakeven, horizon)
        gaps = [3, (2**54 + 1) - 3 - 1, horizon - (2**54 + 1) - 1]
        expected = sum(g - breakeven for g in gaps if g > breakeven)
        assert int(sleep[0]) == expected
        assert int(transitions[0]) == 2
        # The float64 path would have rounded: the exact value is odd.
        assert expected % 2 == 1
        assert int(sleep[1]) == horizon - breakeven


class TestFineGrainSimulator:
    def test_static_is_a_drowsy_cache(self, workload, lut):
        geometry, trace = workload
        result = FineGrainSimulator(FineGrainConfig(geometry), lut).run(trace)
        # Per-line idleness is high nearly everywhere: most lines rest
        # between working-set revisits.
        assert float(np.median(result.line_sleep_fraction)) > 0.5
        assert result.lifetime_years > 2.93

    def test_reindexing_tightens_line_idleness(self, workload, lut):
        geometry, trace = workload
        static = FineGrainSimulator(FineGrainConfig(geometry), lut).run(trace)
        probing = FineGrainSimulator(
            FineGrainConfig(
                geometry, policy="probing",
                update_period_cycles=trace.horizon // 32,
            ),
            lut,
        ).run(trace)
        assert probing.idleness_spread < static.idleness_spread
        assert probing.lifetime_years >= static.lifetime_years

    def test_fine_grain_beats_coarse_on_lifetime(self, workload, lut):
        """The paper's positioning: [7] is the lifetime upper bound."""
        geometry, trace = workload
        fine = FineGrainSimulator(
            FineGrainConfig(
                geometry, policy="probing",
                update_period_cycles=trace.horizon // 32,
            ),
            lut,
        ).run(trace)
        coarse = FastSimulator(
            ArchitectureConfig(
                geometry, num_banks=4, policy="probing",
                update_period_cycles=trace.horizon // 16,
            ),
            lut,
        ).run(trace)
        assert fine.lifetime_years > coarse.lifetime_years

    def test_coarse_beats_fine_on_dynamic_energy(self, workload, lut):
        """...while coarse banking also cuts dynamic energy."""
        geometry, trace = workload
        fine = FineGrainSimulator(FineGrainConfig(geometry), lut).run(trace)
        coarse = FastSimulator(
            ArchitectureConfig(geometry, num_banks=8, policy="static"), lut
        ).run(trace)
        assert coarse.energy_savings > fine.energy_savings

    def test_hit_miss_matches_banked_fast_engine(self, lut):
        """Same flush/update schedule => same functional behaviour as a
        banked cache (full-index remapping is still a bijection)."""
        trace = make_random_trace(seed=8, length=1500, address_space_lines=512)
        geometry = CacheGeometry(4 * 1024, 16)
        fine = FineGrainSimulator(
            FineGrainConfig(geometry, policy="probing", update_period_cycles=9000),
            lut,
        ).run(trace)
        banked = FastSimulator(
            ArchitectureConfig(
                geometry, num_banks=4, policy="probing", update_period_cycles=9000
            ),
            lut,
        ).run(trace)
        assert fine.hits == banked.cache_stats.hits
        assert fine.misses == banked.cache_stats.misses

    def test_scrambling_mapping_valid(self, lut):
        trace = make_random_trace(seed=9, length=500, address_space_lines=256)
        result = FineGrainSimulator(
            FineGrainConfig(GEOMETRY, policy="scrambling", update_period_cycles=5000),
            lut,
        ).run(trace)
        assert result.line_accesses.sum() == len(trace)
        assert result.updates_applied > 0

    def test_empty_trace(self, lut):
        trace = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=500)
        result = FineGrainSimulator(FineGrainConfig(GEOMETRY), lut).run(trace)
        assert result.hits == 0
        assert result.lifetime_years > 2.93  # everything slept
