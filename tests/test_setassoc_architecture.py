"""Set-associative extension: the architecture is associativity-agnostic.

The paper evaluates direct-mapped caches; nothing in the partitioning or
re-indexing machinery depends on associativity (banks split the *set*
index). These tests run the full stack on 2- and 4-way geometries and
check the headline behaviours carry over; both engines now support
set-associative geometries (exact agreement is pinned in
``test_setassoc_fastsim.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.simulator import ReferenceSimulator, simulate
from repro.trace.trace import Trace
from tests.conftest import make_random_trace


def looping_trace(geometry: CacheGeometry, hot_sets: int, length: int = 3000) -> Trace:
    """A trace hammering the first ``hot_sets`` sets with two tags each,
    with periodic long pauses (idleness for the other banks)."""
    rng = np.random.default_rng(23)
    cycles = []
    addresses = []
    cycle = 0
    for i in range(length):
        set_index = int(rng.integers(0, hot_sets))
        tag = int(rng.integers(0, 2))
        addresses.append(geometry.address_for(tag, set_index))
        cycles.append(cycle)
        cycle += 3
        if i % 500 == 499:
            cycle += 4000
    return Trace(np.asarray(cycles, dtype=np.int64), np.asarray(addresses, dtype=np.int64))


class TestSetAssociativeArchitecture:
    @pytest.mark.parametrize("ways", [2, 4])
    def test_reindexing_extends_lifetime(self, ways, lut):
        geometry = CacheGeometry(8 * 1024, 16, ways=ways)
        trace = looping_trace(geometry, hot_sets=geometry.num_sets // 4)
        static = ReferenceSimulator(
            ArchitectureConfig(geometry, num_banks=4, policy="static"), lut
        ).run(trace)
        probing = ReferenceSimulator(
            ArchitectureConfig(
                geometry, num_banks=4, policy="probing",
                update_period_cycles=trace.horizon // 8,
            ),
            lut,
        ).run(trace)
        assert probing.lifetime_years > static.lifetime_years

    def test_two_way_absorbs_tag_conflicts(self, lut):
        """With two tags cycling per set, a 2-way cache hits where the
        direct-mapped one thrashes."""
        dm_geometry = CacheGeometry(8 * 1024, 16)
        sa_geometry = CacheGeometry(8 * 1024, 16, ways=2)
        dm_trace = looping_trace(dm_geometry, hot_sets=64)
        sa_trace = looping_trace(sa_geometry, hot_sets=64)
        dm = ReferenceSimulator(
            ArchitectureConfig(dm_geometry, num_banks=4, policy="static"), lut
        ).run(dm_trace)
        sa = ReferenceSimulator(
            ArchitectureConfig(sa_geometry, num_banks=4, policy="static"), lut
        ).run(sa_trace)
        assert sa.hit_rate > dm.hit_rate

    def test_fast_engine_accepts_set_associative(self, lut):
        """Regression: the fast engine used to raise ConfigurationError
        for ways != 1; it now simulates those geometries exactly."""
        from repro.core.fastsim import FastSimulator

        geometry = CacheGeometry(8 * 1024, 16, ways=2)
        config = ArchitectureConfig(geometry, num_banks=4)
        trace = make_random_trace(seed=1, length=200)
        fast = FastSimulator(config, lut).run(trace)
        reference = ReferenceSimulator(config, lut).run(trace)
        assert fast.cache_stats.hits == reference.cache_stats.hits
        assert fast.bank_stats == reference.bank_stats

    def test_simulate_dispatches_consistently(self, lut):
        """Every engine name the dispatcher accepts must agree on a
        set-associative config."""
        geometry = CacheGeometry(8 * 1024, 16, ways=2)
        config = ArchitectureConfig(geometry, num_banks=4)
        trace = make_random_trace(seed=2, length=200)
        reference = ReferenceSimulator(config, lut).run(trace)
        for engine in ("auto", "fast", "reference"):
            result = simulate(config, trace, lut, engine=engine)
            assert result.cache_stats.hits == reference.cache_stats.hits
            assert result.bank_stats == reference.bank_stats
