"""Behavioural tests of simulation results: the paper's core claims.

These tests run real (small) workloads end-to-end and assert the
paper's qualitative results hold in the reproduction:

* idleness is unbalanced without re-indexing and balanced with it;
* re-indexing extends the cache lifetime well beyond plain power
  management;
* energy savings are essentially independent of the indexing policy;
* the miss-rate cost of update-induced flushes is negligible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for


@pytest.fixture(scope="module")
def geometry():
    return CacheGeometry(16 * 1024, 16)


@pytest.fixture(scope="module")
def traces(geometry):
    generator = WorkloadGenerator(geometry, num_windows=600)
    return {
        name: generator.generate(profile_for(name))
        for name in ("adpcm.dec", "CRC32", "say")
    }


def run(geometry, trace, lut, policy, banks=4, power_managed=True, updates=16):
    config = ArchitectureConfig(
        geometry,
        num_banks=banks,
        policy=policy,
        power_managed=power_managed,
        update_period_cycles=trace.horizon // updates if policy != "static" else None,
    )
    return FastSimulator(config, lut).run(trace)


class TestIdlenessBalancing:
    def test_static_idleness_unbalanced(self, geometry, traces, lut):
        """adpcm.dec: two banks ~idle, two banks ~hot (Table I)."""
        result = run(geometry, traces["adpcm.dec"], lut, "static")
        idleness = sorted(result.bank_idleness)
        assert idleness[0] < 0.10
        assert idleness[-1] > 0.95

    def test_probing_balances_idleness(self, geometry, traces, lut):
        result = run(geometry, traces["adpcm.dec"], lut, "probing")
        idleness = result.bank_idleness
        assert max(idleness) - min(idleness) < 0.15
        assert np.mean(idleness) == pytest.approx(0.515, abs=0.08)

    def test_scrambling_balances_idleness(self, geometry, traces, lut):
        """Scrambling converges only asymptotically (Section IV-B2), so
        with a compressed update schedule it narrows — but does not yet
        close — the idleness spread of the most unbalanced benchmark."""
        static = run(geometry, traces["adpcm.dec"], lut, "static")
        result = run(geometry, traces["adpcm.dec"], lut, "scrambling", updates=64)
        static_spread = max(static.bank_idleness) - min(static.bank_idleness)
        spread = max(result.bank_idleness) - min(result.bank_idleness)
        assert spread < 0.5 * static_spread


class TestLifetime:
    def test_reindexing_beats_static(self, geometry, traces, lut):
        for name in traces:
            static = run(geometry, traces[name], lut, "static")
            probing = run(geometry, traces[name], lut, "probing")
            assert probing.lifetime_years > static.lifetime_years

    def test_static_beats_monolithic(self, geometry, traces, lut):
        """Plain power management helps a little (the paper's 9%)."""
        for name in ("adpcm.dec", "say"):
            static = run(geometry, traces[name], lut, "static")
            assert static.lifetime_years > 2.93

    def test_monolithic_is_cell_lifetime(self, geometry, traces, lut):
        mono = run(
            geometry, traces["say"], lut, "static", banks=1, power_managed=False
        )
        assert mono.lifetime_years == pytest.approx(2.93, rel=1e-6)

    def test_limiting_bank_is_least_idle(self, geometry, traces, lut):
        result = run(geometry, traces["CRC32"], lut, "static")
        worst = min(range(4), key=lambda b: result.bank_idleness[b])
        assert result.lifetime.limiting_bank == worst

    def test_probing_and_scrambling_equivalent(self, geometry, traces, lut):
        """Section IV-B2: 'de facto identical results' — once the number
        of updates is large enough for the RNG's 1/sqrt(N) error to be
        small. 64 updates suffice for a 10% agreement here."""
        for name in traces:
            probing = run(geometry, traces[name], lut, "probing", updates=64)
            scrambling = run(geometry, traces[name], lut, "scrambling", updates=64)
            assert probing.lifetime_years == pytest.approx(
                scrambling.lifetime_years, rel=0.10
            )


class TestEnergy:
    def test_savings_positive(self, geometry, traces, lut):
        for name in traces:
            result = run(geometry, traces[name], lut, "static")
            assert 0.15 < result.energy_savings < 0.70

    def test_savings_independent_of_policy(self, geometry, traces, lut):
        """'The energy savings are independent of the re-indexing
        strategy' (Table II's single Esav column)."""
        for name in traces:
            static = run(geometry, traces[name], lut, "static")
            probing = run(geometry, traces[name], lut, "probing")
            assert probing.energy_savings == pytest.approx(
                static.energy_savings, abs=0.03
            )

    def test_unmanaged_partition_saves_only_dynamic(self, geometry, traces, lut):
        managed = run(geometry, traces["say"], lut, "static")
        unmanaged = run(geometry, traces["say"], lut, "static", power_managed=False)
        assert unmanaged.energy_savings < managed.energy_savings

    def test_energy_breakdown_consistency(self, geometry, traces, lut):
        result = run(geometry, traces["say"], lut, "static")
        total = sum(b.total for b in result.bank_energy)
        assert result.energy_pj == pytest.approx(total, rel=1e-12)


class TestMissRate:
    def test_flush_cost_shrinks_with_update_period(self, geometry, traces, lut):
        """Section III-A3: updates ride on flushes, so their miss cost is
        set by the update frequency — at the simulator's compressed
        frequencies the cost is visible but bounded, and lengthening the
        period must shrink it (in deployment, day-scale periods make it
        vanish)."""
        static = run(geometry, traces["say"], lut, "static")
        frequent = run(geometry, traces["say"], lut, "probing", updates=16)
        rare = run(geometry, traces["say"], lut, "probing", updates=4)
        cost_frequent = static.hit_rate - frequent.hit_rate
        cost_rare = static.hit_rate - rare.hit_rate
        assert cost_rare < cost_frequent < 0.06

    def test_updates_applied_matches_schedule(self, geometry, traces, lut):
        probing = run(geometry, traces["say"], lut, "probing")
        assert probing.updates_applied >= 14  # ~16 scheduled, tail may not fire

    def test_describe_mentions_key_numbers(self, geometry, traces, lut):
        result = run(geometry, traces["say"], lut, "probing")
        text = result.describe()
        assert "say" in text
        assert "lifetime" in text
