"""Tests for the NBTI drift model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aging.nbti import NBTIModel
from repro.errors import ModelError
from repro.utils.units import years_to_seconds

MODEL = NBTIModel()


class TestConstruction:
    def test_rejects_nonpositive_prefactor(self):
        with pytest.raises(ModelError):
            NBTIModel(prefactor=0.0)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ModelError):
            NBTIModel(time_exponent=0.0)
        with pytest.raises(ModelError):
            NBTIModel(time_exponent=1.0)

    def test_rejects_non_retentive_drowsy_voltage(self):
        with pytest.raises(ModelError):
            NBTIModel(vdd_low=0.3, vth_p=0.32)

    def test_rejects_inverted_rails(self):
        with pytest.raises(ModelError):
            NBTIModel(vdd=0.6, vdd_low=0.66)


class TestSleepStressFactor:
    def test_calibrated_near_quarter(self):
        """The calibrated drowsy state retains ~25% of the aging rate,
        i.e. eta ~ 0.75 — the value that reproduces the paper's
        lifetime/idleness relation (see DESIGN.md)."""
        assert MODEL.sleep_stress_factor == pytest.approx(0.25, abs=0.01)
        assert MODEL.sleep_recovery_efficiency == pytest.approx(0.75, abs=0.01)

    def test_deeper_retention_voltage_reduces_stress(self):
        shallow = NBTIModel(vdd_low=0.9)
        deep = NBTIModel(vdd_low=0.5)
        assert deep.sleep_stress_factor < shallow.sleep_stress_factor


class TestEffectiveDuty:
    def test_no_sleep_passthrough(self):
        assert MODEL.effective_duty(0.5, 0.0) == pytest.approx(0.5)

    def test_full_sleep_scales_by_gamma(self):
        gamma = MODEL.sleep_stress_factor
        assert MODEL.effective_duty(0.5, 1.0) == pytest.approx(0.5 * gamma)

    def test_linear_in_psleep(self):
        mid = MODEL.effective_duty(0.5, 0.5)
        lo = MODEL.effective_duty(0.5, 0.0)
        hi = MODEL.effective_duty(0.5, 1.0)
        assert mid == pytest.approx(0.5 * (lo + hi))

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            MODEL.effective_duty(1.5)
        with pytest.raises(ModelError):
            MODEL.effective_duty(0.5, -0.1)


class TestDrift:
    def test_zero_at_time_zero(self):
        assert MODEL.delta_vth(0.0, 0.5) == 0.0

    def test_power_law_exponent(self):
        """64x the time gives 2x the shift (n = 1/6)."""
        t = years_to_seconds(0.1)
        one = MODEL.delta_vth(t, 0.5)
        sixty_four = MODEL.delta_vth(64 * t, 0.5)
        assert sixty_four == pytest.approx(2.0 * one, rel=1e-9)

    def test_monotone_in_time(self):
        times = np.array([years_to_seconds(t) for t in np.linspace(0.1, 10, 25)])
        shifts = MODEL.delta_vth(times, 0.5)
        assert np.all(np.diff(shifts) > 0)

    def test_monotone_in_duty(self):
        t = years_to_seconds(1.0)
        assert MODEL.delta_vth(t, 0.9) > MODEL.delta_vth(t, 0.1)

    def test_sleep_slows_drift(self):
        t = years_to_seconds(1.0)
        assert MODEL.delta_vth(t, 0.5, psleep=0.8) < MODEL.delta_vth(t, 0.5)

    def test_rejects_negative_time(self):
        with pytest.raises(ModelError):
            MODEL.delta_vth(-1.0, 0.5)


class TestInversion:
    def test_round_trip(self):
        t = years_to_seconds(2.93)
        shift = MODEL.delta_vth(t, 0.5)
        assert MODEL.time_to_reach(shift, 0.5) == pytest.approx(t, rel=1e-9)

    def test_unstressed_lives_forever(self):
        assert MODEL.time_to_reach(0.05, 0.0) == float("inf")

    @given(
        st.floats(min_value=0.01, max_value=0.2),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_property_round_trip(self, shift, duty, psleep):
        t = MODEL.time_to_reach(shift, duty, psleep)
        recovered = MODEL.delta_vth(t, duty, psleep)
        assert recovered == pytest.approx(shift, rel=1e-6)


class TestCalibration:
    def test_prefactor_fit_hits_target(self):
        calibrated = MODEL.calibrated_prefactor(0.05, 2.93, 0.5)
        t = calibrated.time_to_reach(0.05, 0.5)
        assert t == pytest.approx(years_to_seconds(2.93), rel=1e-9)

    def test_rejects_bad_targets(self):
        with pytest.raises(ModelError):
            MODEL.calibrated_prefactor(-0.1, 2.93)
        with pytest.raises(ModelError):
            MODEL.calibrated_prefactor(0.05, 0.0)


class TestLifetimeScaling:
    """The linearized lifetime law the tables rely on."""

    def test_lifetime_inverse_in_effective_duty(self):
        shift = 0.05
        base = MODEL.time_to_reach(shift, 0.5, 0.0)
        for psleep in (0.2, 0.42, 0.68, 0.95):
            expected = base / (1.0 - MODEL.sleep_recovery_efficiency * psleep)
            assert MODEL.time_to_reach(shift, 0.5, psleep) == pytest.approx(
                expected, rel=1e-9
            )

    def test_paper_anchor_value(self):
        """Idleness 0.68 at base 2.93y gives the paper's 5.98 years."""
        shift = 0.05
        model = MODEL.calibrated_prefactor(shift, 2.93, 0.5)
        years = model.time_to_reach(shift, 0.5, 0.68) / years_to_seconds(1.0)
        assert years == pytest.approx(5.98, abs=0.02)
