"""Golden-number regression tests.

Pins the key calibrated quantities of the reproduction so accidental
model drift is caught immediately. The tolerances are tight: these
values are deterministic functions of the checked-in defaults and the
fixed master seed.
"""

from __future__ import annotations

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for


class TestCalibrationGoldens:
    def test_cell_base_lifetime(self, framework):
        assert framework.lifetime_years(0.5, 0.0) == pytest.approx(2.93, abs=1e-6)

    def test_fresh_snm_millivolts(self, framework):
        """Re-sizing the default cell changes every table; pin it."""
        assert framework.snm_fresh == pytest.approx(0.2218, abs=0.002)

    def test_eta_three_quarters(self, framework):
        assert framework.nbti.sleep_recovery_efficiency == pytest.approx(0.75, abs=0.005)

    def test_paper_anchor_5_98_years(self, framework):
        assert framework.lifetime_years(0.5, 0.68) == pytest.approx(5.98, abs=0.01)

    def test_reference_breakeven(self):
        config = ArchitectureConfig(CacheGeometry(16 * 1024, 16), num_banks=4)
        assert config.breakeven() == 20


class TestWorkloadGoldens:
    """Deterministic trace statistics at the default master seed."""

    @pytest.fixture(scope="class")
    def trace(self):
        geometry = CacheGeometry(16 * 1024, 16)
        return WorkloadGenerator(geometry, num_windows=400).generate(
            profile_for("dijkstra")
        )

    def test_trace_length_pinned(self, trace):
        # Exact regeneration from seed 2011 (stream hashing + LFSR).
        assert len(trace) == 289536

    def test_horizon(self, trace):
        assert trace.horizon == 400 * 1024


class TestSimulationGoldens:
    @pytest.fixture(scope="class")
    def result(self, lut):
        geometry = CacheGeometry(16 * 1024, 16)
        trace = WorkloadGenerator(geometry, num_windows=400).generate(
            profile_for("dijkstra")
        )
        config = ArchitectureConfig(
            geometry, num_banks=4, policy="probing",
            update_period_cycles=trace.horizon // 16,
        )
        return FastSimulator(config, lut).run(trace)

    def test_lifetime_band(self, result):
        assert result.lifetime_years == pytest.approx(3.9, abs=0.25)

    def test_energy_savings_band(self, result):
        assert result.energy_savings == pytest.approx(0.40, abs=0.04)

    def test_hit_rate_band(self, result):
        assert 0.93 < result.hit_rate < 0.995

    def test_updates_exact(self, result):
        assert result.updates_applied == 15
