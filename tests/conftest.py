"""Shared fixtures.

The lifetime LUT and characterization framework are expensive to build
(butterfly-curve bisection), so they are session-scoped; everything else
is cheap and constructed per test.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# The reprolint tool package lives beside the library in tools/ (it is
# installed from there by `pip install -e .`); make it importable when
# the suite runs from an uninstalled checkout with only PYTHONPATH=src.
_TOOLS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from repro.aging.cell import CharacterizationFramework
from repro.aging.lut import LifetimeLUT
from repro.cache.geometry import CacheGeometry
from repro.trace.trace import Trace


@pytest.fixture(scope="session")
def framework() -> CharacterizationFramework:
    """Calibrated 45nm-like characterization framework."""
    return CharacterizationFramework()


@pytest.fixture(scope="session")
def lut(framework: CharacterizationFramework) -> LifetimeLUT:
    """Small but sufficient lifetime LUT sharing the session framework."""
    return LifetimeLUT(framework, p0_points=3, psleep_points=21)


@pytest.fixture()
def geometry_16k() -> CacheGeometry:
    """The paper's reference geometry: 16kB, 16-byte lines."""
    return CacheGeometry(16 * 1024, 16)


@pytest.fixture()
def geometry_small() -> CacheGeometry:
    """A tiny geometry for exhaustive checks: 1kB, 16-byte lines."""
    return CacheGeometry(1024, 16)


def make_random_trace(
    seed: int,
    length: int = 2000,
    max_gap: int = 50,
    address_space_lines: int = 4096,
    line_size: int = 16,
    name: str = "random",
) -> Trace:
    """Deterministic random trace used by several engine tests."""
    rng = np.random.default_rng(seed)
    cycles = np.cumsum(rng.integers(1, max_gap, size=length)).astype(np.int64)
    addresses = (rng.integers(0, address_space_lines, size=length) * line_size).astype(
        np.int64
    )
    return Trace(cycles, addresses, name=name)


@pytest.fixture()
def random_trace() -> Trace:
    """A medium random trace."""
    return make_random_trace(seed=42)
