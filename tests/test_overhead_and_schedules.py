"""Tests for the hardware overhead model and irregular update schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.simulator import ReferenceSimulator
from repro.errors import ConfigurationError
from repro.hw.overhead import (
    block_control_cost,
    estimate_overhead,
    one_hot_encoder_cost,
    remap_cost,
)
from repro.indexing.update import UpdateSchedule, poisson_flush_schedule
from tests.conftest import make_random_trace

GEOMETRY = CacheGeometry(16 * 1024, 16)


class TestOneHotCost:
    def test_depth_is_one_gate(self):
        """The paper: the encoder's critical path is a single gate."""
        for banks in (2, 4, 8, 16):
            _, depth = one_hot_encoder_cost(banks)
            assert depth == 1

    def test_cost_grows_with_banks(self):
        costs = [one_hot_encoder_cost(m)[0] for m in (2, 4, 8, 16)]
        assert costs == sorted(costs)

    def test_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            one_hot_encoder_cost(3)


class TestRemapCost:
    def test_static_is_free(self):
        assert remap_cost("static", 4) == (0.0, 0)

    def test_scrambling_is_single_gate_deep(self):
        _, depth = remap_cost("scrambling", 4)
        assert depth == 1

    def test_probing_depth_is_adder_width(self):
        _, depth = remap_cost("probing", 3)
        assert depth == 3

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            remap_cost("rotate", 2)


class TestOverheadReport:
    def test_total_is_tiny_vs_sram_macro(self):
        """A 16kB SRAM macro is ~100k µm² at 45nm; the additions must be
        well under 1% of that."""
        config = ArchitectureConfig(
            GEOMETRY, num_banks=4, policy="probing", update_period_cycles=1
        )
        report = estimate_overhead(config)
        assert report.area_um2 < 1000.0
        assert report.total_ge > 0

    def test_critical_path_few_gates(self):
        """Access-path depth stays in the 'negligible' regime the paper
        claims (encoder 1 gate + p-bit remap)."""
        for policy, bound in (("probing", 5), ("scrambling", 2)):
            config = ArchitectureConfig(
                GEOMETRY, num_banks=8, policy=policy, update_period_cycles=1
            )
            assert estimate_overhead(config).critical_path_gates <= bound

    def test_control_cost_scales_with_banks(self):
        small = block_control_cost(2, 20)
        large = block_control_cost(16, 20)
        assert large == pytest.approx(8 * small)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            block_control_cost(0, 20)


class TestExplicitSchedules:
    def test_from_events_fires_in_order(self):
        schedule = UpdateSchedule.from_events([10, 40, 45])
        fired = [cycle for cycle in range(50) if schedule.due(cycle)]
        assert fired == [10, 40, 45]

    def test_drains_multiple_overdue(self):
        schedule = UpdateSchedule.from_events([10, 20, 30])
        count = 0
        while schedule.due(100):
            count += 1
        assert count == 3

    def test_updates_before(self):
        schedule = UpdateSchedule.from_events([10, 20, 30])
        assert schedule.updates_before(25) == 2
        schedule.due(15)  # consumes the event at 10
        assert schedule.updates_before(25) == 1

    def test_boundaries_up_to(self):
        schedule = UpdateSchedule.from_events([10, 20, 30])
        assert schedule.boundaries_up_to(22).tolist() == [10, 20]

    def test_rejects_bad_events(self):
        with pytest.raises(ConfigurationError):
            UpdateSchedule.from_events([10, 10])
        with pytest.raises(ConfigurationError):
            UpdateSchedule.from_events([-1, 4])

    def test_periodic_boundaries_unchanged(self):
        schedule = UpdateSchedule(100)
        assert schedule.boundaries_up_to(350).tolist() == [100, 200, 300]


class TestPoissonFlushSchedule:
    def test_events_valid_and_within_horizon(self):
        rng = np.random.default_rng(5)
        events = poisson_flush_schedule(100_000, 5_000, rng)
        assert all(0 < c < 100_000 for c in events)
        assert all(b > a for a, b in zip(events, events[1:]))

    def test_mean_interval_roughly_respected(self):
        rng = np.random.default_rng(6)
        events = poisson_flush_schedule(1_000_000, 10_000, rng)
        assert 60 <= len(events) <= 150  # ~100 expected

    def test_validation(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ConfigurationError):
            poisson_flush_schedule(0, 10, rng)
        with pytest.raises(ConfigurationError):
            poisson_flush_schedule(100, 0, rng)


class TestEnginesWithIrregularSchedules:
    def test_engines_agree_on_poisson_updates(self, lut):
        trace = make_random_trace(seed=31, length=1200)
        events = poisson_flush_schedule(
            trace.horizon, trace.horizon // 12, np.random.default_rng(8)
        )
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_events=events,
        )
        fast = FastSimulator(config, lut).run(trace)
        reference = ReferenceSimulator(config, lut).run(trace)
        assert fast.bank_stats == reference.bank_stats
        assert fast.cache_stats.hits == reference.cache_stats.hits
        assert fast.updates_applied == reference.updates_applied
        assert fast.flush_invalidations == reference.flush_invalidations

    def test_irregular_updates_still_balance(self, lut):
        """Uniformization does not require regular spacing — the count
        matters. Probing with ~24 Poisson updates balances idleness."""
        from repro.trace.generator import WorkloadGenerator
        from repro.trace.mediabench import profile_for

        geometry = CacheGeometry(16 * 1024, 16)
        trace = WorkloadGenerator(geometry, num_windows=400).generate(
            profile_for("adpcm.dec")
        )
        events = poisson_flush_schedule(
            trace.horizon, trace.horizon // 24, np.random.default_rng(9)
        )
        config = ArchitectureConfig(
            geometry, num_banks=4, policy="probing", update_events=events
        )
        result = FastSimulator(config, lut).run(trace)
        static = FastSimulator(
            ArchitectureConfig(geometry, num_banks=4, policy="static"), lut
        ).run(trace)
        spread = max(result.bank_idleness) - min(result.bank_idleness)
        static_spread = max(static.bank_idleness) - min(static.bank_idleness)
        # Epoch lengths are now random, so the time-weighted balance is
        # noisier than with periodic updates — but still a large
        # improvement over no re-indexing.
        assert spread < 0.4 * static_spread

    def test_config_validates_events(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(
                GEOMETRY, num_banks=4, policy="probing", update_events=(5, 5)
            )
