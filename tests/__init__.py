"""Test suite for the repro package."""
