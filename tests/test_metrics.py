"""The pluggable metrics pipeline: registry behavior, recompute from
stored counters (retroactively, on stores written before the pipeline
existed), and the CLI surfaces."""

from __future__ import annotations

import json
import os

import pytest

from repro.cache.geometry import CacheGeometry
from repro.campaign import CampaignSpec, CampaignStore, TraceSpec, run_campaign
from repro.cli import main
from repro.core.config import ArchitectureConfig
from repro.core.metrics import (
    Metric,
    compute_metric,
    compute_metrics,
    get_metric,
    metric_names,
    register_metric,
    registered_metrics,
    unregister_metric,
)
from repro.core.simulator import simulate
from repro.errors import ConfigurationError, UnknownMetricError
from tests.conftest import make_random_trace


@pytest.fixture()
def config():
    return ArchitectureConfig(
        CacheGeometry(4 * 1024, 16),
        num_banks=4,
        policy="probing",
        update_period_cycles=5000,
    )


@pytest.fixture()
def result(config, lut):
    return simulate(config, make_random_trace(seed=23, length=900), lut)


class WakeRateMetric(Metric):
    name = "wake_rate"
    description = "sleep transitions per 1000 cycles"
    provides = ("wakes_per_kcycle",)

    def compute(self, measurement, lut=None):
        wakes = sum(s.transitions for s in measurement.bank_stats)
        cycles = measurement.total_cycles
        return {"wakes_per_kcycle": 1000.0 * wakes / cycles if cycles else 0.0}


@pytest.fixture()
def scratch_metrics():
    added = []

    def add(metric, **kwargs):
        register_metric(metric, **kwargs)
        added.append(metric.name)
        return metric

    yield add
    for name in added:
        try:
            unregister_metric(name)
        except UnknownMetricError:
            pass


class TestRegistry:
    def test_builtin_metrics_present(self):
        names = metric_names()
        for name in (
            "energy",
            "lifetime",
            "lifetime_spread",
            "idleness_spread",
            "transition_share",
            "nbti_delta_vth",
            "snm_margin",
        ):
            assert name in names

    def test_duplicate_name_rejected(self, scratch_metrics):
        scratch_metrics(WakeRateMetric())
        with pytest.raises(ConfigurationError, match="already registered"):
            register_metric(WakeRateMetric())

    def test_value_name_collision_rejected(self, scratch_metrics):
        scratch_metrics(WakeRateMetric())

        class Clash(Metric):
            name = "clash"
            provides = ("wakes_per_kcycle",)

            def compute(self, measurement, lut=None):  # pragma: no cover
                return {}

        with pytest.raises(ConfigurationError, match="already provided"):
            register_metric(Clash())

    def test_metric_must_provide_values(self):
        class Empty(Metric):
            name = "empty"
            provides = ()

        with pytest.raises(ConfigurationError, match="provides no value"):
            register_metric(Empty())

    def test_unknown_lookups_list_known_names(self, result):
        with pytest.raises(UnknownMetricError, match="energy"):
            get_metric("nope")
        with pytest.raises(UnknownMetricError, match="lifetime_years"):
            compute_metric(result.measurement(), "nope")

    def test_unregister_cleans_provides(self, scratch_metrics, result):
        scratch_metrics(WakeRateMetric())
        assert result.metric("wakes_per_kcycle") >= 0.0
        unregister_metric("wake_rate")
        with pytest.raises(UnknownMetricError):
            compute_metric(result.measurement(), "wakes_per_kcycle")
        register_metric(WakeRateMetric())  # fixture removes it again


class TestEagerMetricsOnResults:
    def test_metrics_mapping_is_populated(self, result):
        metrics = result.metrics
        assert metrics["energy_pj"] == result.energy_pj
        assert metrics["baseline_energy_pj"] == result.baseline_energy_pj
        assert metrics["energy_savings"] == result.energy_savings
        assert metrics["lifetime_years"] == result.lifetime_years
        assert metrics["limiting_bank"] == result.lifetime.limiting_bank

    def test_spread_metrics_match_their_definitions(self, result):
        idleness = result.bank_idleness
        assert result.metrics["idleness_spread"] == pytest.approx(
            max(idleness) - min(idleness)
        )
        lifetimes = result.lifetime.bank_lifetimes_years
        assert result.metrics["bank_lifetime_spread_years"] == pytest.approx(
            max(lifetimes) - min(lifetimes)
        )

    def test_transition_share_matches_breakdowns(self, result):
        total = sum(b.total for b in result.bank_energy)
        transitions = sum(b.transitions for b in result.bank_energy)
        assert result.metrics["sleep_transition_share"] == pytest.approx(
            transitions / total
        )

    def test_nbti_delta_vth_monotone_in_sleep(self, config, lut):
        trace = make_random_trace(seed=9, length=600)
        managed = simulate(config, trace, lut)
        unmanaged = simulate(
            config.monolithic(), trace, lut
        )  # no sleep => more stress
        assert (
            unmanaged.metrics["nbti_delta_vth_10y_mv"]
            >= managed.metrics["nbti_delta_vth_10y_mv"]
        )

    def test_explicit_lut_forces_recompute(self, result, lut):
        from repro.aging.cell import CharacterizationFramework
        from repro.aging.lut import LifetimeLUT

        # A deliberately different LUT (recalibrated base lifetime).
        other = LifetimeLUT(
            CharacterizationFramework(calibrate_to_years=5.0, snm_samples=81),
            p0_points=3,
            psleep_points=21,
        )
        cached = result.metric("lifetime_years")
        assert cached == result.metrics["lifetime_years"]
        recomputed = result.metric("lifetime_years", lut=other)
        assert recomputed != cached  # not the silently cached value
        # Engine payloads are LUT-independent and stay readable.
        fine = simulate(
            result.config, make_random_trace(seed=41, length=200), lut,
            engine="finegrain",
        )
        assert fine.metric("line_breakeven_cycles", lut=other) == (
            fine.metrics["line_breakeven_cycles"]
        )

    def test_lazy_metric_not_eager_but_computable(self, result, lut):
        assert "snm_margin_10y_mv" not in result.metrics
        margin = result.metric("snm_margin_10y_mv", lut=lut)
        assert isinstance(margin, float)

    def test_custom_metric_applies_to_new_results(
        self, scratch_metrics, config, lut
    ):
        scratch_metrics(WakeRateMetric())
        fresh = simulate(config, make_random_trace(seed=4, length=300), lut)
        wakes = sum(s.transitions for s in fresh.bank_stats)
        assert fresh.metrics["wakes_per_kcycle"] == pytest.approx(
            1000.0 * wakes / fresh.total_cycles
        )

    def test_compute_metrics_eager_only_flag(self, result, lut):
        eager = compute_metrics(result.measurement(), lut)
        assert "snm_margin_10y_mv" not in eager
        everything = compute_metrics(result.measurement(), lut, eager_only=False)
        assert "snm_margin_10y_mv" in everything


class TestRecomputeFromStoredCounters:
    """New metrics must appear on existing stores without resimulation."""

    def spec(self):
        return CampaignSpec(
            name="retro",
            traces=(TraceSpec.synthetic("sha", num_windows=30, size_bytes=4096),),
            base=ArchitectureConfig(
                CacheGeometry(4096, 16),
                num_banks=2,
                policy="probing",
                update_period_cycles=4000,
            ),
            axes={"policy": ["static", "probing"]},
        )

    @pytest.fixture()
    def legacy_store_dir(self, tmp_path, lut):
        """A campaign store whose record files predate the metrics
        pipeline: no "metrics" and no "template" keys, exactly like a
        store written by the previous serializer."""
        store_dir = tmp_path / "store"
        run_campaign(self.spec(), directory=store_dir, lut=lut)
        results_dir = store_dir / "results"
        stripped = 0
        for path in sorted(results_dir.rglob("*.json")):
            payload = json.loads(path.read_text())
            assert "metrics" in payload["record"]
            del payload["record"]["metrics"]
            del payload["record"]["template"]
            path.write_text(json.dumps(payload))
            stripped += 1
        assert stripped == 2
        return store_dir

    def test_rerun_on_legacy_store_simulates_nothing(self, legacy_store_dir, lut):
        rerun = run_campaign(self.spec(), directory=legacy_store_dir, lut=lut)
        assert (rerun.simulated, rerun.reused) == (0, 2)

    def test_new_metrics_recomputed_without_resimulating(
        self, legacy_store_dir, lut
    ):
        store = CampaignStore(legacy_store_dir)
        records = store.records()
        assert len(records) == 2
        for record in records:
            assert record.stored_metrics is None  # truly legacy
            # Pin against a direct simulation of the identical point.
            direct = simulate(
                record.architecture(),
                self.spec().traces[0].build(),
                lut,
            )
            for name in (
                "bank_lifetime_spread_years",
                "idleness_spread",
                "sleep_transition_share",
                "nbti_delta_vth_10y_mv",
            ):
                assert record.metric(name, lut=lut) == pytest.approx(
                    direct.metrics[name], rel=1e-12
                ), name

    def test_campaign_show_metric_flag_works_retroactively(
        self, legacy_store_dir, capsys
    ):
        code = main(
            [
                "campaign",
                "show",
                str(legacy_store_dir),
                "--metric",
                "bank_lifetime_spread_years",
                "--metric",
                "sleep_transition_share",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bank_lifetime_spread_years" in out
        assert "sleep_transition_share" in out
        assert "2 stored records" in out

    def test_show_unknown_metric_reports_cleanly(self, legacy_store_dir, capsys):
        code = main(["campaign", "show", str(legacy_store_dir), "--metric", "nope"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no registered metric provides" in captured.err

    def test_engine_payload_metrics_survive_the_round_trip(self, tmp_path, lut):
        spec = CampaignSpec(
            name="fg-payload",
            traces=(TraceSpec.synthetic("sha", num_windows=30, size_bytes=4096),),
            base=ArchitectureConfig(CacheGeometry(4096, 16), num_banks=2),
            engine="finegrain",
        )
        store_dir = tmp_path / "store"
        run_campaign(spec, directory=store_dir, lut=lut)
        record = CampaignStore(store_dir).records()[0]
        assert record.template == "finegrain"
        assert record.stored_metrics["line_breakeven_cycles"] > 0
        rebuilt = record.to_result(lut)
        assert (
            rebuilt.metrics["line_breakeven_cycles"]
            == record.stored_metrics["line_breakeven_cycles"]
        )


class TestZeroBaselineGuards:
    def test_finegrain_result_energy_savings_guard(self):
        import numpy as np

        from repro.finegrain.sim import FineGrainResult

        degenerate = FineGrainResult(
            line_sleep_fraction=np.zeros(4),
            line_accesses=np.zeros(4, dtype=np.int64),
            hits=0,
            misses=0,
            updates_applied=0,
            energy_pj=0.0,
            baseline_energy_pj=0.0,
            lifetime_years=2.93,
            line_lifetimes_years=np.full(4, 2.93),
        )
        assert degenerate.energy_savings == 0.0
        assert degenerate.hit_rate == 0.0

    def test_simulation_result_energy_savings_guard(self, result):
        from dataclasses import replace

        degenerate = replace(result, energy_pj=0.0, baseline_energy_pj=0.0)
        assert degenerate.energy_savings == 0.0


class TestTemplateRegistry:
    def test_builtin_templates(self):
        from repro.core.metrics import template_names

        assert template_names() == ("banked", "finegrain")

    def test_unknown_template_rejected_with_known_names(self, result):
        from repro.core.metrics import Measurement
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="finegrain"):
            Measurement(
                config=result.config,
                trace_name="t",
                total_cycles=10,
                bank_stats=result.bank_stats,
                cache_stats=result.cache_stats,
                updates_applied=0,
                flush_invalidations=0,
                template="mymachine",
            )

    def test_custom_template_assembles_results(self, result, lut):
        from repro.core.metrics import (
            MeasurementTemplate,
            register_template,
            unregister_template,
        )
        from repro.core.simulator import assemble_result
        from repro.power.energy import BankEnergyBreakdown

        def flat_breakdowns(measurement):
            return tuple(
                BankEnergyBreakdown(
                    dynamic=float(s.accesses),
                    leakage_active=0.0,
                    leakage_drowsy=0.0,
                    transitions=0.0,
                )
                for s in measurement.bank_stats
            )

        register_template(
            MeasurementTemplate(
                name="flat",
                description="1 pJ per access, nothing else",
                breakdowns=flat_breakdowns,
            )
        )
        try:
            assembled = assemble_result(
                result.config,
                result.trace_name,
                result.total_cycles,
                list(result.bank_stats),
                result.cache_stats,
                result.updates_applied,
                result.flush_invalidations,
                lut,
                template="flat",
            )
            assert assembled.template == "flat"
            assert assembled.energy_pj == float(result.total_accesses)
            assert assembled.metrics["sleep_transition_share"] == 0.0
        finally:
            unregister_template("flat")

    def test_duplicate_template_rejected(self):
        from repro.core.metrics import MeasurementTemplate, register_template

        with pytest.raises(ConfigurationError, match="already registered"):
            register_template(
                MeasurementTemplate(
                    name="banked", description="impostor", breakdowns=lambda m: ()
                )
            )


class TestReplaceValidationOrder:
    def test_failed_replace_leaves_old_metric_installed(self, result):
        class BadEnergy(Metric):
            name = "energy"
            provides = ("energy_pj", "idleness_spread")  # second is owned

            def compute(self, measurement, lut=None):  # pragma: no cover
                return {}

        with pytest.raises(ConfigurationError, match="already provided"):
            register_metric(BadEnergy(), replace=True)
        # The original energy metric must still be fully functional.
        assert compute_metric(result.measurement(), "energy_savings") == (
            result.metrics["energy_savings"]
        )
        assert get_metric("energy").provides == (
            "energy_pj",
            "baseline_energy_pj",
            "energy_savings",
        )


class TestWorkerPluginPropagation:
    """Custom registry entries must reach parallel pool workers."""

    def test_init_worker_installs_parent_plugins(self, lut):
        from repro.analysis.sweep import _init_worker, _simulate_chunk
        from repro.core.engine import get_engine, unregister_engine
        from repro.core.metrics import unregister_metric
        from repro.core.simulator import ReferenceSimulator
        from repro.errors import UnknownEngineError

        class PluginEngine:
            name = "plugin-engine"
            description = "test plugin"
            priority = 0
            auto_eligible = False
            family = "banked"

            def supports(self, config):
                return True

            def run(self, config, trace, lut=None, plan=None):
                return ReferenceSimulator(config, lut, plan=plan).run(trace)

        engine = PluginEngine()
        metric = WakeRateMetric()
        trace = make_random_trace(seed=31, length=200)
        base = ArchitectureConfig(CacheGeometry(4096, 16), num_banks=2)
        # Emulate a spawn-started worker: neither plugin is registered.
        with pytest.raises(UnknownEngineError):
            get_engine("plugin-engine")
        _init_worker(trace, lut, engines=(engine,), metrics=(metric,))
        try:
            chunk = _simulate_chunk(
                (base, ["num_banks"], [(2,), (4,)], None, "plugin-engine")
            )
            assert len(chunk) == 2
            assert all("wakes_per_kcycle" in r.metrics for r in chunk)
        finally:
            unregister_engine("plugin-engine")
            unregister_metric("wake_rate")

    def test_parallel_sweep_with_custom_engine_and_metric(
        self, scratch_metrics, lut
    ):
        from repro.analysis.sweep import sweep
        from repro.core.engine import register_engine, unregister_engine
        from repro.core.simulator import ReferenceSimulator

        class EchoEngine:
            name = "echo"
            description = "reference under another name"
            priority = 0
            auto_eligible = False
            family = "banked"

            def supports(self, config):
                return True

            def run(self, config, trace, lut=None, plan=None):
                return ReferenceSimulator(config, lut, plan=plan).run(trace)

        scratch_metrics(WakeRateMetric())
        register_engine(EchoEngine())
        try:
            trace = make_random_trace(seed=32, length=300)
            base = ArchitectureConfig(CacheGeometry(4096, 16), num_banks=2)
            grid = sweep(
                base,
                trace,
                {"num_banks": [2, 4]},
                lut,
                engine="echo",
                parallel=2,
            )
            assert len(grid) == 2
            assert all("wakes_per_kcycle" in p.result.metrics for p in grid)
        finally:
            unregister_engine("echo")


class TestBuiltinOverridesShipToWorkers:
    def test_replaced_builtin_metric_counts_as_a_plugin(self):
        from repro.core.metrics import custom_metrics

        original = get_metric("idleness_spread")
        assert all(m.name != "idleness_spread" for m in custom_metrics())

        class Override(Metric):
            name = "idleness_spread"
            provides = ("idleness_spread",)

            def compute(self, measurement, lut=None):
                return original.compute(measurement, lut)

        override = Override()
        register_metric(override, replace=True)
        try:
            assert any(m is override for m in custom_metrics())
        finally:
            register_metric(original, replace=True)
        assert all(m.name != "idleness_spread" for m in custom_metrics())


class TestCLIMetricsCommand:
    def test_metrics_command_lists_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        for metric in registered_metrics():
            assert metric.name in out
        assert "lazy" in out and "eager" in out
        assert "snm_margin_10y_mv" in out
