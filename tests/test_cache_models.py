"""Tests for the direct-mapped, set-associative and banked cache models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.banked import BankedCache
from repro.cache.directmapped import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import AccessOutcome
from repro.errors import GeometryError
from repro.hw.remap import ProbingRemapper


class TestDirectMapped:
    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(CacheGeometry(1024, 16))
        assert cache.access(0x100) is AccessOutcome.MISS
        assert cache.access(0x100) is AccessOutcome.HIT

    def test_conflict_eviction(self):
        geometry = CacheGeometry(1024, 16)  # 64 lines
        cache = DirectMappedCache(geometry)
        a = 0x000
        b = a + geometry.size_bytes  # same index, different tag
        cache.access(a)
        assert cache.access(b) is AccessOutcome.MISS
        assert cache.access(a) is AccessOutcome.MISS  # evicted by b

    def test_same_line_different_offset_hits(self):
        cache = DirectMappedCache(CacheGeometry(1024, 16))
        cache.access(0x100)
        assert cache.access(0x10F) is AccessOutcome.HIT

    def test_flush_invalidates(self):
        cache = DirectMappedCache(CacheGeometry(1024, 16))
        cache.access(0x100)
        cache.access(0x200)
        assert cache.flush() == 2
        assert cache.access(0x100) is AccessOutcome.MISS
        assert cache.stats.flushes == 1

    def test_probe_does_not_allocate(self):
        cache = DirectMappedCache(CacheGeometry(1024, 16))
        assert not cache.probe(0x100)
        cache.access(0x100)
        assert cache.probe(0x100)
        assert cache.stats.accesses == 1

    def test_valid_lines_tracks_distinct_indices(self):
        cache = DirectMappedCache(CacheGeometry(1024, 16))
        for i in range(10):
            cache.access(i * 16)
        assert cache.valid_lines == 10

    def test_rejects_associative_geometry(self):
        with pytest.raises(GeometryError):
            DirectMappedCache(CacheGeometry(1024, 16, ways=2))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=300))
    def test_property_matches_dict_model(self, addresses):
        """The cache must agree with an obvious dict-based model."""
        geometry = CacheGeometry(512, 16)
        cache = DirectMappedCache(geometry)
        model: dict[int, int] = {}
        for address in addresses:
            tag, index, _ = geometry.split(address)
            expected = AccessOutcome.HIT if model.get(index) == tag else AccessOutcome.MISS
            model[index] = tag
            assert cache.access(address) is expected


class TestSetAssociative:
    def test_ways_prevent_conflict(self):
        geometry = CacheGeometry(1024, 16, ways=2)
        cache = SetAssociativeCache(geometry)
        a, b = 0x000, 0x400
        cache.access(a)
        cache.access(b)
        assert cache.access(a) is AccessOutcome.HIT
        assert cache.access(b) is AccessOutcome.HIT

    def test_lru_eviction_order(self):
        geometry = CacheGeometry(64, 16, ways=2)  # 2 sets
        cache = SetAssociativeCache(geometry)
        a, b, c = 0x00, 0x40, 0x80  # same set (index strides by 2 lines)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.access(a) is AccessOutcome.HIT
        assert cache.access(b) is AccessOutcome.MISS

    def test_direct_mapped_equivalence(self):
        """ways=1 set-associative must match the direct-mapped model."""
        geometry = CacheGeometry(512, 16)
        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 2**16, size=500)
        dm = DirectMappedCache(geometry)
        sa = SetAssociativeCache(geometry)
        for address in addresses:
            assert dm.access(int(address)) is sa.access(int(address))

    def test_flush(self):
        cache = SetAssociativeCache(CacheGeometry(1024, 16, ways=4))
        cache.access(0x0)
        cache.access(0x1000)
        assert cache.flush() == 2
        assert cache.valid_lines == 0


class TestBankedCache:
    def test_routing_matches_decoder(self):
        geometry = CacheGeometry(4096, 16)  # 256 lines
        cache = BankedCache(geometry, 4)
        _, decoded = cache.access(70 * 16)
        assert decoded.logical_bank == 1
        assert decoded.physical_bank == 1
        assert cache.stats.bank_accesses == [0, 1, 0, 0]

    def test_hit_miss_matches_monolithic_when_static(self):
        """Without remapping, banking must not change hit/miss behaviour
        (the paper: 'no degradation of miss rate is experienced')."""
        geometry = CacheGeometry(2048, 16)
        rng = np.random.default_rng(11)
        addresses = (rng.integers(0, 1024, size=800) * 16).astype(int)
        banked = BankedCache(geometry, 8)
        mono = DirectMappedCache(geometry)
        for address in addresses:
            outcome, _ = banked.access(int(address))
            assert outcome is mono.access(int(address))

    def test_remapped_accesses_still_hit_within_epoch(self):
        geometry = CacheGeometry(2048, 16)
        cache = BankedCache(geometry, 4, ProbingRemapper(2))
        cache.update_mapping()
        assert cache.access(0x500)[0] is AccessOutcome.MISS
        assert cache.access(0x500)[0] is AccessOutcome.HIT

    def test_update_mapping_flushes(self):
        geometry = CacheGeometry(2048, 16)
        cache = BankedCache(geometry, 4, ProbingRemapper(2))
        cache.access(0x500)
        dropped = cache.update_mapping()
        assert dropped == 1
        assert cache.access(0x500)[0] is AccessOutcome.MISS

    def test_remap_moves_physical_bank(self):
        geometry = CacheGeometry(2048, 16)
        cache = BankedCache(geometry, 4, ProbingRemapper(2))
        bank_before = cache.route(0x500).physical_bank
        cache.update_mapping()
        bank_after = cache.route(0x500).physical_bank
        assert bank_after == (bank_before + 1) % 4

    def test_valid_lines_aggregates_banks(self):
        geometry = CacheGeometry(2048, 16)
        cache = BankedCache(geometry, 4)
        for i in range(12):
            cache.access(i * 16)
        assert cache.valid_lines == 12

    def test_rejects_more_banks_than_sets(self):
        with pytest.raises(GeometryError):
            BankedCache(CacheGeometry(64, 16), 8)

    def test_supports_set_associative_banks(self):
        geometry = CacheGeometry(2048, 16, ways=2)
        cache = BankedCache(geometry, 4)
        assert cache.access(0x0)[0] is AccessOutcome.MISS
        assert cache.access(0x0)[0] is AccessOutcome.HIT

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=2**18), min_size=1, max_size=200),
        st.integers(min_value=0, max_value=3),
    )
    def test_property_banked_equals_monolithic_modulo_remap(self, addresses, updates):
        """With any fixed remap state, hit/miss equals a monolithic cache
        that was flushed at the same points."""
        geometry = CacheGeometry(1024, 16)
        banked = BankedCache(geometry, 4, ProbingRemapper(2))
        mono = DirectMappedCache(geometry)
        for _ in range(updates):
            banked.update_mapping()
            mono.flush()
        for address in addresses:
            assert banked.access(address)[0] is mono.access(address)
