"""Tests for cache geometry and address decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.errors import GeometryError


class TestConstruction:
    def test_paper_configurations(self):
        for size_kb in (8, 16, 32):
            for line in (16, 32):
                geometry = CacheGeometry(size_kb * 1024, line)
                assert geometry.num_lines == size_kb * 1024 // line

    def test_rejects_non_power_sizes(self):
        with pytest.raises(GeometryError):
            CacheGeometry(3000, 16)
        with pytest.raises(GeometryError):
            CacheGeometry(1024, 24)
        with pytest.raises(GeometryError):
            CacheGeometry(1024, 16, ways=3)

    def test_rejects_line_larger_than_cache(self):
        with pytest.raises(GeometryError):
            CacheGeometry(16, 32)

    def test_rejects_excess_associativity(self):
        with pytest.raises(GeometryError):
            CacheGeometry(64, 16, ways=8)


class TestDerived:
    def test_paper_reference_16k(self):
        geometry = CacheGeometry(16 * 1024, 16)
        assert geometry.num_lines == 1024
        assert geometry.num_sets == 1024
        assert geometry.index_bits == 10
        assert geometry.offset_bits == 4

    def test_associativity_reduces_sets(self):
        geometry = CacheGeometry(16 * 1024, 16, ways=4)
        assert geometry.num_sets == 256
        assert geometry.index_bits == 8

    def test_larger_lines_reduce_index_bits(self):
        """Table III's geometry effect: doubling the line halves the sets."""
        ls16 = CacheGeometry(16 * 1024, 16)
        ls32 = CacheGeometry(16 * 1024, 32)
        assert ls32.index_bits == ls16.index_bits - 1


class TestSplit:
    def test_example(self):
        geometry = CacheGeometry(1024, 16)  # 64 lines, 6 index bits
        tag, index, offset = geometry.split(0x12345)
        assert offset == 0x5
        assert index == (0x12345 >> 4) & 0x3F
        assert tag == 0x12345 >> 10

    def test_rejects_negative(self):
        with pytest.raises(GeometryError):
            CacheGeometry(1024, 16).split(-1)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_round_trip(self, address):
        geometry = CacheGeometry(8 * 1024, 32)
        tag, index, offset = geometry.split(address)
        assert geometry.address_for(tag, index, offset) == address

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_line_address_clears_offset(self, address):
        geometry = CacheGeometry(8 * 1024, 32)
        line = geometry.line_address(address)
        assert line % 32 == 0
        assert geometry.index_of(line) == geometry.index_of(address)

    def test_address_for_validates(self):
        geometry = CacheGeometry(1024, 16)
        with pytest.raises(GeometryError):
            geometry.address_for(0, geometry.num_sets, 0)
        with pytest.raises(GeometryError):
            geometry.address_for(0, 0, 16)
        with pytest.raises(GeometryError):
            geometry.address_for(-1, 0, 0)
