"""Tests for result serialization."""

from __future__ import annotations

import json

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.serialize import (
    ResultRecord,
    SerializationError,
    load_results,
    result_to_dict,
    save_results,
)
from tests.conftest import make_random_trace


@pytest.fixture(scope="module")
def result(lut_mod):
    config = ArchitectureConfig(
        CacheGeometry(8 * 1024, 16), num_banks=4, policy="probing",
        update_period_cycles=8000,
    )
    return FastSimulator(config, lut_mod).run(make_random_trace(seed=77))


@pytest.fixture(scope="module")
def lut_mod():
    from repro.aging.lut import LifetimeLUT

    return LifetimeLUT.default()


class TestRoundTrip:
    def test_dict_contains_key_metrics(self, result):
        payload = result_to_dict(result)
        assert payload["lifetime_years"] == pytest.approx(result.lifetime_years)
        assert payload["energy_savings"] == pytest.approx(result.energy_savings)
        assert payload["config"]["num_banks"] == 4
        assert len(payload["bank_idleness"]) == 4

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "campaign.json"
        save_results([result, result], path)
        records = load_results(path)
        assert len(records) == 2
        for record in records:
            assert isinstance(record, ResultRecord)
            assert record.lifetime_years == pytest.approx(result.lifetime_years)
            assert record.bank_accesses == tuple(
                s.accesses for s in result.bank_stats
            )
            assert record.hit_rate == pytest.approx(result.hit_rate)

    def test_json_is_stable_and_sorted(self, result, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_results([result], path_a)
        save_results([result], path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_accepts_pre_flattened_dicts(self, result, tmp_path):
        path = tmp_path / "c.json"
        save_results([result_to_dict(result)], path)
        assert len(load_results(path)) == 1


class TestExactConfigPayload:
    """Format v2: the config payload rebuilds the exact config."""

    def test_payload_contains_full_config(self, result):
        config = result_to_dict(result)["config"]
        assert config["geometry"]["ways"] == 1
        assert config["update_period_cycles"] == 8000
        assert config["update_events"] is None
        assert config["frequency_hz"] == 400e6
        assert config["technology"]["e_access_fixed"] == 9.0

    def test_record_rebuilds_exact_architecture(self, result, tmp_path):
        path = tmp_path / "v2.json"
        save_results([result], path)
        (record,) = load_results(path)
        assert record.version == 2
        assert record.architecture() == result.config

    def test_record_rebuilds_bit_identical_result(self, result, lut_mod, tmp_path):
        path = tmp_path / "v2.json"
        save_results([result], path)
        (record,) = load_results(path)
        rebuilt = record.to_result(lut_mod)
        assert rebuilt.bank_stats == result.bank_stats
        assert rebuilt.cache_stats == result.cache_stats
        assert rebuilt.bank_energy == result.bank_energy
        assert rebuilt.energy_pj == result.energy_pj
        assert rebuilt.baseline_energy_pj == result.baseline_energy_pj
        assert rebuilt.lifetime_years == result.lifetime_years
        assert rebuilt.config == result.config

    def test_rich_config_survives(self, lut_mod, tmp_path):
        """ways>1, update_events and a custom technology — everything
        the v1 summary lost — round-trip through a results file."""
        from repro.power.energy import TechnologyParams

        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16, ways=2),
            num_banks=4,
            policy="scrambling",
            update_events=(500, 9000, 44000),
            breakeven_override=77,
            technology=TechnologyParams(leak_per_line=0.02, address_bits=40),
            frequency_hz=1e9,
        )
        original = FastSimulator(config, lut_mod).run(make_random_trace(seed=3))
        path = tmp_path / "rich.json"
        save_results([original], path)
        (record,) = load_results(path)
        assert record.architecture() == config


class TestV1Migration:
    @staticmethod
    def v1_payload(result) -> dict:
        """A file entry as FORMAT_VERSION 1 wrote it."""
        payload = result_to_dict(result)
        payload["version"] = 1
        config = result.config
        payload["config"] = {
            "size_bytes": config.geometry.size_bytes,
            "line_size": config.geometry.line_size,
            "ways": config.geometry.ways,
            "num_banks": config.num_banks,
            "policy": config.policy,
            "power_managed": config.power_managed,
            "update_period_cycles": config.update_period_cycles,
            "breakeven": config.breakeven(),
        }
        for counters in (
            "bank_idle_intervals",
            "bank_useful_intervals",
            "bank_idle_cycles",
            "bank_sleep_cycles",
            "bank_total_cycles",
        ):
            del payload[counters]
        return payload

    def test_v1_record_loads_and_migrates(self, result):
        record = ResultRecord.from_dict(self.v1_payload(result))
        assert record.version == 1
        assert record.lifetime_years == pytest.approx(result.lifetime_years)
        migrated = record.architecture()
        assert migrated.geometry == result.config.geometry
        assert migrated.policy == result.config.policy
        assert migrated.num_banks == result.config.num_banks
        # The effective breakeven is pinned as an override.
        assert migrated.breakeven() == result.config.breakeven()

    def test_v1_file_loads(self, result, tmp_path):
        import json as json_mod

        path = tmp_path / "old.json"
        path.write_text(
            json_mod.dumps({"version": 1, "results": [self.v1_payload(result)]})
        )
        (record,) = load_results(path)
        assert record.hit_rate == pytest.approx(result.hit_rate)

    def test_v1_cannot_rebuild_full_result(self, result):
        record = ResultRecord.from_dict(self.v1_payload(result))
        with pytest.raises(SerializationError, match="v1 records"):
            record.to_result()


class TestAtomicWrites:
    def test_failed_write_preserves_existing_file(self, result, tmp_path, monkeypatch):
        path = tmp_path / "campaign.json"
        save_results([result], path)
        good = path.read_text()

        import json as json_mod

        def explode(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(json_mod, "dump", explode)
        with pytest.raises(RuntimeError):
            save_results([result, result], path)
        monkeypatch.undo()
        assert path.read_text() == good
        assert list(tmp_path.glob("*.tmp")) == []

    def test_write_lands_complete(self, result, tmp_path):
        path = tmp_path / "campaign.json"
        save_results([result], path)
        assert len(load_results(path)) == 1
        assert list(tmp_path.glob("*.tmp")) == []


class TestValidation:
    def test_rejects_bad_version(self, result):
        payload = result_to_dict(result)
        payload["version"] = 99
        with pytest.raises(SerializationError):
            ResultRecord.from_dict(payload)

    def test_rejects_missing_fields(self, result):
        payload = result_to_dict(result)
        del payload["lifetime_years"]
        with pytest.raises(SerializationError):
            ResultRecord.from_dict(payload)

    def test_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(SerializationError):
            load_results(path)

    def test_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"version": 1, "results": {"a": 1}}))
        with pytest.raises(SerializationError):
            load_results(path)
