"""Tests for result serialization."""

from __future__ import annotations

import json

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.serialize import (
    ResultRecord,
    SerializationError,
    load_results,
    result_to_dict,
    save_results,
)
from tests.conftest import make_random_trace


@pytest.fixture(scope="module")
def result(lut_mod):
    config = ArchitectureConfig(
        CacheGeometry(8 * 1024, 16), num_banks=4, policy="probing",
        update_period_cycles=8000,
    )
    return FastSimulator(config, lut_mod).run(make_random_trace(seed=77))


@pytest.fixture(scope="module")
def lut_mod():
    from repro.aging.lut import LifetimeLUT

    return LifetimeLUT.default()


class TestRoundTrip:
    def test_dict_contains_key_metrics(self, result):
        payload = result_to_dict(result)
        assert payload["lifetime_years"] == pytest.approx(result.lifetime_years)
        assert payload["energy_savings"] == pytest.approx(result.energy_savings)
        assert payload["config"]["num_banks"] == 4
        assert len(payload["bank_idleness"]) == 4

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "campaign.json"
        save_results([result, result], path)
        records = load_results(path)
        assert len(records) == 2
        for record in records:
            assert isinstance(record, ResultRecord)
            assert record.lifetime_years == pytest.approx(result.lifetime_years)
            assert record.bank_accesses == tuple(
                s.accesses for s in result.bank_stats
            )
            assert record.hit_rate == pytest.approx(result.hit_rate)

    def test_json_is_stable_and_sorted(self, result, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_results([result], path_a)
        save_results([result], path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_accepts_pre_flattened_dicts(self, result, tmp_path):
        path = tmp_path / "c.json"
        save_results([result_to_dict(result)], path)
        assert len(load_results(path)) == 1


class TestValidation:
    def test_rejects_bad_version(self, result):
        payload = result_to_dict(result)
        payload["version"] = 99
        with pytest.raises(SerializationError):
            ResultRecord.from_dict(payload)

    def test_rejects_missing_fields(self, result):
        payload = result_to_dict(result)
        del payload["lifetime_years"]
        with pytest.raises(SerializationError):
            ResultRecord.from_dict(payload)

    def test_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(SerializationError):
            load_results(path)

    def test_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"version": 1, "results": {"a": 1}}))
        with pytest.raises(SerializationError):
            load_results(path)
