"""Direct tests of the fast engine's vectorized building blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.directmapped import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import AccessOutcome
from repro.core.fastsim import FastSimulator


class TestEpochHits:
    def hits_by_model(self, geometry, addresses):
        """Ground truth via the direct-mapped functional model."""
        cache = DirectMappedCache(geometry)
        return sum(1 for a in addresses if cache.access(int(a)) is AccessOutcome.HIT)

    def test_empty(self):
        hits, lines = FastSimulator._epoch_hits(
            np.empty(0, np.int64), np.empty(0, np.int64)
        )
        assert (hits, lines) == (0, 0)

    def test_single_access_is_miss(self):
        hits, lines = FastSimulator._epoch_hits(
            np.array([5], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        assert (hits, lines) == (0, 1)

    def test_repeat_hits(self):
        index = np.array([5, 5, 5], dtype=np.int64)
        tag = np.array([1, 1, 1], dtype=np.int64)
        assert FastSimulator._epoch_hits(index, tag) == (2, 1)

    def test_conflict_thrash(self):
        index = np.array([5, 5, 5, 5], dtype=np.int64)
        tag = np.array([1, 2, 1, 2], dtype=np.int64)
        assert FastSimulator._epoch_hits(index, tag) == (0, 1)

    def test_distinct_lines_counted(self):
        index = np.array([1, 2, 3, 1], dtype=np.int64)
        tag = np.zeros(4, dtype=np.int64)
        hits, lines = FastSimulator._epoch_hits(index, tag)
        assert lines == 3
        assert hits == 1

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**16), max_size=200))
    def test_property_matches_functional_model(self, addresses):
        geometry = CacheGeometry(512, 16)
        arr = np.asarray(addresses, dtype=np.int64)
        index = (arr >> geometry.offset_bits) & (geometry.num_sets - 1)
        tag = arr >> (geometry.offset_bits + geometry.index_bits)
        hits, lines = FastSimulator._epoch_hits(index, tag)
        assert hits == self.hits_by_model(geometry, addresses)
        assert lines == len(np.unique(index)) if addresses else lines == 0


class TestEpochBoundaries:
    def make(self, **kwargs):
        from repro.core.config import ArchitectureConfig
        from repro.trace.trace import Trace

        config = ArchitectureConfig(
            CacheGeometry(1024, 16), num_banks=4, policy="probing", **kwargs
        )
        cycles = np.array([0, 100, 5000], dtype=np.int64)
        addresses = np.zeros(3, dtype=np.int64)
        return FastSimulator(config), Trace(cycles, addresses)

    def test_periodic(self):
        sim, trace = self.make(update_period_cycles=1000)
        assert sim._epoch_boundaries(trace).tolist() == [1000, 2000, 3000, 4000, 5000]

    def test_explicit_events(self):
        sim, trace = self.make(update_events=(50, 4999, 9000))
        assert sim._epoch_boundaries(trace).tolist() == [50, 4999]

    def test_none_when_static(self):
        sim, trace = self.make()
        assert sim._epoch_boundaries(trace).size == 0

    def test_empty_trace(self):
        from repro.trace.trace import Trace

        sim, _ = self.make(update_period_cycles=10)
        empty = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=100)
        assert sim._epoch_boundaries(empty).size == 0
