"""Internal-consistency checks of the transcribed paper data.

The tables in :mod:`repro.experiments.paper_data` were typed in from the
paper; these tests catch transcription slips by checking the relations
the paper itself states.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_data
from repro.trace.mediabench import BENCHMARK_NAMES, PROFILES


class TestTable1:
    def test_all_benchmarks_present(self):
        assert set(paper_data.TABLE1) == set(BENCHMARK_NAMES)

    def test_overall_average_matches_published(self):
        """The Average cell of Table I is 41.71%."""
        per_bench = [sum(row) / 4 for row in paper_data.TABLE1.values()]
        overall = sum(per_bench) / len(per_bench)
        assert overall == pytest.approx(paper_data.TABLE1_AVERAGE, abs=0.02)

    def test_row_averages_match_examples_in_text(self):
        """The paper quotes adpcm.dec's average as 'more than 51%'."""
        adpcm = paper_data.TABLE1["adpcm.dec"]
        assert sum(adpcm) / 4 == pytest.approx(51.54, abs=0.01)

    def test_profiles_mirror_table1(self):
        for name, row in paper_data.TABLE1.items():
            profile = PROFILES[name]
            for published, target in zip(row, profile.bank_idleness):
                assert target == pytest.approx(published / 100.0, abs=1e-9)


class TestTable2:
    def test_all_benchmarks_and_sizes(self):
        assert set(paper_data.TABLE2) == set(BENCHMARK_NAMES)
        for rows in paper_data.TABLE2.values():
            assert set(rows) == {8192, 16384, 32768}

    def test_averages_match_published_row(self):
        for size, column in ((8192, 0), (16384, 0), (32768, 0)):
            esavs = [paper_data.TABLE2[b][size][column] for b in BENCHMARK_NAMES]
            published = paper_data.TABLE2_AVERAGE[size][column]
            assert sum(esavs) / len(esavs) == pytest.approx(published, abs=0.06)

    def test_lifetime_averages_match_published_row(self):
        for size in (8192, 16384, 32768):
            for column in (1, 2):
                values = [paper_data.TABLE2[b][size][column] for b in BENCHMARK_NAMES]
                published = paper_data.TABLE2_AVERAGE[size][column]
                assert sum(values) / len(values) == pytest.approx(published, abs=0.02)

    def test_lt_always_beats_lt0(self):
        """Re-indexing never hurts in the paper's data."""
        for rows in paper_data.TABLE2.values():
            for esav, lt0, lt in rows.values():
                assert lt > lt0
                assert lt0 >= paper_data.CELL_LIFETIME_YEARS - 1e-9

    def test_text_example_sha_2x(self):
        """'In some cases such a benefit is much larger, as for sha
        where we obtain a 2x lifetime extension' (32kB)."""
        _, _, lt = paper_data.TABLE2["sha"][32768]
        assert lt / paper_data.CELL_LIFETIME_YEARS > 2.0


class TestTable3:
    def test_ls16_columns_match_table2_16k(self):
        """Table III's 16B column repeats Table II's 16kB data."""
        for bench in BENCHMARK_NAMES:
            esav3, lt3 = paper_data.TABLE3[bench][16]
            esav2, _, lt2 = paper_data.TABLE2[bench][16384]
            assert esav3 == pytest.approx(esav2, abs=0.45)
            assert lt3 == pytest.approx(lt2, abs=0.6)

    def test_averages(self):
        for line_size in (16, 32):
            for column in (0, 1):
                values = [paper_data.TABLE3[b][line_size][column] for b in BENCHMARK_NAMES]
                published = paper_data.TABLE3_AVERAGE[line_size][column]
                assert sum(values) / len(values) == pytest.approx(published, abs=0.12)

    def test_esav_always_drops_at_32b(self):
        for bench in BENCHMARK_NAMES:
            assert paper_data.TABLE3[bench][32][0] < paper_data.TABLE3[bench][16][0]


class TestTable4:
    def test_covers_grid(self):
        assert set(paper_data.TABLE4) == {
            (size, banks)
            for size in (8192, 16384, 32768)
            for banks in (2, 4, 8)
        }

    def test_monotone_in_banks(self):
        for size in (8192, 16384, 32768):
            idles = [paper_data.TABLE4[(size, m)][0] for m in (2, 4, 8)]
            lifetimes = [paper_data.TABLE4[(size, m)][1] for m in (2, 4, 8)]
            assert idles == sorted(idles)
            assert lifetimes == sorted(lifetimes)

    def test_m4_16k_consistent_with_table2(self):
        """Table IV's (16kB, M=4) lifetime is Table II's 16kB LT average."""
        _, lt = paper_data.TABLE4[(16384, 4)]
        assert lt == pytest.approx(paper_data.TABLE2_AVERAGE[16384][2], abs=0.01)

    def test_text_claim_m8_about_2x(self):
        for size in (8192, 16384, 32768):
            _, lt = paper_data.TABLE4[(size, 8)]
            assert lt / paper_data.CELL_LIFETIME_YEARS > 1.8

    def test_lifetimes_obey_idleness_law(self):
        """Every Table IV entry sits near LT = 2.93/(1 − 0.75·I) — the
        relation our calibration was derived from."""
        for (size, banks), (idleness, lifetime) in paper_data.TABLE4.items():
            predicted = 2.93 / (1.0 - 0.75 * idleness / 100.0)
            assert lifetime == pytest.approx(predicted, rel=0.05), (size, banks)
