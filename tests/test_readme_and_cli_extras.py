"""Executable-documentation tests: README snippets and new CLI commands."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs_as_documented(self):
        """The README's quickstart, verbatim in spirit (shorter trace)."""
        from repro import (
            ArchitectureConfig,
            CacheGeometry,
            WorkloadGenerator,
            profile_for,
            simulate,
        )

        geometry = CacheGeometry(size_bytes=16 * 1024, line_size=16)
        trace = WorkloadGenerator(geometry, num_windows=200).generate(
            profile_for("sha")
        )
        config = ArchitectureConfig(
            geometry,
            num_banks=4,
            policy="probing",
            update_period_cycles=trace.horizon // 16,
        )
        result = simulate(config, trace)
        text = result.describe()
        assert "sha" in text
        assert result.lifetime_years > 2.93
        assert 0.0 < result.energy_savings < 1.0

    def test_package_docstring_doctest(self):
        """The example in repro/__init__.py must stay runnable."""
        import doctest

        import repro

        result = doctest.testmod(repro, verbose=False)
        assert result.attempted > 0
        assert result.failed == 0

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestReadmeStreaming:
    def test_streaming_snippet_runs_as_documented(self, tmp_path):
        """The README's 'Streaming large traces' example, smaller sizes."""
        from repro import (
            ArchitectureConfig,
            CacheGeometry,
            WorkloadGenerator,
            open_trace_stream,
            profile_for,
            save_trace_mmap,
            simulate,
            simulate_stream,
            stream_sweep,
        )

        geometry = CacheGeometry(size_bytes=16 * 1024, line_size=16)
        generator = WorkloadGenerator(geometry, num_windows=40)
        profile = profile_for("dijkstra")

        # file-backed stream (memory-mapped directory format)
        trace = generator.generate(profile)
        save_trace_mmap(trace, tmp_path / "huge.mmap")
        stream = open_trace_stream(tmp_path / "huge.mmap", chunk_cycles=4096)
        config = ArchitectureConfig(geometry, num_banks=4)
        assert (
            simulate_stream(config, stream).bank_stats
            == simulate(config, trace).bank_stats
        )

        # whole grid in one pass over the synthetic stream
        base = ArchitectureConfig(
            geometry,
            num_banks=4,
            policy="probing",
            update_period_cycles=generator.horizon // 16,
        )
        grid = stream_sweep(
            base,
            generator.stream(profile, chunk_cycles=4096),
            {"num_banks": [2, 4], "breakeven_override": [5, 20]},
        )
        assert len(grid) == 4
        assert grid.best("lifetime_years").result.lifetime_years > 0


class TestCLIExtras:
    def test_profile_command(self, capsys):
        assert main(["profile", "sha", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "bank shares" in out
        assert "footprint" in out

    def test_profile_unknown_benchmark_raises_helpfully(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="known:"):
            main(["profile", "nosuch"])

    def test_arch_includes_gate_overhead(self, capsys):
        assert main(["arch", "--banks", "4"]) == 0
        out = capsys.readouterr().out
        assert "gate-equivalents" in out
        assert "access-path depth" in out

    def test_version_attribute(self):
        import repro

        assert repro.__version__ == "1.0.0"
