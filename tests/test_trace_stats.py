"""Tests for the workload characterization module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import TraceError
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for
from repro.trace.stats import describe_profile, profile_trace
from repro.trace.trace import Trace

GEOMETRY = CacheGeometry(16 * 1024, 16)


def tiny_trace() -> Trace:
    # Two accesses to line 0 (reuse distance 2), one to line 1, one far
    # line (different bank), with distinct gaps.
    cycles = np.array([0, 10, 11, 31], dtype=np.int64)
    addresses = np.array([0x00, 0x10, 0x00, 0x2000], dtype=np.int64)
    return Trace(cycles, addresses, horizon=100)


class TestProfileTrace:
    def test_counts(self):
        profile = profile_trace(tiny_trace(), GEOMETRY)
        assert profile.accesses == 4
        assert profile.horizon == 100
        assert profile.distinct_lines == 3
        assert profile.footprint_bytes == 3 * 16

    def test_bank_shares_sum_to_one(self):
        profile = profile_trace(tiny_trace(), GEOMETRY)
        assert sum(profile.bank_shares) == pytest.approx(1.0)
        # 0x2000 = line 512 -> bank 2 of 4 (index 512 of 1024).
        assert profile.bank_shares[2] == pytest.approx(0.25)

    def test_gap_percentiles(self):
        profile = profile_trace(tiny_trace(), GEOMETRY)
        assert profile.gap_percentiles[50] == pytest.approx(10.0)
        assert profile.gap_percentiles[99] <= 20.0

    def test_reuse_distance(self):
        profile = profile_trace(tiny_trace(), GEOMETRY)
        # Line 0 touched at positions 0 and 2 -> reuse distance 2.
        assert profile.reuse_distance_median == pytest.approx(2.0)

    def test_empty_trace(self):
        empty = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=10)
        profile = profile_trace(empty, GEOMETRY)
        assert profile.accesses == 0
        assert profile.footprint_bytes == 0

    def test_rejects_bad_bank_split(self):
        with pytest.raises(TraceError):
            profile_trace(tiny_trace(), GEOMETRY, num_banks=3)

    def test_describe_renders(self):
        text = describe_profile(profile_trace(tiny_trace(), GEOMETRY))
        assert "footprint" in text
        assert "bank shares" in text


class TestOnGeneratedWorkloads:
    def test_bank_shares_reflect_idleness_profile(self):
        """adpcm.dec: banks 1 and 2 are nearly unused."""
        generator = WorkloadGenerator(GEOMETRY, num_windows=300)
        trace = generator.generate(profile_for("adpcm.dec"))
        profile = profile_trace(trace, GEOMETRY)
        assert profile.bank_shares[1] < 0.02
        assert profile.bank_shares[2] < 0.02
        assert profile.bank_shares[0] + profile.bank_shares[3] > 0.95

    def test_gaps_below_breakeven_within_bursts(self):
        generator = WorkloadGenerator(GEOMETRY, num_windows=300)
        trace = generator.generate(profile_for("CRC32"))
        profile = profile_trace(trace, GEOMETRY)
        assert profile.gap_percentiles[50] <= 8

    def test_footprint_exceeds_cache_due_to_tag_turnover(self):
        generator = WorkloadGenerator(GEOMETRY, num_windows=300)
        trace = generator.generate(profile_for("lame"))
        profile = profile_trace(trace, GEOMETRY)
        assert profile.footprint_bytes > GEOMETRY.size_bytes // 4
