"""Tests for the energy model and breakeven computation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.power.breakeven import breakeven_cycles
from repro.power.energy import EnergyModel, TechnologyParams

GEOMETRY = CacheGeometry(16 * 1024, 16)


class TestTechnologyParams:
    def test_defaults_valid(self):
        TechnologyParams()

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigurationError):
            TechnologyParams(e_access_fixed=-1.0)
        with pytest.raises(ConfigurationError):
            TechnologyParams(leak_per_line=-0.1)

    def test_rejects_bad_drowsy_ratio(self):
        with pytest.raises(ConfigurationError):
            TechnologyParams(drowsy_leak_ratio=1.5)

    def test_rejects_narrow_addresses(self):
        with pytest.raises(ConfigurationError):
            TechnologyParams(address_bits=4)


class TestStructure:
    def test_lines_per_bank(self):
        assert EnergyModel(GEOMETRY, 4).lines_per_bank == 256
        assert EnergyModel(GEOMETRY, 1).lines_per_bank == 1024

    def test_tag_bits_16k_16b(self):
        """32-bit addresses, 10 index bits, 4 offset bits -> 18 tag + valid."""
        assert EnergyModel(GEOMETRY, 4).tag_bits_per_line == 19

    def test_tag_bits_depend_on_capacity_not_line_size(self):
        """index + offset bits always cover log2(size) in a direct-mapped
        cache, so the per-line tag width is set by the capacity alone."""
        ls16 = EnergyModel(CacheGeometry(16 * 1024, 16), 4)
        ls32 = EnergyModel(CacheGeometry(16 * 1024, 32), 4)
        small = EnergyModel(CacheGeometry(8 * 1024, 16), 4)
        assert ls32.tag_bits_per_line == ls16.tag_bits_per_line
        assert small.tag_bits_per_line == ls16.tag_bits_per_line + 1

    def test_wiring_factor(self):
        assert EnergyModel(GEOMETRY, 1).wiring_factor == 1.0
        assert EnergyModel(GEOMETRY, 4).wiring_factor == pytest.approx(1.045)

    def test_rejects_bad_bank_counts(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(GEOMETRY, 0)
        with pytest.raises(ConfigurationError):
            EnergyModel(CacheGeometry(64, 16), 8)


class TestPerEventQuantities:
    def test_bank_access_cheaper_than_monolithic(self):
        """The point of banking: the accessed array is 4x smaller."""
        mono = EnergyModel(GEOMETRY, 1).access_energy()
        banked = EnergyModel(GEOMETRY, 4).access_energy()
        assert banked < mono

    def test_access_energy_grows_with_cache_size(self):
        small = EnergyModel(CacheGeometry(8 * 1024, 16), 1).access_energy()
        large = EnergyModel(CacheGeometry(32 * 1024, 16), 1).access_energy()
        assert large > small

    def test_leakage_scales_with_banking_only_through_wiring(self):
        """Total leakage of M banks ~ monolithic leakage * wiring factor."""
        mono = EnergyModel(GEOMETRY, 1)
        banked = EnergyModel(GEOMETRY, 4)
        total_banked = 4 * banked.bank_leakage_power()
        assert total_banked == pytest.approx(
            mono.bank_leakage_power() * banked.wiring_factor, rel=1e-9
        )

    def test_drowsy_saves_most_leakage(self):
        model = EnergyModel(GEOMETRY, 4)
        assert model.drowsy_leakage_power() < 0.1 * model.bank_leakage_power()

    def test_transition_energy_positive(self):
        assert EnergyModel(GEOMETRY, 4).transition_energy() > 0


class TestAggregation:
    def test_bank_energy_components(self):
        model = EnergyModel(GEOMETRY, 4)
        breakdown = model.bank_energy(
            accesses=100, active_cycles=1000, sleep_cycles=500, transitions=3
        )
        assert breakdown.dynamic == pytest.approx(100 * model.access_energy())
        assert breakdown.leakage_active == pytest.approx(1000 * model.bank_leakage_power())
        assert breakdown.leakage_drowsy == pytest.approx(500 * model.drowsy_leakage_power())
        assert breakdown.transitions == pytest.approx(3 * model.transition_energy())
        assert breakdown.total == pytest.approx(
            breakdown.dynamic + breakdown.leakage_active
            + breakdown.leakage_drowsy + breakdown.transitions
        )

    def test_rejects_negative_counters(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(GEOMETRY, 4).bank_energy(-1, 0, 0, 0)

    def test_unmanaged_energy(self):
        model = EnergyModel(GEOMETRY, 1)
        energy = model.unmanaged_energy(total_accesses=10, total_cycles=100)
        expected = 10 * model.access_energy() + 100 * model.bank_leakage_power()
        assert energy == pytest.approx(expected)

    def test_savings_helper(self):
        assert EnergyModel.savings(100.0, 60.0) == pytest.approx(0.4)
        with pytest.raises(ConfigurationError):
            EnergyModel.savings(0.0, 10.0)

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**3),
    )
    def test_property_energy_nonnegative(self, acc, active, sleep, trans):
        breakdown = EnergyModel(GEOMETRY, 4).bank_energy(acc, active, sleep, trans)
        assert breakdown.total >= 0.0


class TestSleepIsWorthIt:
    def test_sleeping_beyond_breakeven_saves_energy(self):
        """A bank asleep for breakeven+k cycles must cost less than one
        kept awake — the defining property of the breakeven time."""
        model = EnergyModel(GEOMETRY, 4)
        breakeven = breakeven_cycles(model)
        gap = breakeven + 50
        asleep = model.bank_energy(0, 0, gap, 1).total
        awake = model.bank_energy(0, gap, 0, 0).total
        assert asleep < awake

    def test_sleeping_below_breakeven_wastes_energy(self):
        model = EnergyModel(GEOMETRY, 4)
        breakeven = breakeven_cycles(model)
        gap = max(1, breakeven - 5)
        asleep = model.bank_energy(0, 0, gap, 1).total
        awake = model.bank_energy(0, gap, 0, 0).total
        assert asleep >= awake


class TestBreakeven:
    def test_paper_magnitude(self):
        """'In the order of a few tens of cycles'; 5-6 bit counters."""
        for size_kb in (8, 16, 32):
            for banks in (2, 4, 8, 16):
                model = EnergyModel(CacheGeometry(size_kb * 1024, 16), banks)
                breakeven = breakeven_cycles(model)
                assert 4 <= breakeven <= 63

    def test_rejects_useless_drowsy_state(self):
        tech = TechnologyParams(drowsy_leak_ratio=1.0)
        model = EnergyModel(GEOMETRY, 4, tech)
        with pytest.raises(ConfigurationError):
            breakeven_cycles(model)
