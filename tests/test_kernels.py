"""Compiled kernel backends: differential fuzz, engine wiring, sharding.

The load-bearing property is **bit-identity across backends**: every
kernel in :mod:`repro.kernels` must produce exactly the numpy
backend's integer counters whichever compiled backend (numba, on-demand
C extension) serves it — including error behavior, carry-state
streaming, and the sharded parallel pass. The hypothesis classes below
pin that across banks, ways > 1, breakeven vectors (including
infinite), one-cycle chunk alignment and shard merge order.
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.engine import engine_names, get_engine, resolve_engine
from repro.core.simulator import simulate
from repro.core.streamsim import (
    StreamShardPartial,
    merge_shard_partials,
    simulate_stream,
    stream_selected,
)
from repro.errors import ConfigurationError, ReproWarning, SimulationError
from repro.kernels import dispatch
from repro.power.idleness import (
    StreamingGapAccumulator,
    batch_stats_from_sorted_accesses,
)
from repro.trace.stream import InMemoryTraceStream
from repro.trace.trace import Trace

COMPILED_BACKENDS = [
    name for name in dispatch.available_backends() if name != "numpy"
]

needs_compiled = pytest.mark.skipif(
    not COMPILED_BACKENDS,
    reason="no compiled kernel backend available (numba missing, no C compiler)",
)


def random_trace(rng: np.random.Generator, accesses: int) -> Trace:
    gaps = rng.choice([1, 1, 1, 2, 3, 7, 25, 90], size=accesses).astype(np.int64)
    cycles = np.cumsum(gaps) - 1
    addresses = (rng.integers(0, 1 << 14, size=accesses) * 16).astype(np.int64)
    horizon = int(cycles[-1]) + 1 + int(rng.integers(0, 50))
    return Trace(cycles, addresses, horizon=horizon, name="fuzz")


# ---------------------------------------------------------------------------
# Hypothesis strategies: bank-sorted access streams and breakeven vectors.
# ---------------------------------------------------------------------------

@st.composite
def bank_streams(draw):
    """(cycles, splits, num_banks, end_cycle): a valid bank-sorted stream."""
    num_banks = draw(st.integers(min_value=1, max_value=6))
    end_cycle = draw(st.integers(min_value=1, max_value=400))
    per_bank = [
        sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=end_cycle - 1),
                    unique=True,
                    max_size=40,
                )
            )
        )
        for _ in range(num_banks)
    ]
    cycles = np.array(
        [c for bank in per_bank for c in bank], dtype=np.int64
    )
    splits = np.cumsum([0] + [len(bank) for bank in per_bank]).astype(np.int64)
    return cycles, splits, num_banks, end_cycle


breakeven_vectors = st.lists(
    st.one_of(st.none(), st.integers(min_value=1, max_value=120)),
    min_size=1,
    max_size=4,
)


def gap_multiset(gap_values, gap_banks):
    """Backend-independent view of a gap batch (ordering is backend-defined)."""
    return sorted(zip(gap_banks.tolist(), gap_values.tolist()))


# ---------------------------------------------------------------------------
# Differential fuzz: every compiled backend against numpy, bit-identical.
# ---------------------------------------------------------------------------

@needs_compiled
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
class TestKernelDifferential:
    @settings(max_examples=60, deadline=None)
    @given(stream=bank_streams())
    def test_gap_extract(self, backend, stream):
        cycles, splits, num_banks, end = stream
        ref = dispatch.gap_extract(cycles, splits, 0, end, backend="numpy")
        got = dispatch.gap_extract(cycles, splits, 0, end, backend=backend)
        assert gap_multiset(got[0], got[1]) == gap_multiset(ref[0], ref[1])
        for mine, theirs in zip(got[2:], ref[2:]):
            assert np.array_equal(mine, theirs)
            assert mine.dtype == np.int64

    @settings(max_examples=60, deadline=None)
    @given(stream=bank_streams(), breakevens=breakeven_vectors)
    def test_gap_threshold_batch(self, backend, stream, breakevens):
        cycles, splits, num_banks, end = stream
        values, banks, *_ = dispatch.gap_extract(
            cycles, splits, 0, end, backend="numpy"
        )
        be = np.array(
            [-1 if b is None else b for b in breakevens], dtype=np.int64
        )
        outs = {}
        for name in ("numpy", backend):
            useful = np.zeros((len(breakevens), num_banks), dtype=np.int64)
            sleep = np.zeros((len(breakevens), num_banks), dtype=np.int64)
            dispatch.gap_threshold_batch(
                values, banks, num_banks, be, useful, sleep, backend=name
            )
            outs[name] = (useful, sleep)
        assert np.array_equal(outs[backend][0], outs["numpy"][0])
        assert np.array_equal(outs[backend][1], outs["numpy"][1])

    @settings(max_examples=60, deadline=None)
    @given(
        stream=bank_streams(),
        breakevens=breakeven_vectors,
        chunk=st.integers(min_value=1, max_value=64),
    )
    def test_streaming_carry_state(self, backend, stream, breakevens, chunk):
        """Chunked accumulators agree chunk by chunk AND with the one-shot.

        ``chunk=1`` degenerates to one access per update — the
        alignment case where every gap closes against carried state.
        """
        cycles, splits, num_banks, end = stream
        accs = {
            name: StreamingGapAccumulator(num_banks, breakevens, backend=name)
            for name in ("numpy", backend)
        }
        # Re-chunk the bank-sorted stream by cycle windows of `chunk`.
        for lo in range(0, end, chunk):
            hi = min(lo + chunk, end)
            parts, counts = [], []
            for b in range(num_banks):
                mine = cycles[splits[b]:splits[b + 1]]
                window = mine[(mine >= lo) & (mine < hi)]
                parts.append(window)
                counts.append(len(window))
            chunk_cycles = np.concatenate(parts) if parts else np.empty(0, np.int64)
            chunk_splits = np.cumsum([0] + counts).astype(np.int64)
            for acc in accs.values():
                acc.update(chunk_cycles, chunk_splits)
        finals = {name: acc.finalize(end) for name, acc in accs.items()}
        assert finals[backend] == finals["numpy"]
        one_shot = batch_stats_from_sorted_accesses(
            cycles, splits, breakevens, 0, end, backend=backend
        )
        assert finals[backend] == one_shot

    @settings(max_examples=60, deadline=None)
    @given(
        tags=st.lists(st.integers(min_value=0, max_value=7), max_size=60),
        bounds=st.lists(st.integers(min_value=0, max_value=60), max_size=6),
        ways=st.integers(min_value=1, max_value=8),
    )
    def test_lru_walk(self, backend, tags, bounds, ways):
        tag_arr = np.array(tags, dtype=np.int64)
        starts = np.array(
            sorted({0, len(tags), *[b for b in bounds if b <= len(tags)]}),
            dtype=np.int64,
        )
        ref = dispatch.lru_walk(tag_arr, starts, ways, backend="numpy")
        got = dispatch.lru_walk(tag_arr, starts, ways, backend=backend)
        assert got[0] == ref[0]
        assert np.array_equal(got[1], ref[1])

    @settings(max_examples=60, deadline=None)
    @given(
        segments=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),
                    st.integers(min_value=0, max_value=9),
                ),
                max_size=30,
            ),
            min_size=1,
            max_size=4,
        ),
        ways=st.integers(min_value=1, max_value=4),
    )
    def test_lru_segment_carried_stacks(self, backend, segments, ways):
        """Carried (num_sets, ways) stacks advance identically per segment."""
        num_sets = 4
        stacks = {
            name: np.full((num_sets, ways), -1, dtype=np.int64)
            for name in ("numpy", backend)
        }
        for segment in segments:
            pairs = sorted((s, i) for i, (s, _) in enumerate(segment))
            idx = np.array([s for s, _ in pairs], dtype=np.int64)
            tags = np.array(
                [segment[i][1] for _, i in pairs], dtype=np.int64
            )
            hits = {
                name: dispatch.lru_segment(idx, tags, stacks[name], backend=name)
                for name in ("numpy", backend)
            }
            assert hits[backend] == hits["numpy"]
            assert np.array_equal(stacks[backend], stacks["numpy"])


@needs_compiled
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
class TestErrorParity:
    """Invalid inputs raise SimulationError with the numpy message."""

    def _message(self, fn, *args, **kwargs):
        with pytest.raises(SimulationError) as excinfo:
            fn(*args, **kwargs)
        return str(excinfo.value)

    def test_non_monotonic(self, backend):
        cycles = np.array([5, 5], dtype=np.int64)
        splits = np.array([0, 2], dtype=np.int64)
        messages = {
            name: self._message(
                dispatch.gap_extract, cycles, splits, 0, 10, backend=name
            )
            for name in ("numpy", backend)
        }
        assert messages[backend] == messages["numpy"]
        assert "strictly increasing" in messages[backend]

    def test_outside_window(self, backend):
        cycles = np.array([12], dtype=np.int64)
        splits = np.array([0, 1], dtype=np.int64)
        messages = {
            name: self._message(
                dispatch.gap_extract, cycles, splits, 0, 10, backend=name
            )
            for name in ("numpy", backend)
        }
        assert messages[backend] == messages["numpy"]
        assert "observation window" in messages[backend]

    def test_not_later_than_carry(self, backend):
        messages = {}
        for name in ("numpy", backend):
            acc = StreamingGapAccumulator(1, [10], backend=name)
            acc.update(np.array([5], dtype=np.int64), np.array([0, 1], dtype=np.int64))
            with pytest.raises(SimulationError) as excinfo:
                acc.update(
                    np.array([5], dtype=np.int64), np.array([0, 1], dtype=np.int64)
                )
            messages[name] = str(excinfo.value)
        assert messages[backend] == messages["numpy"]
        assert "later than" in messages[backend]


# ---------------------------------------------------------------------------
# Backend dispatch behavior.
# ---------------------------------------------------------------------------

class TestDispatch:
    def test_numpy_always_available(self):
        assert "numpy" in dispatch.available_backends()
        assert dispatch.backend_status()["numpy"] is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="kernel backend"):
            dispatch.gap_extract(
                np.empty(0, np.int64),
                np.array([0, 0], dtype=np.int64),
                0,
                1,
                backend="warp",
            )

    def test_use_backend_scopes_the_override(self):
        before = dispatch.active_backend()
        with dispatch.use_backend("numpy"):
            assert dispatch.active_backend() == "numpy"
        assert dispatch.active_backend() == before

    def test_env_override_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        dispatch.set_backend(None)
        try:
            assert dispatch.active_backend() == "numpy"
        finally:
            monkeypatch.delenv("REPRO_KERNELS")
            dispatch.set_backend(None)

    def test_bogus_env_override_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "warp")
        dispatch.set_backend(None)
        try:
            with pytest.raises(SimulationError, match="warp"):
                dispatch.active_backend()
        finally:
            monkeypatch.delenv("REPRO_KERNELS")
            dispatch.set_backend(None)


# ---------------------------------------------------------------------------
# The compiled engine in the registry.
# ---------------------------------------------------------------------------

class TestCompiledEngine:
    def test_registered_and_banked(self):
        assert "compiled" in engine_names()
        engine = get_engine("compiled")
        assert getattr(engine, "family", "banked") == "banked"

    def test_auto_priority_tracks_backend_availability(self):
        from repro.kernels.engine import BACKEND

        engine = get_engine("compiled")
        fast = get_engine("fast")
        if BACKEND:
            assert engine.priority > fast.priority
        else:
            assert engine.priority < fast.priority

    def test_fast_engine_stays_pinned_to_numpy(self):
        # "fast" is the stable differential anchor: whatever backends
        # exist, it must keep meaning the pure-numpy kernels.
        assert get_engine("fast").backend == "numpy"

    @needs_compiled
    def test_engine_differential_vs_fast(self):
        rng = np.random.default_rng(2011)
        for ways in (1, 2, 4):
            trace = random_trace(rng, 400)
            config = ArchitectureConfig(
                CacheGeometry(8 * 1024, 16, ways=ways),
                num_banks=4,
                policy="probing",
                update_period_cycles=256,
            )
            fast = simulate(config, trace, engine="fast")
            compiled = simulate(config, trace, engine="compiled")
            assert fast.bank_stats == compiled.bank_stats
            assert fast.cache_stats.hits == compiled.cache_stats.hits
            assert fast.cache_stats.misses == compiled.cache_stats.misses
            assert fast.updates_applied == compiled.updates_applied
            assert fast.energy_pj == compiled.energy_pj
            assert fast.lifetime_years == compiled.lifetime_years

    @needs_compiled
    def test_engine_differential_streaming(self):
        rng = np.random.default_rng(7)
        trace = random_trace(rng, 300)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_period_cycles=128,
        )
        fast = simulate_stream(
            config, InMemoryTraceStream(trace, 97), engine="fast"
        )
        compiled = simulate_stream(
            config, InMemoryTraceStream(trace, 97), engine="compiled"
        )
        assert fast.bank_stats == compiled.bank_stats
        assert fast.cache_stats.hits == compiled.cache_stats.hits


# ---------------------------------------------------------------------------
# Sharded parallel streaming.
# ---------------------------------------------------------------------------

def _stream_case(seed=3, accesses=500):
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, accesses)
    base = ArchitectureConfig(
        CacheGeometry(8 * 1024, 16, ways=2),
        num_banks=4,
        policy="probing",
        update_period_cycles=256,
    )
    names = ("breakeven_override", "num_banks")
    combos = [(10, 4), (40, 4), (None, 8)]
    return trace, base, names, combos


class TestParallelStreaming:
    def assert_identical(self, serial, parallel):
        for s, p in zip(serial, parallel):
            assert s.bank_stats == p.bank_stats
            assert s.cache_stats.hits == p.cache_stats.hits
            assert s.cache_stats.misses == p.cache_stats.misses
            assert s.cache_stats.flushes == p.cache_stats.flushes
            assert s.updates_applied == p.updates_applied
            assert s.flush_invalidations == p.flush_invalidations
            assert s.energy_pj == p.energy_pj
            assert s.lifetime_years == p.lifetime_years

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_is_bit_identical_to_serial(self, workers):
        trace, base, names, combos = _stream_case()

        def factory(trace=trace):
            return InMemoryTraceStream(trace, 200)

        serial = stream_selected(base, factory, names, combos)
        parallel = stream_selected(
            base, factory, names, combos, parallel=workers
        )
        self.assert_identical(serial, parallel)

    def test_picklable_stream_instance_shards(self):
        trace, base, names, combos = _stream_case()
        stream = InMemoryTraceStream(trace, 200)
        assert pickle.dumps(stream)
        serial = stream_selected(base, lambda: InMemoryTraceStream(trace, 200),
                                 names, combos)
        parallel = stream_selected(base, stream, names, combos, parallel=2)
        self.assert_identical(serial, parallel)

    def test_unshardable_stream_warns_and_runs_serial(self):
        trace, base, names, combos = _stream_case()

        class Unpicklable(InMemoryTraceStream):
            def __init__(self, trace, chunk_cycles):
                super().__init__(trace, chunk_cycles)
                self._blocker = lambda: None

        serial = stream_selected(
            base, lambda: InMemoryTraceStream(trace, 200), names, combos
        )
        with pytest.warns(ReproWarning, match="cannot be sharded"):
            fell_back = stream_selected(
                base, Unpicklable(trace, 200), names, combos, parallel=2
            )
        self.assert_identical(serial, fell_back)

    def test_engine_without_shard_support_warns(self, monkeypatch):
        trace, base, names, combos = _stream_case()
        fast = get_engine("fast")
        monkeypatch.setattr(
            type(fast), "supports_stream_shards", False, raising=False
        )
        with pytest.warns(ReproWarning, match="cannot be sharded"):
            stream_selected(
                base,
                lambda: InMemoryTraceStream(trace, 200),
                names,
                combos[:1],
                engine="fast",
                parallel=2,
            )

    def test_invalid_worker_count_rejected(self):
        trace, base, names, combos = _stream_case()
        with pytest.raises(ConfigurationError, match="positive worker count"):
            stream_selected(
                base,
                lambda: InMemoryTraceStream(trace, 200),
                names,
                combos,
                parallel=0,
            )

    def test_parallel_one_is_the_serial_pass(self):
        trace, base, names, combos = _stream_case()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproWarning)
            results = stream_selected(
                base,
                lambda: InMemoryTraceStream(trace, 200),
                names,
                combos,
                parallel=1,
            )
        serial = stream_selected(
            base, lambda: InMemoryTraceStream(trace, 200), names, combos
        )
        self.assert_identical(serial, results)

    def test_merge_is_order_invariant(self):
        """Shard merge is elementwise counter addition: any order works."""
        trace, base, names, combos = _stream_case()
        engine = resolve_engine("auto", base)
        from repro.core.plan import StreamingPlan
        from dataclasses import replace

        partials_by_order = []
        for order in ([0, 1, 2], [2, 0, 1]):
            shards = []
            for worker in order:
                stream = InMemoryTraceStream(trace, 200)
                plan = StreamingPlan()
                config = replace(base, **dict(zip(names, combos[0])))
                cursor = engine.open_stream_cursor(
                    [config], plan, shard=(worker, 3)
                )
                for chunk in stream.chunks():
                    plan.begin_chunk(chunk)
                    cursor.process(plan)
                shards.append(cursor.finalize_partial(stream.horizon))
            merged = merge_shard_partials(
                [replace(base, **dict(zip(names, combos[0])))],
                shards,
                stream.horizon,
                stream.name,
                None,
            )
            partials_by_order.append(merged[0])
        first, second = partials_by_order
        assert first.bank_stats == second.bank_stats
        assert first.cache_stats.hits == second.cache_stats.hits

    def test_sharded_cursor_refuses_full_finalize(self):
        trace, base, names, combos = _stream_case()
        engine = resolve_engine("auto", base)
        from repro.core.plan import StreamingPlan

        stream = InMemoryTraceStream(trace, 200)
        plan = StreamingPlan()
        cursor = engine.open_stream_cursor([base], plan, shard=(0, 2))
        with pytest.raises(SimulationError, match="finalize_partial"):
            cursor.finalize(stream.horizon, stream.name, None)

    def test_disagreeing_shards_rejected(self):
        trace, base, names, combos = _stream_case()
        zero = StreamShardPartial(
            accesses=1,
            hits=0,
            flush_invalidations=0,
            updates_applied=0,
            stats_batch=[[]],
        )
        other = StreamShardPartial(
            accesses=2,
            hits=0,
            flush_invalidations=0,
            updates_applied=0,
            stats_batch=[[]],
        )
        with pytest.raises(SimulationError, match="disagree"):
            merge_shard_partials([base], [zero, other], 100, "t", None)


class TestShardedAccumulator:
    def test_non_owned_bank_access_rejected(self):
        owned = np.array([True, False], dtype=bool)
        acc = StreamingGapAccumulator(2, [10], owned_banks=owned)
        with pytest.raises(SimulationError, match="does not own"):
            acc.update(
                np.array([5], dtype=np.int64),
                np.array([0, 0, 1], dtype=np.int64),
            )

    def test_non_owned_banks_finalize_to_zero(self):
        owned = np.array([True, False], dtype=bool)
        acc = StreamingGapAccumulator(2, [10], owned_banks=owned)
        acc.update(
            np.array([5], dtype=np.int64), np.array([0, 1, 1], dtype=np.int64)
        )
        ((mine, theirs),) = acc.finalize(100)
        assert mine.total_cycles == 100
        assert theirs.total_cycles == 0
        assert theirs.idle_intervals == 0
        assert theirs.idle_cycles == 0

    def test_disjoint_shards_merge_to_the_unsharded_stats(self):
        rng = np.random.default_rng(11)
        num_banks, end = 4, 300
        per_bank = [
            np.unique(rng.integers(0, end, size=rng.integers(0, 30)))
            for _ in range(num_banks)
        ]
        cycles = np.concatenate(per_bank).astype(np.int64)
        splits = np.cumsum([0] + [len(b) for b in per_bank]).astype(np.int64)
        whole = StreamingGapAccumulator(num_banks, [10, None])
        whole.update(cycles, splits)
        expected = whole.finalize(end)

        shards = []
        for worker in range(2):
            owned = (np.arange(num_banks) % 2) == worker
            acc = StreamingGapAccumulator(num_banks, [10, None], owned_banks=owned)
            parts = [
                per_bank[b] if owned[b] else np.empty(0, np.int64)
                for b in range(num_banks)
            ]
            acc.update(
                np.concatenate(parts).astype(np.int64),
                np.cumsum([0] + [len(p) for p in parts]).astype(np.int64),
            )
            shards.append(acc.finalize(end))
        merged = [
            [
                shards[0][row][bank].merge(shards[1][row][bank])
                for bank in range(num_banks)
            ]
            for row in range(2)
        ]
        assert merged == expected
