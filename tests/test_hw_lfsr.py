"""Tests for the Galois LFSR (the Scrambling RNG)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.lfsr import MAXIMAL_TAPS, GaloisLFSR


class TestConstruction:
    def test_rejects_unsupported_width(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(1)
        with pytest.raises(ConfigurationError):
            GaloisLFSR(25)

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8, seed=0)
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8, seed=256)  # 0 after masking to 8 bits

    def test_seed_masked_to_width(self):
        lfsr = GaloisLFSR(4, seed=0x13)
        assert lfsr.state == 0x3


class TestMaximalLength:
    @pytest.mark.parametrize("width", list(range(2, 13)))
    def test_full_period(self, width):
        """Every supported small width visits all 2**w - 1 non-zero states."""
        lfsr = GaloisLFSR(width, seed=1)
        states = set()
        for _ in range(lfsr.period):
            states.add(lfsr.step())
        assert len(states) == lfsr.period
        assert 0 not in states

    @pytest.mark.parametrize("width", [16, 20, 24])
    def test_no_short_cycle(self, width):
        """Large widths: the state must not recur within a long prefix."""
        lfsr = GaloisLFSR(width, seed=0xACE1)
        seen = set()
        for _ in range(50_000):
            state = lfsr.step()
            assert state not in seen
            seen.add(state)

    def test_period_property(self):
        assert GaloisLFSR(10).period == 1023


class TestStepAndPeek:
    def test_peek_does_not_advance(self):
        lfsr = GaloisLFSR(8, seed=5)
        before = lfsr.peek()
        assert lfsr.peek() == before
        after = lfsr.step()
        assert after == lfsr.peek()

    def test_sequence_length(self):
        assert len(GaloisLFSR(8).sequence(17)) == 17

    def test_sequence_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8).sequence(-1)

    def test_deterministic(self):
        a = GaloisLFSR(16, seed=0xBEEF).sequence(100)
        b = GaloisLFSR(16, seed=0xBEEF).sequence(100)
        assert a == b


class TestLowBits:
    def test_range(self):
        lfsr = GaloisLFSR(16)
        for _ in range(100):
            lfsr.step()
            assert 0 <= lfsr.low_bits(3) < 8

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8).low_bits(9)
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8).low_bits(-1)

    @given(st.integers(min_value=1, max_value=2**16 - 1))
    def test_property_low_bits_match_state(self, seed):
        lfsr = GaloisLFSR(16, seed=seed)
        lfsr.step()
        assert lfsr.low_bits(4) == lfsr.state & 0xF


class TestUniformity:
    def test_low_bits_balanced_over_full_period(self):
        """Over the whole period each p-bit value appears ~N/M times.

        This is the property Section IV-B2 relies on: the scrambling
        error vanishes as the LFSR covers its period.
        """
        lfsr = GaloisLFSR(12, seed=1)
        counts = [0, 0, 0, 0]
        for _ in range(lfsr.period):
            lfsr.step()
            counts[lfsr.low_bits(2)] += 1
        ideal = lfsr.period / 4
        for count in counts:
            assert abs(count - ideal) <= 1

    def test_all_taps_supported_widths_construct(self):
        for width in MAXIMAL_TAPS:
            GaloisLFSR(width)
