"""Cross-validation of the reference and fast simulation engines.

The fast engine's correctness argument rests on exact agreement with
the event-by-event reference engine; these tests hold the two together
over policies, bank counts, update periods and random traces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.simulator import ReferenceSimulator, simulate
from repro.trace.trace import Trace
from tests.conftest import make_random_trace


def assert_results_equal(a, b):
    """Exact-equality assertions for everything both engines measure."""
    assert a.cache_stats.hits == b.cache_stats.hits
    assert a.cache_stats.misses == b.cache_stats.misses
    assert a.cache_stats.flushes == b.cache_stats.flushes
    assert a.updates_applied == b.updates_applied
    assert a.flush_invalidations == b.flush_invalidations
    assert a.bank_stats == b.bank_stats
    assert a.energy_pj == pytest.approx(b.energy_pj, rel=1e-12)
    assert a.baseline_energy_pj == pytest.approx(b.baseline_energy_pj, rel=1e-12)
    assert a.lifetime_years == pytest.approx(b.lifetime_years, rel=1e-12)


def run_both(config, trace, lut):
    return (
        ReferenceSimulator(config, lut).run(trace),
        FastSimulator(config, lut).run(trace),
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("policy", ["static", "probing", "scrambling"])
    @pytest.mark.parametrize("banks", [2, 4, 8])
    def test_policies_and_banks(self, policy, banks, lut):
        trace = make_random_trace(seed=banks * 7 + len(policy))
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=banks,
            policy=policy,
            update_period_cycles=7000 if policy != "static" else None,
        )
        assert_results_equal(*run_both(config, trace, lut))

    def test_unmanaged(self, lut):
        trace = make_random_trace(seed=5)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16), num_banks=4, power_managed=False
        )
        assert_results_equal(*run_both(config, trace, lut))

    def test_monolithic(self, lut):
        trace = make_random_trace(seed=6)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16), num_banks=1, power_managed=False
        )
        reference, fast = run_both(config, trace, lut)
        assert_results_equal(reference, fast)
        assert reference.lifetime_years == pytest.approx(2.93, rel=1e-6)

    def test_empty_trace(self, lut):
        trace = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=1000)
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4)
        assert_results_equal(*run_both(config, trace, lut))

    def test_update_period_shorter_than_gaps(self, lut):
        """Several updates can become due between two accesses; the
        reference drains them one at a time and the fast engine must
        count identically."""
        cycles = np.array([0, 10_000, 10_001, 50_000], dtype=np.int64)
        addresses = np.array([0x100, 0x200, 0x100, 0x300], dtype=np.int64)
        trace = Trace(cycles, addresses)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_period_cycles=1000,
        )
        reference, fast = run_both(config, trace, lut)
        assert_results_equal(reference, fast)
        assert reference.updates_applied == 50

    def test_update_on_exact_boundary_cycle(self, lut):
        """An access exactly on the boundary belongs to the new epoch."""
        cycles = np.array([0, 1000, 2000], dtype=np.int64)
        addresses = np.array([0x100, 0x100, 0x100], dtype=np.int64)
        trace = Trace(cycles, addresses)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_period_cycles=1000,
        )
        reference, fast = run_both(config, trace, lut)
        assert_results_equal(reference, fast)
        # Every epoch starts flushed, so every access misses.
        assert reference.cache_stats.misses == 3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_property_random_traces(self, lut, seed):
        trace = make_random_trace(seed=seed, length=600)
        config = ArchitectureConfig(
            CacheGeometry(4 * 1024, 16),
            num_banks=4,
            policy="scrambling",
            update_period_cycles=3000,
        )
        assert_results_equal(*run_both(config, trace, lut))


class TestSimulateFrontend:
    def test_engine_selection(self, lut, random_trace):
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4)
        fast = simulate(config, random_trace, lut, engine="fast")
        reference = simulate(config, random_trace, lut, engine="reference")
        assert_results_equal(reference, fast)

    def test_auto_is_default_and_agrees(self, lut, random_trace):
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4)
        auto = simulate(config, random_trace, lut)
        reference = simulate(config, random_trace, lut, engine="reference")
        assert_results_equal(reference, auto)

    def test_engine_names_registry(self):
        from repro.core.simulator import ENGINE_NAMES

        assert ENGINE_NAMES == (
            "auto", "compiled", "estimate", "fast", "finegrain", "reference"
        )

    def test_unknown_engine(self, lut, random_trace):
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4)
        with pytest.raises(ValueError):
            simulate(config, random_trace, lut, engine="warp")
