"""Tests for schedules, walkers, benchmark profiles and the generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.power.idleness import stats_from_access_cycles
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import BENCHMARK_NAMES, PROFILES, profile_for
from repro.trace.schedule import NUM_REGIONS, ActivitySchedule, ScheduleParams
from repro.trace.synthetic import RegionWalker, make_walkers


class TestScheduleParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScheduleParams(group_idleness=(0.5, 0.5, 0.5))  # needs 4
        with pytest.raises(ConfigurationError):
            ScheduleParams(group_idleness=(0.5, 0.5, 0.5, 1.5))
        with pytest.raises(ConfigurationError):
            ScheduleParams(group_idleness=(0.5,) * 4, half_activity=0.0)


class TestActivitySchedule:
    def make(self, idleness=(0.3, 0.5, 0.7, 0.1), windows=4000, seed=1):
        params = ScheduleParams(group_idleness=idleness)
        return ActivitySchedule(params, windows, np.random.default_rng(seed))

    def test_shape(self):
        schedule = self.make()
        assert schedule.busy.shape == (4000, NUM_REGIONS)

    def test_group_idleness_matches_targets(self):
        schedule = self.make()
        idle = schedule.bank_idle_fraction(4)
        for measured, target in zip(idle, (0.3, 0.5, 0.7, 0.1)):
            assert measured == pytest.approx(target, abs=0.03)

    def test_active_group_has_some_busy_region(self):
        """When a group is active at least one of its regions is busy
        (the construction forces one half and one quarter)."""
        schedule = self.make()
        grouped = schedule.busy.reshape(-1, 4, 4)
        # Count windows where a group's bank-level idle does not match
        # all-region idleness: impossible by construction.
        bank_busy = grouped.any(axis=2)
        assert bank_busy.mean() == pytest.approx(
            1.0 - float(np.mean(schedule.bank_idle_fraction(4))), abs=1e-9
        )

    def test_finer_banks_find_more_idleness(self):
        """The hierarchy makes idleness grow with M (Table IV's trend)."""
        schedule = self.make()
        idle2 = float(np.mean(schedule.bank_idle_fraction(2)))
        idle4 = float(np.mean(schedule.bank_idle_fraction(4)))
        idle8 = float(np.mean(schedule.bank_idle_fraction(8)))
        idle16 = float(np.mean(schedule.bank_idle_fraction(16)))
        assert idle2 < idle4 < idle8 < idle16

    def test_bank_split_must_divide_regions(self):
        with pytest.raises(ConfigurationError):
            self.make().bank_idle_fraction(3)

    def test_deterministic_for_seed(self):
        a = self.make(seed=9)
        b = self.make(seed=9)
        assert np.array_equal(a.busy, b.busy)

    def test_busy_pairs_matches_matrix(self):
        schedule = self.make(windows=50)
        pairs = schedule.busy_pairs()
        assert len(pairs) == int(schedule.busy.sum())


class TestRegionWalker:
    def test_walk_stays_in_working_set(self):
        walker = RegionWalker(region_lines=64, working_lines=16, stride=3)
        offsets = walker.walk(100)
        assert offsets.min() >= 0
        assert offsets.max() < 16

    def test_walk_covers_working_set_with_coprime_stride(self):
        walker = RegionWalker(region_lines=64, working_lines=16, stride=3)
        assert set(walker.walk(16).tolist()) == set(range(16))

    def test_position_persists_across_calls(self):
        walker = RegionWalker(region_lines=64, working_lines=8, stride=1)
        first = walker.walk(5)
        second = walker.walk(5)
        assert second[0] == (first[-1] + 1) % 8

    def test_generation_advances(self):
        walker = RegionWalker(region_lines=64, working_lines=8)
        walker.advance_generation()
        walker.advance_generation()
        assert walker.tag_generation == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegionWalker(region_lines=0, working_lines=1)
        with pytest.raises(ConfigurationError):
            RegionWalker(region_lines=8, working_lines=9)
        with pytest.raises(ConfigurationError):
            RegionWalker(region_lines=8, working_lines=4).walk(-1)

    def test_make_walkers(self):
        walkers = make_walkers(16, 64, 0.75, np.random.default_rng(0))
        assert len(walkers) == 16
        assert all(w.working_lines == 48 for w in walkers)

    def test_make_walkers_validation(self):
        with pytest.raises(ConfigurationError):
            make_walkers(16, 64, 0.0, np.random.default_rng(0))


class TestProfiles:
    def test_all_18_paper_benchmarks_present(self):
        assert len(BENCHMARK_NAMES) == 18
        assert "adpcm.dec" in PROFILES
        assert "tiff2bw" in PROFILES

    def test_table1_average(self):
        """The profile targets average to Table I's 41.71%."""
        average = np.mean([p.average_idleness for p in PROFILES.values()])
        assert average == pytest.approx(0.4171, abs=0.0005)

    def test_profile_lookup_error_is_helpful(self):
        with pytest.raises(ConfigurationError, match="adpcm.dec"):
            profile_for("nosuch")

    def test_profile_validation(self):
        from repro.trace.mediabench import BenchmarkProfile

        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", (0.5, 0.5, 0.5))  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", (0.5, 0.5, 0.5, 1.4))


class TestWorkloadGenerator:
    def make(self, size_kb=16, windows=300):
        geometry = CacheGeometry(size_kb * 1024, 16)
        return geometry, WorkloadGenerator(geometry, num_windows=windows)

    def test_trace_is_valid_and_named(self):
        _, generator = self.make()
        trace = generator.generate(profile_for("sha"))
        assert trace.name == "sha"
        assert len(trace) > 0
        assert trace.horizon == generator.num_windows * generator.window_cycles

    def test_deterministic_for_seed(self):
        geometry = CacheGeometry(16 * 1024, 16)
        a = WorkloadGenerator(geometry, num_windows=100, master_seed=5).generate(
            profile_for("lame")
        )
        b = WorkloadGenerator(geometry, num_windows=100, master_seed=5).generate(
            profile_for("lame")
        )
        assert np.array_equal(a.cycles, b.cycles)
        assert np.array_equal(a.addresses, b.addresses)

    def test_different_seeds_differ(self):
        geometry = CacheGeometry(16 * 1024, 16)
        a = WorkloadGenerator(geometry, num_windows=100, master_seed=5).generate(
            profile_for("lame")
        )
        b = WorkloadGenerator(geometry, num_windows=100, master_seed=6).generate(
            profile_for("lame")
        )
        assert not np.array_equal(a.cycles, b.cycles)

    def test_addresses_cover_all_busy_regions_only(self):
        geometry, generator = self.make()
        profile = profile_for("dijkstra")
        trace = generator.generate(profile)
        index = (trace.addresses >> geometry.offset_bits) & (geometry.num_sets - 1)
        assert index.max() < geometry.num_sets

    def test_idleness_calibration_matches_table1(self):
        """The headline property: measured 4-bank idleness ~ Table I."""
        geometry = CacheGeometry(16 * 1024, 16)
        generator = WorkloadGenerator(geometry, num_windows=1200)
        for name in ("adpcm.dec", "gsmd", "say"):
            profile = profile_for(name)
            trace = generator.generate(profile)
            index = (trace.addresses >> geometry.offset_bits) & (geometry.num_sets - 1)
            bank = index >> (geometry.index_bits - 2)
            for b in range(4):
                stats = stats_from_access_cycles(
                    trace.cycles[bank == b], 20, 0, trace.horizon
                )
                assert stats.useful_idleness == pytest.approx(
                    profile.bank_idleness[b], abs=0.05
                )

    def test_gaps_within_busy_windows_below_breakeven(self):
        """Busy regions are accessed densely enough that no bank can doze
        mid-burst (access stride << breakeven)."""
        geometry, generator = self.make()
        trace = generator.generate(profile_for("CRC32"))
        gaps = np.diff(trace.cycles)
        # The merged stream is at least as dense as one region's stride.
        assert np.median(gaps) <= profile_for("CRC32").access_stride_cycles

    def test_hit_rate_realistic(self, lut):
        """MediaBench L1 hit rates are high; the tag-generation model
        must not produce a thrashing trace."""
        from repro.core.config import ArchitectureConfig
        from repro.core.fastsim import FastSimulator

        geometry, generator = self.make()
        trace = generator.generate(profile_for("cjpeg"))
        config = ArchitectureConfig(geometry, num_banks=4, policy="static")
        result = FastSimulator(config, lut).run(trace)
        assert result.hit_rate > 0.8

    def test_rejects_too_few_sets(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(CacheGeometry(128, 16))

    def test_rejects_tiny_schedules(self):
        geometry = CacheGeometry(16 * 1024, 16)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(geometry, num_windows=5)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(geometry, window_cycles=32)
