"""Tests for the butterfly-curve read-SNM evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging.cell import SRAMCellSpec
from repro.aging.snm import butterfly_curves, read_snm
from repro.errors import ModelError

SPEC = SRAMCellSpec()


class TestButterflyCurves:
    def test_shapes(self):
        vin, a, b = butterfly_curves(*SPEC.half_cells(), SPEC.vdd, samples=101)
        assert vin.shape == a.shape == b.shape == (101,)

    def test_vtcs_monotone_non_increasing(self):
        _, a, b = butterfly_curves(*SPEC.half_cells(), SPEC.vdd)
        assert np.all(np.diff(a) <= 1e-9)
        assert np.all(np.diff(b) <= 1e-9)

    def test_high_output_is_full_rail(self):
        """With the input at 0 the pull-up holds the node at Vdd."""
        _, a, _ = butterfly_curves(*SPEC.half_cells(), SPEC.vdd)
        assert a[0] == pytest.approx(SPEC.vdd, abs=1e-6)

    def test_read_disturb_raises_low_level(self):
        """Under read, the low output sits above ground (access fights)."""
        _, a, _ = butterfly_curves(*SPEC.half_cells(), SPEC.vdd)
        read_low = a[-1]
        assert 0.02 < read_low < 0.4

    def test_symmetric_cell_gives_identical_vtcs(self):
        _, a, b = butterfly_curves(*SPEC.half_cells(), SPEC.vdd)
        assert np.allclose(a, b)

    def test_rejects_bad_sampling(self):
        with pytest.raises(ModelError):
            butterfly_curves(*SPEC.half_cells(), SPEC.vdd, samples=4)

    def test_rejects_bad_vdd(self):
        with pytest.raises(ModelError):
            butterfly_curves(*SPEC.half_cells(), 0.0)


class TestReadSNM:
    def test_fresh_snm_plausible_for_45nm(self):
        """A healthy 45nm 6T cell reads ~150-300 mV of SNM at 1.1 V."""
        snm = read_snm(*SPEC.half_cells(), SPEC.vdd)
        assert 0.12 < snm < 0.35

    def test_degrades_monotonically_with_symmetric_aging(self):
        shifts = [0.0, 0.05, 0.1, 0.2, 0.3]
        snms = [read_snm(*SPEC.half_cells(d, d), SPEC.vdd) for d in shifts]
        assert all(a > b for a, b in zip(snms, snms[1:]))

    def test_asymmetric_aging_limited_by_worse_lobe(self):
        """One aged pull-up hurts as much as two (min over eyes)."""
        both = read_snm(*SPEC.half_cells(0.15, 0.15), SPEC.vdd)
        one = read_snm(*SPEC.half_cells(0.15, 0.0), SPEC.vdd)
        assert one == pytest.approx(both, abs=5e-3)

    def test_symmetry_under_device_swap(self):
        ab = read_snm(*SPEC.half_cells(0.12, 0.03), SPEC.vdd)
        ba = read_snm(*SPEC.half_cells(0.03, 0.12), SPEC.vdd)
        assert ab == pytest.approx(ba, abs=2e-3)

    def test_stronger_pulldown_improves_read_snm(self):
        """Classic cell-ratio effect: a stronger driver widens the eye."""
        weak = SRAMCellSpec(
            pull_down=SPEC.pull_down.__class__(k=1.8, vth=0.30)
        )
        strong = SRAMCellSpec(
            pull_down=SPEC.pull_down.__class__(k=3.4, vth=0.30)
        )
        snm_weak = read_snm(*weak.half_cells(), weak.vdd)
        snm_strong = read_snm(*strong.half_cells(), strong.vdd)
        assert snm_strong > snm_weak

    def test_never_negative(self):
        snm = read_snm(*SPEC.half_cells(0.9, 0.9), SPEC.vdd)
        assert snm >= 0.0

    def test_sampling_converged(self):
        """Doubling the sampling changes the SNM by well under a mV."""
        coarse = read_snm(*SPEC.half_cells(0.1, 0.1), SPEC.vdd, samples=161)
        fine = read_snm(*SPEC.half_cells(0.1, 0.1), SPEC.vdd, samples=321)
        assert coarse == pytest.approx(fine, abs=1.5e-3)
