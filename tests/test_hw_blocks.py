"""Tests for one-hot encoding, saturating counters, remappers, decoder D."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.counter import SaturatingCounter
from repro.hw.decoder import BankDecoder
from repro.hw.onehot import one_hot_decode, one_hot_encode
from repro.hw.remap import ProbingRemapper, ScramblingRemapper, StaticRemapper


class TestOneHot:
    def test_paper_encodings(self):
        """Bank 0 -> 00..01, bank M-1 -> 10..00 (Section III-A1)."""
        assert one_hot_encode(0, 4) == 0b0001
        assert one_hot_encode(3, 4) == 0b1000

    def test_round_trip(self):
        for m in (2, 4, 8, 16):
            for bank in range(m):
                assert one_hot_decode(one_hot_encode(bank, m), m) == bank

    def test_rejects_bad_words(self):
        with pytest.raises(ConfigurationError):
            one_hot_decode(0, 4)
        with pytest.raises(ConfigurationError):
            one_hot_decode(0b0101, 4)
        with pytest.raises(ConfigurationError):
            one_hot_decode(0b10000, 4)

    def test_rejects_bad_banks(self):
        with pytest.raises(ConfigurationError):
            one_hot_encode(4, 4)
        with pytest.raises(ConfigurationError):
            one_hot_encode(-1, 4)

    def test_rejects_non_power_bank_count(self):
        with pytest.raises(ConfigurationError):
            one_hot_encode(0, 3)


class TestSaturatingCounter:
    def test_terminal_count_after_limit_ticks(self):
        counter = SaturatingCounter(3)
        assert [counter.tick() for _ in range(5)] == [False, False, True, True, True]

    def test_reset_clears(self):
        counter = SaturatingCounter(2)
        counter.tick()
        counter.tick()
        assert counter.terminal_count
        counter.reset()
        assert not counter.terminal_count
        assert counter.value == 0

    def test_advance_saturates(self):
        counter = SaturatingCounter(10)
        counter.advance(100)
        assert counter.value == 10

    def test_advance_matches_ticks(self):
        a = SaturatingCounter(7)
        b = SaturatingCounter(7)
        for _ in range(5):
            a.tick()
        b.advance(5)
        assert a.value == b.value

    def test_width_matches_paper_range(self):
        assert SaturatingCounter(24).width == 5
        assert SaturatingCounter(63).width == 6

    def test_rejects_bad_limit(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(0)

    def test_advance_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(5).advance(-1)


class TestStaticRemapper:
    def test_identity(self):
        remapper = StaticRemapper(3)
        for bank in range(8):
            assert remapper.map(bank) == bank

    def test_update_is_noop(self):
        remapper = StaticRemapper(2)
        remapper.update()
        assert remapper.map(1) == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            StaticRemapper(2).map(4)


class TestProbingRemapper:
    def test_rotation_sequence(self):
        """Example 1 of the paper: bank 1 -> 2 -> 3 -> 0 across updates."""
        remapper = ProbingRemapper(2)
        sequence = []
        for _ in range(4):
            sequence.append(remapper.map(1))
            remapper.update()
        assert sequence == [1, 2, 3, 0]

    def test_modulo_wraparound(self):
        remapper = ProbingRemapper(2)
        for _ in range(4):
            remapper.update()
        assert remapper.counter == 0

    def test_is_bijection_after_any_updates(self):
        remapper = ProbingRemapper(3)
        for _ in range(5):
            remapper.update()
        images = {remapper.map(b) for b in range(8)}
        assert images == set(range(8))

    def test_rejects_bad_increment(self):
        with pytest.raises(ConfigurationError):
            ProbingRemapper(2, increment=0)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=40))
    def test_property_closed_form(self, p_bits, updates):
        """After R updates bank i maps to (i + R) mod M."""
        remapper = ProbingRemapper(p_bits)
        for _ in range(updates):
            remapper.update()
        m = 1 << p_bits
        for bank in range(m):
            assert remapper.map(bank) == (bank + updates) % m


class TestScramblingRemapper:
    def test_initial_mapping_is_identity(self):
        remapper = ScramblingRemapper(2)
        assert [remapper.map(b) for b in range(4)] == [0, 1, 2, 3]

    def test_is_bijection_after_updates(self):
        remapper = ScramblingRemapper(3)
        for _ in range(17):
            remapper.update()
            images = {remapper.map(b) for b in range(8)}
            assert images == set(range(8))

    def test_xor_involution(self):
        """Applying the same scrambling word twice returns the input."""
        remapper = ScramblingRemapper(4)
        remapper.update()
        for bank in range(16):
            assert remapper.map(remapper.map(bank)) == bank

    def test_rejects_narrow_lfsr(self):
        with pytest.raises(ConfigurationError):
            ScramblingRemapper(8, lfsr_width=4)

    def test_deterministic_for_seed(self):
        a = ScramblingRemapper(2, seed=77)
        b = ScramblingRemapper(2, seed=77)
        for _ in range(10):
            a.update()
            b.update()
            assert a.word == b.word


class TestBankDecoder:
    def test_paper_example_bit_level(self):
        """N=256 lines, M=4 banks: address 70 = bank 1, line 6."""
        decoder = BankDecoder(256, 4)
        decoded = decoder.decode(70)
        assert decoded.logical_bank == 70 // 64 == 1
        assert decoded.line_in_bank == 70 % 64
        assert decoded.physical_bank == 1
        assert decoded.select_word == 0b0010

    def test_probing_example_rotation(self):
        decoder = BankDecoder(256, 4, ProbingRemapper(2))
        banks = []
        for _ in range(4):
            banks.append(decoder.decode(70).physical_bank)
            decoder.remapper.update()
        assert banks == [1, 2, 3, 0]

    def test_line_in_bank_unchanged_by_remap(self):
        """Re-indexing only permutes banks; the row never changes."""
        decoder = BankDecoder(256, 4, ProbingRemapper(2))
        before = decoder.decode(70).line_in_bank
        decoder.remapper.update()
        assert decoder.decode(70).line_in_bank == before

    def test_physical_index_bijective_per_epoch(self):
        decoder = BankDecoder(64, 8, ScramblingRemapper(3))
        for _ in range(5):
            decoder.remapper.update()
            images = {decoder.physical_index(i) for i in range(64)}
            assert images == set(range(64))

    def test_lines_per_bank(self):
        assert BankDecoder(1024, 4).lines_per_bank == 256

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            BankDecoder(100, 4)  # lines not a power of two
        with pytest.raises(ConfigurationError):
            BankDecoder(64, 3)  # banks not a power of two
        with pytest.raises(ConfigurationError):
            BankDecoder(4, 8)  # more banks than lines
        with pytest.raises(ConfigurationError):
            BankDecoder(64, 4, ProbingRemapper(3))  # width mismatch

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ConfigurationError):
            BankDecoder(64, 4).decode(64)

    @given(st.integers(min_value=0, max_value=1023))
    def test_property_split_reassembles(self, index):
        decoder = BankDecoder(1024, 8)
        decoded = decoder.decode(index)
        assert (decoded.logical_bank << 7) | decoded.line_in_bank == index
