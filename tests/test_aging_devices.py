"""Tests for the square-law device models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aging.devices import (
    MOSFETParams,
    access_nmos_current,
    nmos_current,
    pmos_current,
)
from repro.errors import ModelError

NMOS = MOSFETParams(k=2.0, vth=0.3)
PMOS = MOSFETParams(k=1.0, vth=0.32)
VDD = 1.1


class TestParams:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ModelError):
            MOSFETParams(k=0.0, vth=0.3)

    def test_rejects_negative_vth(self):
        with pytest.raises(ModelError):
            MOSFETParams(k=1.0, vth=-0.1)

    def test_vth_shift_annotation(self):
        shifted = PMOS.with_vth_shift(0.05)
        assert shifted.vth == pytest.approx(0.37)
        assert shifted.k == PMOS.k

    def test_vth_shift_rejects_negative(self):
        with pytest.raises(ModelError):
            PMOS.with_vth_shift(-0.01)


class TestNMOS:
    def test_cutoff(self):
        assert nmos_current(NMOS, 0.2, 0.5) == 0.0

    def test_triode_formula(self):
        vgs, vds = 1.0, 0.2
        expected = 2.0 * ((vgs - 0.3) * vds - 0.5 * vds**2)
        assert nmos_current(NMOS, vgs, vds) == pytest.approx(expected)

    def test_saturation_formula(self):
        vgs = 1.0
        expected = 0.5 * 2.0 * (vgs - 0.3) ** 2
        assert nmos_current(NMOS, vgs, 1.0) == pytest.approx(expected)

    def test_continuous_at_pinchoff(self):
        vgs = 0.9
        vov = vgs - 0.3
        below = nmos_current(NMOS, vgs, vov - 1e-9)
        above = nmos_current(NMOS, vgs, vov + 1e-9)
        assert below == pytest.approx(above, abs=1e-6)

    def test_vectorized_over_vds(self):
        vds = np.linspace(0, 1.1, 50)
        current = nmos_current(NMOS, 1.0, vds)
        assert current.shape == vds.shape
        assert np.all(np.diff(current) >= -1e-12)  # non-decreasing in vds

    @given(
        st.floats(min_value=0.0, max_value=1.1),
        st.floats(min_value=0.0, max_value=1.1),
    )
    def test_property_nonnegative(self, vgs, vds):
        assert nmos_current(NMOS, vgs, vds) >= 0.0

    @given(st.floats(min_value=0.31, max_value=1.1))
    def test_property_monotone_in_vgs(self, vgs):
        low = nmos_current(NMOS, vgs - 0.005, 1.0)
        high = nmos_current(NMOS, vgs, 1.0)
        assert high >= low


class TestPMOS:
    def test_cutoff_when_gate_high(self):
        assert pmos_current(PMOS, VDD, VDD, 0.5) == 0.0

    def test_mirrors_nmos(self):
        """PMOS with gate at 0 behaves like an NMOS at vgs = vdd."""
        pm = pmos_current(PMOS, VDD, 0.0, VDD - 0.4)
        nm = nmos_current(MOSFETParams(k=1.0, vth=0.32), VDD, 0.4)
        assert pm == pytest.approx(float(nm))

    def test_decreasing_in_vd(self):
        vd = np.linspace(0, VDD, 50)
        current = pmos_current(PMOS, VDD, 0.0, vd)
        assert np.all(np.diff(current) <= 1e-12)

    def test_weaker_when_aged(self):
        aged = PMOS.with_vth_shift(0.1)
        fresh_current = pmos_current(PMOS, VDD, 0.0, 0.5)
        aged_current = pmos_current(aged, VDD, 0.0, 0.5)
        assert aged_current < fresh_current


class TestAccessNMOS:
    def test_no_injection_at_high_node(self):
        assert access_nmos_current(NMOS, VDD, VDD) == 0.0
        assert access_nmos_current(NMOS, VDD, VDD - 0.29) == 0.0

    def test_saturation_injection_at_low_node(self):
        expected = 0.5 * 2.0 * (VDD - 0.3) ** 2
        assert access_nmos_current(NMOS, VDD, 0.0) == pytest.approx(expected)

    def test_decreasing_in_node_voltage(self):
        vnode = np.linspace(0, VDD, 30)
        current = access_nmos_current(NMOS, VDD, vnode)
        assert np.all(np.diff(current) <= 1e-12)
