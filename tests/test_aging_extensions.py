"""Tests for the aging extensions: variation, thermal, flipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging.flipping import FlipScheme, flip_gain, flip_lifetime_years
from repro.aging.thermal import (
    BankThermalProfile,
    ThermalModel,
    thermal_bank_lifetimes,
)
from repro.aging.variation import VariationModel
from repro.errors import ModelError


class TestFlipping:
    def test_half_flip_balances_any_content(self):
        scheme = FlipScheme(0.5)
        for p0 in (0.0, 0.2, 0.5, 0.9, 1.0):
            assert scheme.effective_p0(p0) == pytest.approx(0.5)

    def test_no_flip_is_identity(self):
        scheme = FlipScheme(0.0)
        assert scheme.effective_p0(0.8) == pytest.approx(0.8)

    def test_gain_positive_for_skewed_content(self, framework):
        assert flip_gain(framework, 0.9) > 1.2

    def test_gain_is_one_for_balanced_content(self, framework):
        assert flip_gain(framework, 0.5) == pytest.approx(1.0, rel=1e-6)

    def test_composes_with_sleep(self, framework):
        """Flipping and idleness are independent levers that multiply."""
        flipped_asleep = flip_lifetime_years(framework, 0.9, psleep=0.5)
        flipped_awake = flip_lifetime_years(framework, 0.9, psleep=0.0)
        assert flipped_asleep > flipped_awake

    def test_validation(self):
        with pytest.raises(ModelError):
            FlipScheme(1.5)
        with pytest.raises(ModelError):
            FlipScheme(0.5).effective_p0(2.0)


class TestThermalModel:
    def test_reference_point_is_unity(self):
        model = ThermalModel()
        assert model.prefactor_scale(model.reference_celsius) == pytest.approx(1.0)
        assert model.lifetime_scale(model.reference_celsius) == pytest.approx(1.0)

    def test_hotter_ages_faster(self):
        model = ThermalModel()
        assert model.prefactor_scale(105.0) > 1.0
        assert model.lifetime_scale(105.0) < 1.0
        assert model.lifetime_scale(45.0) > 1.0

    def test_monotone_in_temperature(self):
        model = ThermalModel()
        scales = [model.lifetime_scale(t) for t in (25.0, 45.0, 65.0, 85.0, 105.0)]
        assert all(a > b for a, b in zip(scales, scales[1:]))

    def test_at_temperature_rescales_nbti(self):
        from repro.aging.nbti import NBTIModel

        base = NBTIModel()
        hot = ThermalModel().at_temperature(base, 105.0)
        assert hot.prefactor > base.prefactor
        assert hot.time_to_reach(0.05, 0.5) < base.time_to_reach(0.05, 0.5)

    def test_rejects_nonphysical(self):
        with pytest.raises(ModelError):
            ThermalModel(activation_ev=-0.1)
        with pytest.raises(ModelError):
            ThermalModel().prefactor_scale(-300.0)


class TestBankThermalProfile:
    def test_idle_banks_run_cool(self):
        profile = BankThermalProfile(ambient_celsius=45.0, rise_per_activity=35.0)
        temps = profile.bank_temperatures([0.0, 1.0])
        assert temps[0] == pytest.approx(80.0)  # fully active
        assert temps[1] == pytest.approx(45.0)  # fully asleep

    def test_validation(self):
        with pytest.raises(ModelError):
            BankThermalProfile(rise_per_activity=-1.0)
        with pytest.raises(ModelError):
            BankThermalProfile().bank_temperatures([])
        with pytest.raises(ModelError):
            BankThermalProfile().bank_temperatures([1.5])


class TestThermalLifetimes:
    def test_heat_compounds_imbalance(self):
        """A hot busy bank ages more than the sleep law alone predicts,
        so the thermal-aware worst bank is even worse."""
        sleep = [0.02, 0.99, 0.99, 0.04]
        with_heat = thermal_bank_lifetimes(sleep)
        sleep_only = [2.93 / (1 - 0.75 * s) for s in sleep]
        assert with_heat[0] < sleep_only[0]
        assert with_heat[1] > sleep_only[1]

    def test_balanced_banks_unchanged_at_reference_activity(self):
        """Banks at 50% activity sit exactly at the reference temperature."""
        lifetimes = thermal_bank_lifetimes([0.5, 0.5])
        expected = 2.93 / (1 - 0.75 * 0.5)
        assert lifetimes[0] == pytest.approx(expected, rel=1e-9)

    def test_balancing_still_wins_with_heat(self):
        unbalanced = thermal_bank_lifetimes([0.02, 0.99, 0.99, 0.04]).min()
        balanced = thermal_bank_lifetimes([0.51, 0.51, 0.51, 0.51]).min()
        assert balanced > unbalanced


class TestVariation:
    @pytest.fixture(scope="class")
    def model(self, framework):
        return VariationModel(framework, sigma_vth=0.01, offset_grid_points=5)

    def test_nominal_scale_is_unity(self, model):
        assert float(model.lifetime_scale(0.0)) == pytest.approx(1.0)

    def test_scale_decreases_with_offset(self, model):
        scales = model.lifetime_scale(np.array([0.0, 0.01, 0.02, 0.03]))
        assert all(a >= b for a, b in zip(scales, scales[1:]))
        assert scales[-1] < 0.9

    def test_negative_offsets_clamped(self, model):
        assert float(model.lifetime_scale(-0.05)) == pytest.approx(1.0)

    def test_zero_sigma_is_deterministic(self, framework):
        model = VariationModel(framework, sigma_vth=0.0, offset_grid_points=3)
        dist = model.bank_lifetime_distribution(100, psleep=0.4, samples=10)
        nominal = framework.lifetime_years(0.5, 0.4)
        assert dist.std == pytest.approx(0.0, abs=1e-9)
        assert dist.mean == pytest.approx(nominal, rel=1e-6)

    def test_more_cells_weaker_minimum(self, model):
        small = model.bank_lifetime_distribution(64, psleep=0.4, samples=40)
        large = model.bank_lifetime_distribution(4096, psleep=0.4, samples=40)
        assert large.mean < small.mean

    def test_relative_gain_survives_variation(self, model):
        """Idleness balancing multiplies the whole distribution: the
        balanced cache stays ~proportionally better under variation."""
        idle = model.bank_lifetime_distribution(256, psleep=0.68, samples=40)
        busy = model.bank_lifetime_distribution(256, psleep=0.02, samples=40)
        nominal_ratio = (2.93 / (1 - 0.75 * 0.68)) / (2.93 / (1 - 0.75 * 0.02))
        assert idle.mean / busy.mean == pytest.approx(nominal_ratio, rel=0.15)

    def test_cache_distribution_worst_of_banks(self, model):
        dist = model.cache_lifetime_distribution(
            [0.4, 0.4, 0.4, 0.02], cells_per_bank=128, samples=20
        )
        solo = model.bank_lifetime_distribution(128, psleep=0.02, samples=20)
        assert dist.mean <= solo.mean + 1e-9

    def test_percentiles_ordered(self, model):
        dist = model.bank_lifetime_distribution(256, psleep=0.4, samples=60)
        assert dist.percentile(1) <= dist.percentile(50) <= dist.percentile(99)
        assert dist.yield_lifetime == dist.percentile(1)

    def test_validation(self, framework):
        with pytest.raises(ModelError):
            VariationModel(framework, sigma_vth=-0.1)
        with pytest.raises(ModelError):
            VariationModel(framework, offset_grid_points=2)
