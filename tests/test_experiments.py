"""Integration tests: the experiment harness reproduces the paper.

These run the quick settings (6 benchmarks, short traces) through every
table and check both mechanics (layout, caching) and science (the
published values are matched within tolerances that the full-length runs
comfortably beat).
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_data
from repro.experiments.compare import (
    compare_table1,
    compare_table2,
    compare_table3,
    compare_table4,
    render_comparison,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.suite import ExperimentSettings
from repro.experiments.tables import headline, table1, table2, table3, table4


@pytest.fixture(scope="module")
def runner(lut_module):
    settings = ExperimentSettings().quick()
    return ExperimentRunner(settings=settings, lut=lut_module)


@pytest.fixture(scope="module")
def lut_module():
    from repro.aging.lut import LifetimeLUT

    return LifetimeLUT.default()


class TestSettings:
    def test_quick_is_subset(self):
        full = ExperimentSettings()
        quick = full.quick()
        assert set(quick.benchmarks) <= set(full.benchmarks)
        assert quick.horizon < full.horizon

    def test_update_period(self):
        settings = ExperimentSettings(num_windows=100, window_cycles=1000, num_updates=10)
        assert settings.update_period == 10_000

    def test_rejects_too_few_updates(self):
        with pytest.raises(Exception):
            ExperimentSettings(num_updates=4)

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(Exception):
            ExperimentSettings(benchmarks=("nosuch",))


class TestEngineSelection:
    def test_rejects_unknown_engine(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="engine"):
            ExperimentSettings(engine="warp")

    def test_quick_preserves_engine(self):
        settings = ExperimentSettings(engine="reference").quick()
        assert settings.engine == "reference"

    def test_runner_honours_engine_setting(self, lut_module):
        """Regression: ExperimentRunner.run hardcoded FastSimulator; it
        now dispatches through simulate() with settings.engine, so the
        reference engine is selectable and agrees with the default."""
        quick = ExperimentSettings(num_windows=60, benchmarks=("sha",))

        def run_with(engine):
            settings = ExperimentSettings(
                num_windows=quick.num_windows,
                benchmarks=quick.benchmarks,
                engine=engine,
            )
            runner = ExperimentRunner(settings=settings, lut=lut_module)
            return runner.run("sha", 8 * 1024, 16, 4, "probing")

        auto = run_with("auto")
        reference = run_with("reference")
        assert auto.cache_stats.hits == reference.cache_stats.hits
        assert auto.bank_stats == reference.bank_stats
        assert auto.lifetime_years == reference.lifetime_years


class TestRunnerMechanics:
    def test_results_are_memoized(self, runner):
        a = runner.static_run("sha", 16384, 16, 4)
        b = runner.static_run("sha", 16384, 16, 4)
        assert a is b

    def test_policies_give_distinct_results(self, runner):
        static = runner.static_run("sha", 16384, 16, 4)
        dynamic = runner.reindexed_run("sha", 16384, 16, 4)
        assert static is not dynamic
        assert dynamic.lifetime_years > static.lifetime_years

    def test_clear_drops_cache(self, runner):
        a = runner.static_run("sha", 16384, 16, 4)
        runner.clear()
        b = runner.static_run("sha", 16384, 16, 4)
        assert a is not b
        assert a.lifetime_years == pytest.approx(b.lifetime_years)


class TestTable1:
    def test_layout(self, runner):
        result = table1(runner)
        assert result.headers[0] == "benchmark"
        assert len(result.rows) == len(runner.settings.benchmarks) + 1
        assert result.rows[-1][0] == "Average"

    def test_idleness_matches_paper(self, runner):
        """Per-bank idleness within 8 points of Table I on quick traces."""
        cells, summary = compare_table1(table1(runner))
        assert summary["count"] == 4 * len(runner.settings.benchmarks)
        assert summary["mean_abs_delta"] < 4.0
        assert summary["max_abs_delta"] < 10.0

    def test_render_contains_benchmarks(self, runner):
        text = table1(runner).render()
        assert "adpcm.dec" in text
        assert "Table I" in text

    def test_row_lookup(self, runner):
        row = table1(runner).row_for("adpcm.dec")
        assert row[0] == "adpcm.dec"
        with pytest.raises(KeyError):
            table1(runner).row_for("nope")


class TestTable2:
    def test_shape_and_averages(self, runner):
        result = table2(runner)
        assert len(result.headers) == 10
        average = result.row_for("Average")
        # LT with re-indexing beats LT0 at every size, on average.
        assert average[3] > average[2]
        assert average[6] > average[5]
        assert average[9] > average[8]

    def test_energy_savings_grow_with_size(self, runner):
        average = table2(runner).row_for("Average")
        assert average[1] < average[4] < average[7]

    def test_against_paper(self, runner):
        cells, summary = compare_table2(table2(runner))
        # Lifetime cells agree to ~0.3y; Esav to a few points; the known
        # divergence is the 32kB Esav column (documented in EXPERIMENTS.md).
        assert summary["mean_abs_rel"] < 0.10

    def test_lt0_never_below_cell_lifetime(self, runner):
        result = table2(runner)
        for row in result.rows:
            for column in (2, 5, 8):
                assert row[column] >= 2.93 - 1e-6


class TestTable3:
    def test_esav_drops_with_larger_lines(self, runner):
        average = table3(runner).row_for("Average")
        assert average[3] < average[1]

    def test_lifetime_roughly_line_size_independent(self, runner):
        average = table3(runner).row_for("Average")
        assert average[4] == pytest.approx(average[2], abs=0.25)

    def test_against_paper(self, runner):
        cells, summary = compare_table3(table3(runner))
        assert summary["mean_abs_rel"] < 0.10


class TestTable4:
    def test_idleness_and_lifetime_grow_with_banks(self, runner):
        result = table4(runner)
        for row in result.rows:
            assert row[1] < row[3] < row[5]  # idleness
            assert row[2] < row[4] < row[6]  # lifetime

    def test_against_paper(self, runner):
        cells, summary = compare_table4(table4(runner))
        assert summary["mean_abs_rel"] < 0.12

    def test_m8_reaches_about_2x(self, runner):
        """'for M = 8 the lifetime of the cache is increased by about 2x'."""
        result = table4(runner)
        for row in result.rows:
            assert row[6] / paper_data.CELL_LIFETIME_YEARS > 1.7


class TestHeadline:
    def test_claims(self, runner):
        result = headline(runner)
        measured = {row[0].split(" (")[0]: row[1] for row in result.rows}
        pm_only = measured["power management only"]
        assert 5.0 < pm_only < 15.0  # the paper's 'mere 9%'
        assert measured[[k for k in measured if k.startswith("best")][0]] > 60.0


class TestComparisonRendering:
    def test_render(self, runner):
        cells, summary = compare_table1(table1(runner))
        text = render_comparison(cells, summary, "t1")
        assert "mean|Δ|" in text
        assert "t1" in text
