"""Tests for the estimate fidelity tier and the guided-search planner.

Covers the closed-form model (feasibility clamps, static exactness
against the simulator), the engine-registry contract (``auto`` never
picks an estimator), fidelity-tagged result keys and records (an
estimate can never alias or satisfy a simulated record), the planner's
grid/SearchSpec/strategy layer, strategy-guided ``search_sweep`` and
``run_campaign``, and the new CLI surfaces.
"""

from __future__ import annotations

import json
import math
import warnings
from dataclasses import replace

import pytest

import repro.campaign.run as campaign_run
from repro.analysis.planner import (
    PlanContext,
    SearchSpec,
    SearchStrategy,
    get_strategy,
    plan_grid,
    register_strategy,
    strategy_names,
)
from repro.analysis.sweep import search_sweep, sweep
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    CodecError,
    campaign_status,
    config_hash,
    run_campaign,
)
from repro.campaign.codec import config_result_hash
from repro.campaign.tracespec import TraceSpec
from repro.cache.geometry import CacheGeometry
from repro.cli import main
from repro.core.config import ArchitectureConfig
from repro.core.engine import (
    engine_names,
    get_engine,
    resolve_engine,
    result_fidelity,
)
from repro.core.serialize import ResultRecord, result_to_dict
from repro.core.simulator import simulate
from repro.errors import ConfigurationError, ReproWarning
from repro.estimate import estimate_result
from repro.estimate.model import (
    _histogram_response,
    predicted_updates,
    synthesize_bank_stats,
)
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for
from repro.trace.stats import profile_trace

GEOMETRY = CacheGeometry(8 * 1024, 16)


@pytest.fixture(scope="module")
def trace():
    return WorkloadGenerator(GEOMETRY, num_windows=60).generate(profile_for("sha"))


def config(**overrides) -> ArchitectureConfig:
    defaults = dict(
        num_banks=4, policy="static", update_period_cycles=None
    )
    defaults.update(overrides)
    return ArchitectureConfig(GEOMETRY, **defaults)


# ----------------------------------------------------------------------
# Closed-form model
# ----------------------------------------------------------------------
class TestEstimatorModel:
    def test_histogram_response_collapses_buckets_to_means(self):
        # One bucket of two gaps totalling 600 cycles (mean 300), one
        # bucket of one 10-cycle gap. Breakeven 100: only the big
        # bucket sleeps, 2 * (300 - 100) cycles.
        histogram = ((8, 2, 600), (3, 1, 10))
        intervals, useful, idle, sleep = _histogram_response(histogram, 100.0)
        assert intervals == 3
        assert useful == 2
        assert idle == 610
        assert sleep == pytest.approx(400.0)

    def test_synthesized_counters_are_feasible(self, trace):
        for policy, period in [("static", None), ("probing", 4096)]:
            cfg = config(policy=policy, update_period_cycles=period)
            profile = profile_trace(trace, GEOMETRY, num_banks=cfg.num_banks)
            for bank in synthesize_bank_stats(profile, cfg):
                assert 0 <= bank.sleep_cycles <= bank.idle_cycles
                assert bank.idle_cycles <= bank.total_cycles - bank.accesses
                assert bank.useful_intervals <= bank.idle_intervals

    def test_zero_access_bank_sleeps_through_the_horizon(self, trace):
        # A profile with an unused bank: share 0 -> the whole horizon
        # is one idle gap, sleepable minus one warm-up.
        profile = profile_trace(trace, GEOMETRY, num_banks=4)
        shares = (0.0,) + tuple(
            s / sum(profile.bank_shares[1:]) for s in profile.bank_shares[1:]
        )
        histograms = (
            ((profile.horizon.bit_length() - 1, 1, profile.horizon),),
        ) + profile.bank_gap_histograms[1:]
        starved = replace(
            profile, bank_shares=shares, bank_gap_histograms=histograms
        )
        stats = synthesize_bank_stats(starved, config(breakeven_override=100))
        assert stats[0].accesses == 0
        assert stats[0].sleep_cycles > 0.9 * profile.horizon

    def test_static_estimate_matches_simulation(self, trace, lut):
        cfg = config(breakeven_override=100)
        profile = profile_trace(trace, GEOMETRY, num_banks=cfg.num_banks)
        estimated = estimate_result(cfg, profile, lut, trace_name="sha")
        simulated = simulate(cfg, trace, lut)
        assert estimated.hit_rate == pytest.approx(simulated.hit_rate, abs=1e-3)
        assert estimated.energy_savings == pytest.approx(
            simulated.energy_savings, abs=1e-3
        )
        assert estimated.average_idleness == pytest.approx(
            simulated.average_idleness, abs=1e-3
        )
        assert estimated.lifetime_years == pytest.approx(
            simulated.lifetime_years, rel=1e-3
        )

    def test_dynamic_estimate_tracks_simulation(self, trace, lut):
        cfg = config(policy="probing", update_period_cycles=4096,
                     breakeven_override=100)
        profile = profile_trace(trace, GEOMETRY, num_banks=cfg.num_banks)
        estimated = estimate_result(cfg, profile, lut)
        simulated = simulate(cfg, trace, lut)
        assert estimated.hit_rate == pytest.approx(simulated.hit_rate, abs=0.15)
        assert estimated.energy_savings == pytest.approx(
            simulated.energy_savings, abs=0.15
        )

    def test_predicted_updates_match_schedule(self):
        assert predicted_updates(config(), 100_000) == 0
        periodic = config(policy="probing", update_period_cycles=1000)
        assert predicted_updates(periodic, 10_001) == 10
        events = config(policy="scrambling", update_events=(5, 500, 99_999))
        assert predicted_updates(events, 1_000) == 2

    def test_bank_count_mismatch_is_loud(self, trace):
        profile = profile_trace(trace, GEOMETRY, num_banks=2)
        with pytest.raises(ConfigurationError, match="banks"):
            estimate_result(config(num_banks=4), profile)

    def test_estimates_carry_the_fidelity_tag(self, trace, lut):
        profile = profile_trace(trace, GEOMETRY, num_banks=4)
        estimated = estimate_result(config(), profile, lut)
        assert estimated.fidelity == "estimate"
        assert simulate(config(), trace, lut).fidelity == "simulate"


# ----------------------------------------------------------------------
# Engine registry
# ----------------------------------------------------------------------
class TestEstimateEngine:
    def test_registered_with_estimate_fidelity(self):
        assert "estimate" in engine_names()
        assert result_fidelity("estimate") == "estimate"
        assert result_fidelity("auto") == "simulate"

    def test_auto_never_selects_the_estimator(self):
        engine = resolve_engine("auto", config())
        assert getattr(engine, "fidelity", "simulate") == "simulate"
        assert not get_engine("estimate").auto_eligible


# ----------------------------------------------------------------------
# Fidelity-tagged keys and records
# ----------------------------------------------------------------------
class TestFidelityIdentity:
    def test_simulate_keys_stay_byte_compatible(self):
        cfg = config()
        assert config_result_hash(cfg) == config_hash(cfg)
        assert config_result_hash(cfg, fidelity="simulate") == config_hash(cfg)

    def test_estimate_keys_never_alias(self):
        cfg = config()
        estimate_key = config_result_hash(cfg, fidelity="estimate")
        assert estimate_key != config_result_hash(cfg)
        assert estimate_key != config_result_hash(cfg, family="finegrain")
        assert estimate_key != config_result_hash(
            cfg, family="finegrain", fidelity="estimate"
        )

    def test_simulated_payloads_have_no_fidelity_key(self, trace, lut):
        payload = result_to_dict(simulate(config(), trace, lut))
        assert "fidelity" not in payload
        assert ResultRecord.from_dict(payload).fidelity == "simulate"

    def test_estimated_payloads_round_trip_their_tier(self, trace, lut):
        profile = profile_trace(trace, GEOMETRY, num_banks=4)
        payload = result_to_dict(estimate_result(config(), profile, lut))
        assert payload["fidelity"] == "estimate"
        record = ResultRecord.from_dict(payload)
        assert record.fidelity == "estimate"
        assert record.to_result(lut).fidelity == "estimate"


# ----------------------------------------------------------------------
# Planner layer
# ----------------------------------------------------------------------
class TestPlanner:
    def test_plan_grid_enumerates_and_groups(self):
        grid = plan_grid({"num_banks": [2, 4], "breakeven_override": [10, 20]})
        assert len(grid) == 4
        assert grid.parameters(3) == {"num_banks": 4, "breakeven_override": 20}
        ids = grid.group_ids
        assert ids is not None
        assert ids[0] == ids[1] and ids[2] == ids[3] and ids[0] != ids[2]
        assert grid.subset_group_ids([3, 0]) == [ids[3], ids[0]]

    def test_plan_grid_validates(self):
        with pytest.raises(ConfigurationError, match="not an ArchitectureConfig"):
            plan_grid({"volume": [1]})
        with pytest.raises(ConfigurationError, match="at least one axis"):
            plan_grid({})
        assert len(plan_grid({}, allow_empty=True)) == 1

    def test_search_spec_validation(self):
        with pytest.raises(ConfigurationError, match="unknown search strategy"):
            SearchSpec(strategy="warp")
        with pytest.raises(ConfigurationError, match="maximize"):
            SearchSpec(objectives=("hit_rate",), maximize=(True, False))
        with pytest.raises(ConfigurationError, match="top_fraction"):
            SearchSpec(top_fraction=0.0)
        with pytest.raises(ConfigurationError, match="unknown search fields"):
            SearchSpec.from_dict({"strategy": "exhaustive", "mystery": 1})

    def test_search_spec_round_trips(self):
        spec = SearchSpec(
            strategy="estimator-pruned",
            objectives=("hit_rate", "energy_savings"),
            maximize=(True, True),
            top_k=3,
            epsilon=0.1,
        )
        assert SearchSpec.from_dict(spec.to_dict()) == spec
        assert spec.survivors_per_objective(100) == 3
        assert SearchSpec().survivors_per_objective(100) == 5

    def test_strategy_registry_is_loud_and_extensible(self):
        assert strategy_names() == (
            "estimator-pruned", "exhaustive", "pareto-active"
        )
        with pytest.raises(ConfigurationError, match="known:"):
            get_strategy("warp")

        class Probe(SearchStrategy):
            name = "probe-test"

            def select(self, context: PlanContext):
                raise NotImplementedError

        register_strategy(Probe())
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_strategy(Probe())
            assert get_strategy("probe-test").name == "probe-test"
        finally:
            from repro.analysis import planner

            del planner._STRATEGIES["probe-test"]

    def test_pruned_strategy_needs_an_estimator(self):
        grid = plan_grid({"num_banks": [2, 4]})
        context = PlanContext(
            grid=grid,
            search=SearchSpec(strategy="estimator-pruned"),
            simulate=lambda indices: [None] * len(indices),
            estimate=None,
        )
        with pytest.raises(ConfigurationError, match="no estimator"):
            get_strategy("estimator-pruned").select(context)


# ----------------------------------------------------------------------
# Guided sweep
# ----------------------------------------------------------------------
class TestSearchSweep:
    def test_exhaustive_strategy_is_bit_identical_to_sweep(self, trace, lut):
        axes = {"num_banks": [2, 4], "breakeven_override": [20, 100]}
        base = config()
        classic = sweep(base, trace, axes, lut)
        guided = search_sweep(base, trace, axes, search=SearchSpec(), lut=lut)
        assert len(guided.estimates.points) == 0
        for a, b in zip(classic, guided.simulated.points):
            assert a.parameters == b.parameters
            assert a.result.bank_stats == b.result.bank_stats
            assert a.result.energy_pj == b.result.energy_pj

    def test_pruned_sweep_simulates_a_subset(self, trace, lut):
        axes = {
            "num_banks": [2, 4],
            "breakeven_override": [10, 50, 250, 1250, 6250],
        }
        pruned = search_sweep(
            config(), trace, axes,
            search=SearchSpec(strategy="estimator-pruned", top_k=1, epsilon=0.0),
            lut=lut,
        )
        total = 10
        assert len(pruned.estimates.points) == total
        assert 0 < len(pruned.simulated.points) < total
        assert pruned.simulations_avoided == total - len(pruned.simulated.points)
        assert all(
            p.result.fidelity == "estimate" for p in pruned.estimates.points
        )
        assert all(
            p.result.fidelity == "simulate" for p in pruned.simulated.points
        )

    def test_pareto_active_confirms_the_frontier(self, trace, lut):
        axes = {"num_banks": [2, 4], "breakeven_override": [20, 100, 500]}
        result = search_sweep(
            config(), trace, axes,
            search=SearchSpec(strategy="pareto-active", max_rounds=4),
            lut=lut,
        )
        assert result.outcome.rounds >= 1
        assert 0 < len(result.simulated.points) <= 6


# ----------------------------------------------------------------------
# Guided campaigns
# ----------------------------------------------------------------------
def guided_spec(search=None, engine="auto") -> CampaignSpec:
    return CampaignSpec(
        name="guided",
        traces=(TraceSpec.synthetic("sha", size_bytes=8 * 1024, num_windows=40),),
        base=ArchitectureConfig(
            GEOMETRY, num_banks=4, policy="probing", update_period_cycles=5120
        ),
        axes={
            "num_banks": [2, 4],
            "policy": ["static", "probing"],
            "breakeven_override": [20, 100, 500],
        },
        engine=engine,
        search=search,
    )


@pytest.fixture()
def sim_counter(monkeypatch):
    counted = {"points": 0}
    original = campaign_run.simulate_selected

    def counting(base, trace, names, combos, **kwargs):
        counted["points"] += len(combos)
        return original(base, trace, names, combos, **kwargs)

    monkeypatch.setattr(campaign_run, "simulate_selected", counting)
    return counted


class TestGuidedCampaign:
    SEARCH = SearchSpec(strategy="estimator-pruned", top_k=2, epsilon=0.0)

    def test_spec_search_block_round_trips(self, tmp_path):
        spec = guided_spec(search=self.SEARCH)
        path = tmp_path / "spec.json"
        spec.save(path)
        again = CampaignSpec.load(path)
        assert again == spec
        assert again.search == self.SEARCH

    def test_searchless_spec_payload_is_unchanged(self):
        payload = guided_spec().to_dict()
        assert "search" not in payload
        assert guided_spec().spec_hash() == CampaignSpec.from_dict(
            payload
        ).spec_hash()
        assert guided_spec(search=self.SEARCH).spec_hash() != guided_spec().spec_hash()

    def test_malformed_search_block_is_loud(self):
        with pytest.raises(CodecError, match="search"):
            guided_spec(search="estimator-pruned")  # must be a SearchSpec
        with pytest.raises(CodecError):
            CampaignSpec.from_dict(
                {**guided_spec().to_dict(), "search": "estimator-pruned"}
            )

    def test_guided_run_prunes_then_exhaustive_fills(
        self, tmp_path, lut, sim_counter
    ):
        spec = guided_spec(search=self.SEARCH)
        total = spec.num_points()
        guided = run_campaign(spec, directory=tmp_path, lut=lut)
        assert guided.estimated == total
        assert 0 < guided.simulated < total
        assert sim_counter["points"] == guided.simulated
        assert len(guided.points) == guided.simulated

        status = campaign_status(spec, CampaignStore(tmp_path))
        assert status.total == total
        assert status.done == guided.simulated
        assert status.estimated == total

        # Re-running the guided campaign does zero new work.
        again = run_campaign(spec, directory=tmp_path, lut=lut)
        assert again.simulated == 0 and again.estimated == 0
        assert again.reused == guided.simulated
        assert sim_counter["points"] == guided.simulated

        # A later exhaustive run fills exactly the pruned points.
        exhaustive = run_campaign(
            replace(spec, search=None), directory=tmp_path, lut=lut
        )
        assert exhaustive.simulated == total - guided.simulated
        assert exhaustive.reused == guided.simulated
        assert len(exhaustive.points) == total

    def test_best_defaults_to_the_simulated_tier(self, tmp_path, lut):
        spec = guided_spec(search=self.SEARCH)
        run_campaign(spec, directory=tmp_path, lut=lut)
        store = CampaignStore(tmp_path)
        best = store.best("energy_savings")
        assert best is not None and best["fidelity"] == "simulate"
        rows = store.where()
        assert {row["fidelity"] for row in rows} == {"simulate", "estimate"}
        simulated_rows = [r for r in rows if r["fidelity"] == "simulate"]
        assert best["energy_savings"] == max(
            r["energy_savings"] for r in simulated_rows
        )
        ranked_any = store.best("energy_savings", fidelity="any")
        assert ranked_any is not None

    def test_strategy_override_and_estimate_engine_rejection(self, tmp_path, lut):
        with pytest.raises(ConfigurationError, match="estimator"):
            run_campaign(
                guided_spec(engine="estimate"),
                directory=tmp_path,
                lut=lut,
                search="estimator-pruned",
            )

    def test_workers_fall_back_to_single_process(self, tmp_path, lut):
        spec = guided_spec(search=self.SEARCH)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_campaign(spec, directory=tmp_path, lut=lut, workers=2)
        assert result.simulated > 0
        assert any(issubclass(w.category, ReproWarning) for w in caught)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestCli:
    def test_trace_stats_text(self, capsys):
        assert main(["trace", "stats", "sha", "--windows", "40"]) == 0
        out = capsys.readouterr().out
        assert "accesses" in out and "bank" in out

    def test_trace_stats_json(self, capsys):
        assert (
            main(
                ["trace", "stats", "sha", "--windows", "40", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["accesses"] > 0
        assert len(payload["bank_gap_histograms"]) == payload["num_banks"]

    def test_estimate_validate(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        assert (
            main(
                ["estimate", "validate", "--benchmarks", "sha",
                 "--windows", "40", "--banks", "2,4", "--breakevens", "20,100",
                 "--output", str(out_path)]
            )
            == 0
        )
        report = json.loads(out_path.read_text())
        assert report["points_per_workload"] == 4
        assert "hit_rate" in report["overall"]

    def test_campaign_run_strategy_flag(self, tmp_path, capsys):
        spec = guided_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert (
            main(
                ["campaign", "run", str(path), "--dir", str(tmp_path / "c"),
                 "--strategy", "estimator-pruned"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "estimated" in out

    def test_campaign_run_rejects_unknown_strategy(self, tmp_path):
        spec = guided_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        with pytest.raises(SystemExit):
            main(
                ["campaign", "run", str(path), "--dir",
                 str(tmp_path / "c"), "--strategy", "warp"]
            )
