"""Tests for the declarative campaign API.

Covers the exact config codec (property-tested round-trips), trace
specs and their registry, campaign specs and spec files, the
content-addressed store, resumable `run_campaign` (zero resimulation,
incremental widening — pinned by a simulation-call counter), and the
bit-identity of campaign records with direct `simulate()` calls through
a store round-trip.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.campaign.run as campaign_run
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    CodecError,
    campaign_status,
    config_from_dict,
    config_hash,
    config_to_dict,
    run_campaign,
)
from repro.campaign.tracespec import TraceSource, TraceSpec, register_trace_source
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.serialize import SerializationError
from repro.core.simulator import simulate
from repro.power.energy import TechnologyParams
from repro.trace.generator import WorkloadGenerator
from repro.trace.io import save_trace
from repro.trace.mediabench import profile_for


# ----------------------------------------------------------------------
# Config codec
# ----------------------------------------------------------------------
@st.composite
def architecture_configs(draw) -> ArchitectureConfig:
    """Valid configs across geometries (incl. ways>1), policies,
    update schedules, overrides and non-default technologies."""
    size_bytes = 2 ** draw(st.integers(min_value=10, max_value=15))
    line_size = draw(st.sampled_from([16, 32]))
    ways = draw(st.sampled_from([1, 2, 4]))
    geometry = CacheGeometry(size_bytes, line_size, ways=ways)
    max_bank_exp = min(3, geometry.num_sets.bit_length() - 1)
    num_banks = 2 ** draw(st.integers(min_value=0, max_value=max_bank_exp))
    if num_banks == 1:
        policy = "static"
    else:
        policy = draw(st.sampled_from(["static", "probing", "scrambling"]))
    schedule_kind = draw(st.sampled_from(["none", "period", "events"]))
    update_period = None
    update_events = None
    if schedule_kind == "period":
        update_period = draw(st.integers(min_value=1, max_value=10**6))
    elif schedule_kind == "events":
        raw = draw(
            st.lists(
                st.integers(min_value=0, max_value=10**6),
                min_size=1,
                max_size=5,
                unique=True,
            )
        )
        update_events = tuple(sorted(raw))
    breakeven = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=500)))
    if draw(st.booleans()):
        technology = TechnologyParams()
    else:
        technology = TechnologyParams(
            e_access_fixed=draw(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
            ),
            leak_per_line=draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            ),
            drowsy_leak_ratio=draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            ),
            address_bits=draw(st.integers(min_value=24, max_value=48)),
        )
    frequency = draw(
        st.floats(min_value=1e6, max_value=5e9, allow_nan=False, allow_infinity=False)
    )
    return ArchitectureConfig(
        geometry=geometry,
        num_banks=num_banks,
        policy=policy,
        power_managed=draw(st.booleans()),
        update_period_cycles=update_period,
        update_events=update_events,
        breakeven_override=breakeven,
        technology=technology,
        frequency_hz=frequency,
    )


class TestConfigCodec:
    @settings(max_examples=120, deadline=None)
    @given(architecture_configs())
    def test_round_trip_is_exact(self, config):
        payload = config_to_dict(config)
        # Through real JSON text: floats must survive the disk format.
        rebuilt = config_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == config
        assert config_hash(rebuilt) == config_hash(config)

    @settings(max_examples=40, deadline=None)
    @given(architecture_configs(), architecture_configs())
    def test_hash_is_semantic_identity(self, a, b):
        assert (config_hash(a) == config_hash(b)) == (a == b)

    def test_rejects_unknown_fields(self):
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16))
        payload = config_to_dict(config)
        payload["volume"] = 11
        with pytest.raises(CodecError, match="volume"):
            config_from_dict(payload)
        geometry = dict(payload["geometry"], lines="many")
        with pytest.raises(CodecError, match="lines"):
            config_from_dict({**config_to_dict(config), "geometry": geometry})

    def test_missing_optionals_take_defaults(self):
        minimal = {"geometry": {"size_bytes": 8192, "line_size": 16}}
        config = config_from_dict(minimal)
        assert config == ArchitectureConfig(CacheGeometry(8192, 16))

    def test_invalid_config_surfaces_as_codec_error(self):
        payload = config_to_dict(ArchitectureConfig(CacheGeometry(8192, 16)))
        payload["num_banks"] = 3
        with pytest.raises(CodecError, match="power of two"):
            config_from_dict(payload)

    def test_numeric_spellings_hash_identically(self):
        """int vs float spellings of an equal config must not fragment
        the store: hashing follows object equality, not JSON types."""
        geometry = CacheGeometry(8 * 1024, 16)
        as_float = ArchitectureConfig(geometry, frequency_hz=400e6)
        as_int = ArchitectureConfig(geometry, frequency_hz=400_000_000)
        assert as_float == as_int
        assert config_hash(as_float) == config_hash(as_int)
        # A hand-written spec file's integer frequency decodes to the
        # same hash too.
        payload = config_to_dict(as_float)
        payload["frequency_hz"] = 400000000  # JSON integer spelling
        assert config_hash(config_from_dict(payload)) == config_hash(as_float)
        tech_int = ArchitectureConfig(
            geometry, technology=TechnologyParams(e_access_fixed=9)
        )
        tech_float = ArchitectureConfig(
            geometry, technology=TechnologyParams(e_access_fixed=9.0)
        )
        assert config_hash(tech_int) == config_hash(tech_float)


# ----------------------------------------------------------------------
# Trace specs
# ----------------------------------------------------------------------
class TestTraceSpec:
    def test_synthetic_build_matches_generator(self):
        spec = TraceSpec.synthetic(
            "sha", size_bytes=8 * 1024, num_windows=40, master_seed=7
        )
        trace = spec.build()
        direct = WorkloadGenerator(
            CacheGeometry(8 * 1024, 16), num_windows=40, master_seed=7
        ).generate(profile_for("sha"))
        assert (trace.cycles == direct.cycles).all()
        assert (trace.addresses == direct.addresses).all()
        assert trace.horizon == direct.horizon

    def test_normalization_makes_hash_canonical(self):
        short = TraceSpec.synthetic("sha")
        explicit = TraceSpec(
            kind="synthetic",
            params={
                "benchmark": "sha",
                "size_bytes": 16 * 1024,
                "line_size": 16,
                "ways": 1,
                "num_windows": 1500,
                "window_cycles": 1024,
                "master_seed": 2011,
            },
        )
        assert short == explicit
        assert short.trace_hash() == explicit.trace_hash()
        assert short.trace_hash() != TraceSpec.synthetic("sha", master_seed=1).trace_hash()

    def test_file_spec_round_trips_and_verifies_checksum(self, tmp_path):
        import hashlib

        trace = WorkloadGenerator(
            CacheGeometry(8 * 1024, 16), num_windows=40
        ).generate(profile_for("sha"))
        path = tmp_path / "sha.npz"
        save_trace(trace, path)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        spec = TraceSpec.from_file(path, sha256=digest)
        loaded = spec.build()
        assert (loaded.cycles == trace.cycles).all()
        bad = TraceSpec.from_file(path, sha256="0" * 64)
        from repro.errors import TraceError

        with pytest.raises(TraceError, match="checksum"):
            bad.build()

    def test_unknown_kind_and_params_rejected(self):
        with pytest.raises(CodecError, match="unknown trace source"):
            TraceSpec(kind="oracle", params={})
        with pytest.raises(CodecError, match="missing parameters"):
            TraceSpec(kind="synthetic", params={})
        with pytest.raises(CodecError, match="unknown parameters"):
            TraceSpec.synthetic("sha", wavelength=3)

    def test_dict_round_trip(self):
        spec = TraceSpec.synthetic("dijkstra", num_windows=80)
        again = TraceSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.trace_hash() == spec.trace_hash()

    def test_custom_source_registers(self):
        from tests.conftest import make_random_trace

        register_trace_source(
            TraceSource(
                kind="random-test",
                build=lambda params: make_random_trace(seed=params["seed"]),
                required=("seed",),
            )
        )
        spec = TraceSpec(kind="random-test", params={"seed": 5})
        assert len(spec.build()) == 2000
        assert spec.label() == "random-test"


# ----------------------------------------------------------------------
# Campaign specs
# ----------------------------------------------------------------------
def small_campaign(tmp_benchmark="sha", axes=None, engine="auto") -> CampaignSpec:
    return CampaignSpec(
        name="t",
        traces=(TraceSpec.synthetic(tmp_benchmark, num_windows=40),),
        base=ArchitectureConfig(
            CacheGeometry(8 * 1024, 16),
            num_banks=4,
            policy="probing",
            update_period_cycles=5120,
        ),
        axes=axes if axes is not None else {"num_banks": [2, 4]},
        engine=engine,
    )


class TestCampaignSpec:
    def test_file_round_trip_with_rich_axes(self, tmp_path):
        spec = CampaignSpec(
            name="rich",
            traces=(TraceSpec.synthetic("sha", num_windows=40),),
            base=ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4,
                                    policy="probing", update_period_cycles=5120),
            axes={
                "geometry": [
                    CacheGeometry(8 * 1024, 16),
                    CacheGeometry(8 * 1024, 16, ways=2),
                ],
                "technology": [TechnologyParams(), TechnologyParams(e_access_fixed=4.0)],
                "update_events": [None, (100, 5000)],
                "breakeven_override": [None, 50],
            },
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        again = CampaignSpec.load(path)
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_hash_tracks_content_not_formatting(self, tmp_path):
        spec = small_campaign()
        payload = spec.to_dict()
        scrambled = json.loads(json.dumps(payload, sort_keys=False))
        assert CampaignSpec.from_dict(scrambled).spec_hash() == spec.spec_hash()
        widened = small_campaign(axes={"num_banks": [2, 4, 8]})
        assert widened.spec_hash() != spec.spec_hash()

    def test_validation(self):
        with pytest.raises(CodecError, match="at least one trace"):
            CampaignSpec(name="x", traces=(), base=ArchitectureConfig(CacheGeometry(8192, 16)))
        with pytest.raises(CodecError, match="not an ArchitectureConfig field"):
            small_campaign(axes={"volume": [1]})
        with pytest.raises(CodecError, match="no values"):
            small_campaign(axes={"num_banks": []})
        with pytest.raises(ValueError, match="unknown engine"):
            small_campaign(engine="warp")

    def test_points_and_counts(self):
        spec = small_campaign(axes={"num_banks": [2, 4], "policy": ["static", "probing"]})
        points = list(spec.points())
        assert len(points) == spec.num_points() == 4
        assert points[0].config.num_banks == 2
        no_axes = small_campaign(axes={})
        assert no_axes.num_points() == 1
        assert list(no_axes.points())[0].config == no_axes.base


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
class TestCampaignStore:
    def test_disk_round_trip_and_reopen(self, tmp_path, lut):
        trace = TraceSpec.synthetic("sha", size_bytes=8 * 1024, num_windows=40)
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4,
                                    policy="probing", update_period_cycles=5120)
        result = simulate(config, trace.build(), lut)
        key = (trace.trace_hash(), config_hash(config))
        store = CampaignStore(tmp_path)
        store.put(key, result)
        assert key in store and len(store) == 1
        assert store.get_result(key) is result  # memo-dict contract

        reopened = CampaignStore(tmp_path)
        assert key in reopened
        record = reopened.get_record(key)
        assert record.energy_pj == result.energy_pj
        rebuilt = reopened.get_result(key, lut=lut)
        assert rebuilt is not result
        assert rebuilt.bank_stats == result.bank_stats
        assert rebuilt.energy_pj == result.energy_pj
        assert rebuilt.config == result.config

    def test_no_temp_files_left_behind(self, tmp_path, lut):
        trace = TraceSpec.synthetic("sha", size_bytes=8 * 1024, num_windows=40)
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16))
        result = simulate(config, trace.build(), lut)
        store = CampaignStore(tmp_path)
        store.put((trace.trace_hash(), config_hash(config)), result)
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_corrupt_record_is_reported(self, tmp_path):
        results_dir = tmp_path / "results"
        results_dir.mkdir()
        (results_dir / "dead-beef.json").write_text("{not json")
        # Opening is lazy — nothing is read, so nothing can fail yet...
        store = CampaignStore(tmp_path)
        # ...but any enumeration must surface the corruption, not skip it.
        with pytest.raises(SerializationError, match="corrupt campaign record"):
            store.records()

    def test_opening_a_store_is_read_only(self, tmp_path):
        """status/show must not mutate the filesystem: opening a store
        on a missing or empty directory creates nothing."""
        missing = tmp_path / "typo.d"
        store = CampaignStore(missing)
        assert len(store) == 0
        assert not missing.exists()
        empty = tmp_path / "empty.d"
        empty.mkdir()
        CampaignStore(empty)
        assert list(empty.iterdir()) == []


# ----------------------------------------------------------------------
# run_campaign: resume, widen, bit-identity
# ----------------------------------------------------------------------
@pytest.fixture()
def sim_counter(monkeypatch):
    """Count grid points actually simulated by run_campaign."""
    counted = {"points": 0}
    original = campaign_run.simulate_selected

    def counting(base, trace, names, combos, **kwargs):
        counted["points"] += len(combos)
        return original(base, trace, names, combos, **kwargs)

    monkeypatch.setattr(campaign_run, "simulate_selected", counting)
    return counted


class TestRunCampaign:
    def test_rerun_simulates_zero_points(self, tmp_path, lut, sim_counter):
        spec = small_campaign(axes={"num_banks": [2, 4], "policy": ["static", "probing"]})
        first = run_campaign(spec, directory=tmp_path, lut=lut)
        assert first.simulated == 4 and first.reused == 0
        assert sim_counter["points"] == 4

        second = run_campaign(spec, directory=tmp_path, lut=lut)
        assert second.simulated == 0 and second.reused == 4
        assert sim_counter["points"] == 4  # no new simulation calls at all
        assert [p.parameters for p in second] == [p.parameters for p in first]

    def test_widening_an_axis_simulates_only_new_points(
        self, tmp_path, lut, sim_counter
    ):
        run_campaign(
            small_campaign(axes={"num_banks": [2, 4]}), directory=tmp_path, lut=lut
        )
        assert sim_counter["points"] == 2
        widened = run_campaign(
            small_campaign(axes={"num_banks": [2, 4, 8]}), directory=tmp_path, lut=lut
        )
        assert widened.simulated == 1 and widened.reused == 2
        assert sim_counter["points"] == 3

    def test_interrupted_campaign_resumes(self, tmp_path, lut, monkeypatch):
        """Kill the run after the first trace; the rerun finishes only
        the second trace's points."""
        spec = CampaignSpec(
            name="t",
            traces=(
                TraceSpec.synthetic("sha", num_windows=40),
                TraceSpec.synthetic("dijkstra", num_windows=40),
            ),
            base=ArchitectureConfig(CacheGeometry(8 * 1024, 16), num_banks=4,
                                    policy="probing", update_period_cycles=5120),
            axes={"num_banks": [2, 4]},
        )
        calls = {"n": 0}
        original = campaign_run.simulate_selected

        def dies_after_first(base, trace, names, combos, **kwargs):
            if calls["n"] == 1:
                raise KeyboardInterrupt
            calls["n"] += 1
            return original(base, trace, names, combos, **kwargs)

        monkeypatch.setattr(campaign_run, "simulate_selected", dies_after_first)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, directory=tmp_path, lut=lut)
        monkeypatch.undo()

        status = campaign_status(spec, CampaignStore(tmp_path))
        assert status.done == 2 and status.missing == 2
        resumed = run_campaign(spec, directory=tmp_path, lut=lut)
        assert resumed.simulated == 2 and resumed.reused == 2

    def test_midtrace_interruption_keeps_finished_points(
        self, tmp_path, lut, monkeypatch
    ):
        """Results persist as they are produced, not per trace batch:
        dying inside a trace's grid loses only the in-flight point."""
        import importlib

        # repro.analysis re-exports sweep() the function over the
        # submodule attribute; importlib returns the real module.
        sweep_mod = importlib.import_module("repro.analysis.sweep")

        spec = small_campaign(axes={"num_banks": [2, 4], "policy": ["static", "probing"]})
        calls = {"n": 0}
        original = sweep_mod.simulate

        def dies_on_third(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return original(*args, **kwargs)

        monkeypatch.setattr(sweep_mod, "simulate", dies_on_third)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, directory=tmp_path, lut=lut)
        monkeypatch.undo()

        status = campaign_status(spec, CampaignStore(tmp_path))
        assert status.done == 2  # the two finished points survived
        resumed = run_campaign(spec, directory=tmp_path, lut=lut)
        assert resumed.simulated == 2 and resumed.reused == 2

    def test_records_bit_identical_to_direct_simulate(self, tmp_path, lut):
        """Differential: every measured field of every record, through
        the store round-trip, equals a direct simulate() call."""
        spec = small_campaign(
            axes={
                "num_banks": [2, 4],
                "policy": ["static", "probing"],
                "breakeven_override": [None, 50],
            }
        )
        run_campaign(spec, directory=tmp_path, lut=lut)
        # A *fresh* store: records come from disk, not from live objects.
        rerun = run_campaign(spec, store=CampaignStore(tmp_path), lut=lut)
        assert rerun.simulated == 0
        trace = spec.traces[0].build()
        for point in rerun:
            config = replace(spec.base, **point.parameters)
            direct = simulate(config, trace, lut)
            record = point.record
            assert record.hits == direct.cache_stats.hits
            assert record.misses == direct.cache_stats.misses
            assert record.flushes == direct.cache_stats.flushes
            assert record.updates_applied == direct.updates_applied
            assert record.flush_invalidations == direct.flush_invalidations
            assert record.bank_idleness == direct.bank_idleness
            assert record.bank_accesses == tuple(s.accesses for s in direct.bank_stats)
            assert record.bank_transitions == tuple(
                s.transitions for s in direct.bank_stats
            )
            assert record.energy_pj == direct.energy_pj
            assert record.baseline_energy_pj == direct.baseline_energy_pj
            assert record.energy_savings == direct.energy_savings
            assert record.lifetime_years == direct.lifetime_years
            assert record.bank_lifetimes_years == tuple(
                direct.lifetime.bank_lifetimes_years
            )
            assert record.hit_rate == direct.hit_rate
            rebuilt = record.to_result(lut)
            assert rebuilt.bank_stats == direct.bank_stats
            assert rebuilt.bank_energy == direct.bank_energy
            assert rebuilt.config == direct.config

    def test_parallel_matches_serial(self, tmp_path, lut):
        spec = small_campaign(axes={"num_banks": [2, 4], "policy": ["static", "probing"]})
        serial = run_campaign(spec, lut=lut)
        parallel = run_campaign(spec, directory=tmp_path, lut=lut, parallel=2)
        for a, b in zip(serial, parallel):
            assert a.parameters == b.parameters
            assert a.record.energy_pj == b.record.energy_pj
            assert a.record.lifetime_years == b.record.lifetime_years

    def test_manifest_written(self, tmp_path, lut):
        spec = small_campaign()
        run_campaign(spec, directory=tmp_path, lut=lut)
        with open(tmp_path / "campaign.json", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["spec_hash"] == spec.spec_hash()
        assert CampaignSpec.from_dict(manifest["spec"]) == spec


# ----------------------------------------------------------------------
# ExperimentRunner on the store
# ----------------------------------------------------------------------
class TestRunnerOnStore:
    @pytest.fixture()
    def settings(self):
        from repro.experiments.suite import ExperimentSettings

        return ExperimentSettings(num_windows=40, benchmarks=("sha",))

    def test_run_config_expresses_full_config(self, settings, lut):
        """The old positional run() could not express ways, update
        events or a custom technology; run_config can, and each keys
        its own cache entry."""
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(settings=settings, lut=lut)
        base = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16, ways=2),
            num_banks=4,
            policy="probing",
            update_events=(1000, 9000, 20000),
            technology=TechnologyParams(e_access_fixed=5.0),
        )
        a = runner.run_config("sha", base)
        assert runner.run_config("sha", base) is a
        variant = replace(base, technology=TechnologyParams(e_access_fixed=6.0))
        b = runner.run_config("sha", variant)
        assert b is not a
        assert b.energy_pj != a.energy_pj
        assert b.cache_stats.hits == a.cache_stats.hits  # tech can't move hits

    def test_positional_run_is_thin_wrapper(self, settings, lut):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(settings=settings, lut=lut)
        via_wrapper = runner.run("sha", 8 * 1024, 16, 4, "probing")
        via_config = runner.run_config(
            "sha", runner.config(8 * 1024, 16, 4, "probing")
        )
        assert via_wrapper is via_config

    def test_persistent_store_resumes_without_simulating(
        self, settings, lut, tmp_path, monkeypatch
    ):
        import repro.experiments.runner as runner_mod
        from repro.experiments.runner import ExperimentRunner

        first = ExperimentRunner(settings=settings, lut=lut, store=CampaignStore(tmp_path))
        a = first.run("sha", 8 * 1024, 16, 4, "probing")

        monkeypatch.setattr(
            runner_mod,
            "simulate",
            lambda *args, **kwargs: pytest.fail("resumed run must not simulate"),
        )
        second = ExperimentRunner(
            settings=settings, lut=lut, store=CampaignStore(tmp_path)
        )
        b = second.run("sha", 8 * 1024, 16, 4, "probing")
        assert b.bank_stats == a.bank_stats
        assert b.energy_pj == a.energy_pj
        assert b.lifetime_years == a.lifetime_years
        assert b.config == a.config

    def test_settings_participate_in_trace_identity(self, lut, tmp_path):
        """Different workload settings must never alias store entries."""
        from repro.experiments.runner import ExperimentRunner
        from repro.experiments.suite import ExperimentSettings

        store = CampaignStore(tmp_path)
        a = ExperimentRunner(
            settings=ExperimentSettings(num_windows=40, benchmarks=("sha",)),
            lut=lut,
            store=store,
        ).run("sha", 8 * 1024, 16, 4, "probing")
        b = ExperimentRunner(
            settings=ExperimentSettings(num_windows=60, benchmarks=("sha",)),
            lut=lut,
            store=store,
        ).run("sha", 8 * 1024, 16, 4, "probing")
        assert a.total_cycles != b.total_cycles
        assert len(store) == 2
