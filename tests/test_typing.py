"""Strict-typing gate over the typed core subset (see mypy.ini).

Skipped when mypy is not installed (the runtime image only needs
numpy); the CI lint job installs the ``[lint]`` extra and runs this as
a hard gate, alongside the direct ``mypy`` invocation.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

pytest.importorskip("mypy")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_typed_subset_passes_strict_mypy():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_py_typed_marker_ships():
    assert os.path.exists(os.path.join(REPO_ROOT, "src", "repro", "py.typed"))
