"""Tests for the Trace container and trace I/O."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.io import load_trace, save_trace
from repro.trace.trace import Trace


def simple_trace(**kwargs) -> Trace:
    return Trace(
        cycles=np.array([0, 5, 9, 20], dtype=np.int64),
        addresses=np.array([0x10, 0x20, 0x10, 0x400], dtype=np.int64),
        **kwargs,
    )


class TestTrace:
    def test_length_and_iteration(self):
        trace = simple_trace()
        assert len(trace) == 4
        assert list(trace) == [(0, 0x10), (5, 0x20), (9, 0x10), (20, 0x400)]

    def test_default_horizon(self):
        assert simple_trace().horizon == 21

    def test_explicit_horizon(self):
        assert simple_trace(horizon=100).horizon == 100

    def test_horizon_too_short_rejected(self):
        with pytest.raises(TraceError):
            simple_trace(horizon=10)

    def test_rejects_non_monotonic(self):
        with pytest.raises(TraceError):
            Trace(np.array([3, 3]), np.array([0, 0]))
        with pytest.raises(TraceError):
            Trace(np.array([3, 2]), np.array([0, 0]))

    def test_rejects_negative_values(self):
        with pytest.raises(TraceError):
            Trace(np.array([-1, 2]), np.array([0, 0]))
        with pytest.raises(TraceError):
            Trace(np.array([1, 2]), np.array([0, -4]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(TraceError):
            Trace(np.array([1, 2]), np.array([0]))

    def test_empty_trace(self):
        trace = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=10)
        assert len(trace) == 0
        assert trace.horizon == 10
        assert trace.access_density == 0.0

    def test_access_density(self):
        assert simple_trace(horizon=40).access_density == pytest.approx(0.1)

    def test_slice_keeps_absolute_cycles(self):
        trace = simple_trace()
        part = trace.slice(5, 10)
        assert list(part) == [(5, 0x20), (9, 0x10)]
        assert part.horizon == 10

    def test_slice_bounds_validated(self):
        with pytest.raises(TraceError):
            simple_trace().slice(5, 4)

    def test_slice_cannot_exceed_parent_horizon(self):
        trace = simple_trace()  # horizon 21
        with pytest.raises(TraceError):
            trace.slice(0, 22)
        # The full-horizon slice is the boundary case and stays legal.
        assert trace.slice(0, 21).horizon == 21

    def test_slice_of_empty_trace_bounded_by_horizon(self):
        empty = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=10)
        assert empty.slice(0, 10).horizon == 10
        with pytest.raises(TraceError):
            empty.slice(0, 11)

    def test_explicit_zero_horizon_on_empty_trace(self):
        empty = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=0)
        assert empty.horizon == 0
        assert empty.access_density == 0.0

    def test_none_horizon_derives(self):
        assert simple_trace(horizon=None).horizon == 21
        empty = Trace(np.empty(0, np.int64), np.empty(0, np.int64))
        assert empty.horizon == 0

    def test_negative_horizon_rejected(self):
        with pytest.raises(TraceError):
            Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=-1)

    def test_with_name(self):
        assert simple_trace().with_name("sha").name == "sha"

    def test_from_pairs(self):
        trace = Trace.from_pairs([(1, 0x10), (2, 0x20)], name="x")
        assert len(trace) == 2
        assert trace.name == "x"

    def test_from_pairs_empty(self):
        assert len(Trace.from_pairs([])) == 0


class TestTraceIO:
    def test_text_round_trip(self, tmp_path):
        trace = simple_trace(horizon=50, name="bench")
        path = tmp_path / "t.trc"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.cycles, trace.cycles)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.horizon == 50
        assert loaded.name == "bench"

    def test_binary_round_trip(self, tmp_path):
        trace = simple_trace(horizon=50, name="bench")
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.cycles, trace.cycles)
        assert loaded.name == "bench"
        assert loaded.horizon == 50

    def test_text_format_is_hex(self, tmp_path):
        path = tmp_path / "t.trc"
        save_trace(simple_trace(), path)
        body = path.read_text()
        assert "0x400" in body
        assert "# horizon: 21" in body

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("1 2 3\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("abc 0x10\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "ok.trc"
        path.write_text("# a comment\n\n3 0x10\n")
        trace = load_trace(path)
        assert list(trace) == [(3, 0x10)]

    def test_name_with_newline_round_trips(self, tmp_path):
        # Regression: an unescaped newline used to inject arbitrary
        # data/header lines into the text format.
        trace = simple_trace(name="evil\n999 0x10")
        path = tmp_path / "t.trc"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "evil\n999 0x10"
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.cycles, trace.cycles)

    def test_name_injection_cannot_forge_horizon(self, tmp_path):
        trace = simple_trace(name="x\n# horizon: 999999")
        path = tmp_path / "t.trc"
        save_trace(trace, path)
        assert load_trace(path).horizon == trace.horizon

    def test_name_with_leading_hash_and_whitespace(self, tmp_path):
        for name in ("#quoted", "  padded  ", "\ttabbed", '"jsonish"', "#"):
            trace = simple_trace(name=name)
            path = tmp_path / "t.trc"
            save_trace(trace, path)
            assert load_trace(path).name == name, repr(name)

    def test_benign_names_stay_verbatim_on_disk(self, tmp_path):
        # Pre-escaping files must keep reading back unchanged, so
        # benign names may not be rewritten into quoted form.
        path = tmp_path / "t.trc"
        save_trace(simple_trace(name="adpcm.dec run-2"), path)
        assert "# name: adpcm.dec run-2\n" in path.read_text()

    def test_legacy_unescaped_name_still_loads(self, tmp_path):
        path = tmp_path / "old.trc"
        path.write_text("# name: plain old name\n# horizon: 30\n3 0x10\n")
        assert load_trace(path).name == "plain old name"

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=40))
    def test_property_adversarial_names_round_trip(self, name):
        import tempfile

        trace = simple_trace(name=name)
        for suffix in (".trc", ".npz"):
            tmp = tempfile.NamedTemporaryFile(suffix=suffix, delete=False)
            tmp.close()
            try:
                save_trace(trace, tmp.name)
                loaded = load_trace(tmp.name)
            finally:
                import os

                os.unlink(tmp.name)
            assert loaded.name == name, (suffix, repr(name))
            assert np.array_equal(loaded.cycles, trace.cycles)
            assert loaded.horizon == trace.horizon

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=100), max_size=50))
    def test_property_round_trip_any_trace(self, gaps):
        import tempfile
        cycles = np.cumsum(np.asarray(gaps, dtype=np.int64)) if gaps else np.empty(0, np.int64)
        addresses = np.arange(len(gaps), dtype=np.int64) * 16
        trace = Trace(cycles, addresses, horizon=int(cycles[-1]) + 5 if gaps else 7)
        tmp = tempfile.NamedTemporaryFile(suffix=".trc", delete=False)
        tmp.close()
        path = tmp.name
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.cycles, trace.cycles)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.horizon == trace.horizon
