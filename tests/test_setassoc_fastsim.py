"""Differential tests for the set-associative fast-engine path.

The fast engine's LRU lockstep simulation must agree *exactly* with the
event-by-event reference engine (which walks the behavioral
:class:`~repro.cache.banked.BankedCache` /
:class:`~repro.cache.setassoc.SetAssociativeCache` models) on every
measured field — hits, misses, flushes, invalidations, per-bank
idleness, energy and lifetime — across associativities, policies and
bank counts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import AccessOutcome
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.simulator import ReferenceSimulator, simulate
from repro.trace.trace import Trace
from tests.conftest import make_random_trace
from tests.test_engines import assert_results_equal, run_both

WAYS = [2, 4, 8]


class TestGroupedLRUKernel:
    """The vectorized kernel against the functional LRU model."""

    def hits_and_lines_by_model(self, geometry, index, tag):
        cache = SetAssociativeCache(geometry)
        hits = 0
        for i, t in zip(index.tolist(), tag.tolist()):
            address = geometry.address_for(t, i)
            hits += cache.access(address) is AccessOutcome.HIT
        return hits, cache.valid_lines

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert FastSimulator._epoch_hits_lru(empty, empty, 4) == (0, 0)

    def test_fills_ways_before_evicting(self):
        index = np.zeros(4, dtype=np.int64)
        tag = np.array([1, 2, 1, 2], dtype=np.int64)
        # The direct-mapped kernel thrashes here; 2-way absorbs it.
        assert FastSimulator._epoch_hits_lru(index, tag, 2) == (2, 2)
        assert FastSimulator._epoch_hits(index, tag) == (0, 1)

    def test_lru_victim_selection(self):
        index = np.zeros(5, dtype=np.int64)
        tag = np.array([1, 2, 3, 1, 2], dtype=np.int64)
        # 2-way: tag 3 evicts 1; the re-access of 1 evicts 2 -> all miss
        # except... none hit until the final 2? 1,2 miss; 3 evicts 1;
        # 1 evicts 2; 2 evicts 3 -> zero hits, 2 surviving lines.
        assert FastSimulator._epoch_hits_lru(index, tag, 2) == (0, 2)
        # 4-way keeps all three tags resident: the two re-accesses hit.
        assert FastSimulator._epoch_hits_lru(index, tag, 4) == (2, 3)

    def test_hit_refreshes_recency(self):
        index = np.zeros(5, dtype=np.int64)
        tag = np.array([1, 2, 1, 3, 1], dtype=np.int64)
        # The hit on 1 makes 2 the LRU victim for 3, so 1 hits again.
        assert FastSimulator._epoch_hits_lru(index, tag, 2) == (2, 2)

    @settings(max_examples=60, deadline=None)
    @given(
        ways=st.sampled_from(WAYS),
        data=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 5)), max_size=300
        ),
    )
    def test_property_matches_functional_model(self, ways, data):
        geometry = CacheGeometry(16 * ways * 16, 16, ways=ways)
        if data:
            index = np.array([i for i, _ in data], dtype=np.int64)
            tag = np.array([t for _, t in data], dtype=np.int64)
        else:
            index = tag = np.empty(0, dtype=np.int64)
        expected = self.hits_and_lines_by_model(geometry, index, tag)
        assert FastSimulator._epoch_hits_lru(index, tag, ways) == expected

    def test_grouped_keys_isolate_groups(self):
        """Identical tag streams under different keys never share LRU
        state (the engine relies on this to fuse epochs)."""
        keys = np.array([0, 1, 0, 1], dtype=np.int64)
        tag = np.array([7, 7, 7, 7], dtype=np.int64)
        hits, lines, group_keys = FastSimulator._grouped_lru(keys, tag, 2)
        assert hits == 2
        assert lines.tolist() == [1, 1]
        assert group_keys.tolist() == [0, 1]


class TestSetAssociativeEngineEquivalence:
    @pytest.mark.parametrize("ways", WAYS)
    @pytest.mark.parametrize("policy", ["static", "probing", "scrambling"])
    def test_ways_and_policies(self, ways, policy, lut):
        trace = make_random_trace(seed=ways * 13 + len(policy))
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16, ways=ways),
            num_banks=4,
            policy=policy,
            update_period_cycles=7000 if policy != "static" else None,
        )
        assert_results_equal(*run_both(config, trace, lut))

    @pytest.mark.parametrize("banks", [2, 8])
    def test_bank_counts(self, banks, lut):
        trace = make_random_trace(seed=banks)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16, ways=2),
            num_banks=banks,
            policy="probing",
            update_period_cycles=5000,
        )
        assert_results_equal(*run_both(config, trace, lut))

    def test_unmanaged(self, lut):
        trace = make_random_trace(seed=9)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16, ways=4), num_banks=4, power_managed=False
        )
        assert_results_equal(*run_both(config, trace, lut))

    def test_empty_trace(self, lut):
        trace = Trace(np.empty(0, np.int64), np.empty(0, np.int64), horizon=1000)
        config = ArchitectureConfig(CacheGeometry(8 * 1024, 16, ways=4), num_banks=4)
        assert_results_equal(*run_both(config, trace, lut))

    def test_updates_between_accesses(self, lut):
        """Multiple boundary flushes draining between two accesses must
        invalidate the same line counts in both engines."""
        cycles = np.array([0, 1, 2, 30_000, 30_001], dtype=np.int64)
        addresses = np.array([0x000, 0x800, 0x000, 0x000, 0x800], dtype=np.int64)
        trace = Trace(cycles, addresses)
        config = ArchitectureConfig(
            CacheGeometry(1024, 16, ways=2),
            num_banks=2,
            policy="probing",
            update_period_cycles=1000,
        )
        reference, fast = run_both(config, trace, lut)
        assert_results_equal(reference, fast)
        assert reference.updates_applied == 30

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_property_random_traces(self, lut, seed):
        trace = make_random_trace(seed=seed, length=600)
        config = ArchitectureConfig(
            CacheGeometry(4 * 1024, 16, ways=4),
            num_banks=4,
            policy="scrambling",
            update_period_cycles=3000,
        )
        assert_results_equal(*run_both(config, trace, lut))

    def test_auto_engine_uses_fast_path(self, lut):
        """simulate's auto engine must produce the fast engine's exact
        result object fields on a set-associative config."""
        trace = make_random_trace(seed=3, length=400)
        config = ArchitectureConfig(
            CacheGeometry(8 * 1024, 16, ways=2),
            num_banks=4,
            policy="probing",
            update_period_cycles=5000,
        )
        auto = simulate(config, trace, lut)
        reference = ReferenceSimulator(config, lut).run(trace)
        assert_results_equal(reference, auto)
