"""Tests for indexing policies, update scheduling and uniformity analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.lfsr import GaloisLFSR
from repro.indexing.analysis import (
    mapping_histogram,
    rng_repetition_error,
    uniformity_error,
)
from repro.indexing.policies import (
    POLICY_NAMES,
    ProbingPolicy,
    ScramblingPolicy,
    StaticPolicy,
    make_policy,
)
from repro.indexing.update import UpdateSchedule


class TestFactories:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, 4)
            assert policy.name == name
            assert policy.num_banks == 4

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="probing"):
            make_policy("random", 4)


class TestStaticPolicy:
    def test_identity_forever(self):
        policy = StaticPolicy(8)
        for _ in range(5):
            assert np.array_equal(policy.mapping(), np.arange(8))
            policy.update()


class TestProbingPolicy:
    def test_mapping_vector_matches_scalar(self):
        policy = ProbingPolicy(8)
        for _ in range(11):
            mapping = policy.mapping()
            for bank in range(8):
                assert mapping[bank] == policy.physical_bank(bank)
            policy.update()

    def test_uniform_after_multiples_of_m(self):
        """The paper's optimality claim: perfectly uniform coverage once
        the number of epochs is a multiple of M."""
        for m in (2, 4, 8):
            policy = ProbingPolicy(m)
            hist = mapping_histogram(policy, num_updates=3 * m - 1)  # 3M epochs
            assert uniformity_error(hist) == 0.0

    def test_not_uniform_before_m_epochs(self):
        policy = ProbingPolicy(4)
        hist = mapping_histogram(policy, num_updates=1)
        assert uniformity_error(hist) > 0.0

    def test_updates_counted(self):
        policy = ProbingPolicy(4)
        policy.update()
        policy.update()
        assert policy.updates_applied == 2


class TestScramblingPolicy:
    def test_mapping_vector_matches_scalar(self):
        policy = ScramblingPolicy(8)
        for _ in range(11):
            mapping = policy.mapping()
            for bank in range(8):
                assert mapping[bank] == policy.physical_bank(bank)
            policy.update()

    def test_mapping_is_permutation_every_epoch(self):
        policy = ScramblingPolicy(16)
        for _ in range(40):
            assert sorted(policy.mapping().tolist()) == list(range(16))
            policy.update()

    def test_asymptotic_uniformity(self):
        """Scrambling approaches uniformity as updates accumulate
        (Section IV-B2)."""
        few = uniformity_error(mapping_histogram(ScramblingPolicy(4), 16))
        many = uniformity_error(mapping_histogram(ScramblingPolicy(4), 4096))
        assert many < few
        assert many < 0.1

    def test_deterministic(self):
        a = ScramblingPolicy(4, seed=123)
        b = ScramblingPolicy(4, seed=123)
        for _ in range(20):
            a.update()
            b.update()
            assert np.array_equal(a.mapping(), b.mapping())


class TestUpdateSchedule:
    def test_disabled(self):
        schedule = UpdateSchedule(None)
        assert not schedule.due(10**9)
        assert schedule.updates_before(10**9) == 0

    def test_fires_once_per_period(self):
        schedule = UpdateSchedule(100)
        fired = [cycle for cycle in range(0, 500, 10) if schedule.due(cycle)]
        assert fired == [100, 200, 300, 400]

    def test_drains_overdue_one_at_a_time(self):
        schedule = UpdateSchedule(100)
        fires = 0
        while schedule.due(1000):
            fires += 1
        assert fires == 10

    def test_updates_before(self):
        schedule = UpdateSchedule(100)
        assert schedule.updates_before(100) == 0
        assert schedule.updates_before(101) == 1
        assert schedule.updates_before(1001) == 10

    def test_custom_offset(self):
        schedule = UpdateSchedule(100, offset_cycles=5)
        assert schedule.due(5)
        assert not schedule.due(10)
        assert schedule.due(105)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            UpdateSchedule(0)

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=5000))
    def test_property_updates_before_matches_due(self, period, horizon):
        counting = UpdateSchedule(period)
        fired = 0
        for cycle in range(horizon):
            while counting.due(cycle):
                fired += 1
        assert fired == UpdateSchedule(period).updates_before(horizon)


class TestAnalysis:
    def test_histogram_shape_and_total(self):
        hist = mapping_histogram(ProbingPolicy(4), 7)
        assert hist.shape == (4, 4)
        assert hist.sum() == 4 * 8  # M banks x (updates+1) epochs

    def test_uniformity_error_rejects_ragged(self):
        with pytest.raises(ConfigurationError):
            uniformity_error(np.array([[1, 2], [1, 1]]))

    def test_rng_error_ideal(self):
        words = np.tile(np.arange(4), 100)
        assert rng_repetition_error(words, 4) == 0.0

    def test_rng_error_decays_like_inverse_sqrt(self):
        """The paper: 'the error in reshaping is inversely proportional
        to sqrt(N)' for a uniform RNG. Check the LFSR follows the trend
        within a generous factor."""
        lfsr = GaloisLFSR(16, seed=0xACE1)
        words = np.array([lfsr.step() & 0x3 for _ in range(65535)])
        errors = {n: rng_repetition_error(words[:n], 4) for n in (256, 4096, 65535)}
        assert errors[4096] < errors[256]
        assert errors[65535] < errors[4096]

    def test_rng_error_validates(self):
        with pytest.raises(ConfigurationError):
            rng_repetition_error(np.array([5]), 4)
        with pytest.raises(ConfigurationError):
            rng_repetition_error(np.array([1]), 0)
