"""Tests for the campaign service layer (PR 8).

Covers the four layers of ``repro.campaign.service``: the sharded store
layout and its in-place flat-store migration, the SQLite index (file-free
queries, rebuild after deletion/corruption), the claim-based work queue
(lease exclusivity, TTL expiry after a killed worker, zero
double-simulations across concurrent processes — asserted from the
commit logs), and the stdlib HTTP front-end with its thin client.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    campaign_status,
    point_hash,
    run_campaign,
    status_payload,
)
from repro.campaign.codec import short_hash
from repro.campaign.service.client import ServiceClient
from repro.campaign.service.index import INDEX_FILENAME
from repro.campaign.service.queue import WorkQueue, drain_campaign
from repro.campaign.service.server import CampaignServer
from repro.campaign.store import RESULTS_DIRNAME
from repro.campaign.tracespec import TraceSpec
from repro.cache.geometry import CacheGeometry
from repro.cli import main
from repro.core.config import ArchitectureConfig
from repro.errors import ConfigurationError, ServiceError

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_campaign import small_campaign  # noqa: E402  (shared spec helper)


def drain_dir(spec: CampaignSpec, directory) -> None:
    run_campaign(spec, directory)


def legacy_path(directory, key) -> str:
    name = f"{short_hash(key[0])}-{short_hash(key[1])}.json"
    return os.path.join(os.fspath(directory), RESULTS_DIRNAME, name)


def shard_path(directory, key) -> str:
    digest = point_hash(key)
    return os.path.join(
        os.fspath(directory), RESULTS_DIRNAME, digest[:2], f"{digest[2:]}.json"
    )


def flatten_store(directory) -> list[tuple[str, str]]:
    """Rewrite a sharded store into the PR-3 flat layout (for tests)."""
    store = CampaignStore(directory)
    keys = list(store.keys())
    for key in keys:
        os.replace(shard_path(directory, key), legacy_path(directory, key))
    for entry in os.listdir(os.path.join(os.fspath(directory), RESULTS_DIRNAME)):
        path = os.path.join(os.fspath(directory), RESULTS_DIRNAME, entry)
        if os.path.isdir(path):
            os.rmdir(path)
    index_path = os.path.join(os.fspath(directory), INDEX_FILENAME)
    if os.path.exists(index_path):
        os.unlink(index_path)
    return keys


def read_commit_log(directory) -> list[tuple[str, str, str]]:
    """(trace_hash, config_hash, worker) per committed simulation."""
    log_dir = os.path.join(os.fspath(directory), "queue-log")
    commits = []
    if not os.path.isdir(log_dir):
        return commits
    for name in sorted(os.listdir(log_dir)):
        with open(os.path.join(log_dir, name), "r", encoding="utf-8") as handle:
            for line in handle:
                entry = json.loads(line)
                commits.append(
                    (entry["trace_hash"], entry["config_hash"], entry["worker"])
                )
    return commits


# ----------------------------------------------------------------------
# Sharded layout + migration
# ----------------------------------------------------------------------
class TestShardedLayout:
    def test_put_writes_sharded_files(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        store = CampaignStore(tmp_path)
        for point in spec.points():
            key = point.key()
            path = shard_path(tmp_path, key)
            assert os.path.isfile(path), "record must land at its shard path"
            assert len(os.path.basename(os.path.dirname(path))) == 2
            assert store.get_record(key) is not None

    def test_reads_flat_layout_transparently(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        keys = flatten_store(tmp_path)
        store = CampaignStore(tmp_path)
        assert len(store) == len(keys)
        for key in keys:
            assert key in store
            assert store.get_record(key) is not None
        assert campaign_status(spec, store).missing == 0

    def test_put_supersedes_flat_file(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        keys = flatten_store(tmp_path)
        # Re-running against the flat store rewrites nothing (all
        # points are found), so force one rewrite via put().
        store = CampaignStore(tmp_path)
        result = store.get_result(keys[0])
        store.put(keys[0], result)
        assert os.path.isfile(shard_path(tmp_path, keys[0]))
        assert not os.path.exists(legacy_path(tmp_path, keys[0]))
        assert keys[0] in CampaignStore(tmp_path)

    def test_migrate_is_byte_identical_and_idempotent(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        keys = flatten_store(tmp_path)
        flat_bytes = {
            key: open(legacy_path(tmp_path, key), "rb").read() for key in keys
        }
        store = CampaignStore(tmp_path)
        assert store.migrate() == len(keys)
        for key in keys:
            assert not os.path.exists(legacy_path(tmp_path, key))
            with open(shard_path(tmp_path, key), "rb") as handle:
                assert handle.read() == flat_bytes[key], "migration moves bytes"
        # Records round-trip identically after migration.
        migrated = CampaignStore(tmp_path)
        assert campaign_status(spec, migrated).missing == 0
        assert set(migrated.keys()) == set(keys)
        assert len(migrated.records()) == len(keys)
        # A second migrate finds nothing flat to move.
        assert CampaignStore(tmp_path).migrate() == 0

    def test_migrate_resumes_after_interruption(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        keys = flatten_store(tmp_path)
        # "Interrupted" migration: one record already moved by hand.
        first = keys[0]
        os.makedirs(os.path.dirname(shard_path(tmp_path, first)), exist_ok=True)
        os.replace(legacy_path(tmp_path, first), shard_path(tmp_path, first))
        store = CampaignStore(tmp_path)
        assert store.migrate() == len(keys) - 1
        assert campaign_status(spec, CampaignStore(tmp_path)).missing == 0

    def test_cli_migrate(self, tmp_path, capsys):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        keys = flatten_store(tmp_path)
        assert main(["campaign", "migrate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"migrated {len(keys)} records" in out
        for key in keys:
            assert os.path.isfile(shard_path(tmp_path, key))


# ----------------------------------------------------------------------
# Lazy open + file-free status
# ----------------------------------------------------------------------
class TestLazyStore:
    def test_membership_and_status_open_no_files(self, tmp_path, monkeypatch):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        CampaignStore(tmp_path).rebuild_index()
        # From here on, reading any record file is an error: status,
        # membership and counting must run purely on paths + index.
        import repro.campaign.store as store_module

        def _forbidden(path):
            raise AssertionError(f"record file opened: {path}")

        monkeypatch.setattr(store_module, "read_record_file", _forbidden)
        store = CampaignStore(tmp_path)
        status = campaign_status(spec, store)
        assert status.missing == 0
        assert len(store) == status.total
        payload = status_payload(spec, store)
        assert payload["done"] == status.total
        assert store.where(num_banks=2)  # index-served, no JSON opened

    def test_open_missing_directory_creates_nothing(self, tmp_path):
        missing = tmp_path / "nope.d"
        store = CampaignStore(missing)
        assert len(store) == 0
        assert list(store.keys()) == []
        assert store.where(num_banks=2) == []
        assert not missing.exists()


# ----------------------------------------------------------------------
# SQLite index
# ----------------------------------------------------------------------
class TestIndex:
    def test_where_and_best(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        store = CampaignStore(tmp_path)
        rows = store.where(num_banks=4)
        assert len(rows) == 1 and rows[0]["num_banks"] == 4
        assert store.where(num_banks=32) == []
        best = store.best("hit_rate")
        worst = store.best("hit_rate", minimize=True)
        assert best["hit_rate"] >= worst["hit_rate"]
        assert {row["num_banks"] for row in store.where()} == {2, 4}

    def test_memory_store_where_matches_disk(self, tmp_path):
        spec = small_campaign()
        disk = CampaignStore(tmp_path)
        run_campaign(spec, store=disk)
        memory = CampaignStore()
        run_campaign(spec, store=memory)
        for filters in ({}, {"num_banks": 2}, {"num_banks": 32}):
            disk_rows = {
                (r["trace_hash"], r["config_hash"]) for r in disk.where(**filters)
            }
            memory_rows = {
                (r["trace_hash"], r["config_hash"]) for r in memory.where(**filters)
            }
            assert disk_rows == memory_rows
        assert (
            disk.best("hit_rate")["config_hash"]
            == memory.best("hit_rate")["config_hash"]
        )

    def test_unknown_column_is_rejected(self, tmp_path):
        drain_dir(small_campaign(), tmp_path)
        store = CampaignStore(tmp_path)
        with pytest.raises(ServiceError, match="unknown index column"):
            store.where(banksz=2)
        with pytest.raises(ServiceError, match="unknown index column"):
            store.best("hit_rate; DROP TABLE records")

    def test_rebuild_after_deleting_index_db(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        store = CampaignStore(tmp_path)
        before = store.where()
        index_path = os.path.join(str(tmp_path), INDEX_FILENAME)
        assert os.path.exists(index_path)
        os.unlink(index_path)
        fresh = CampaignStore(tmp_path)
        assert fresh.where() == before, "index must rebuild from the files"
        assert os.path.exists(index_path)

    def test_rebuild_after_corrupting_index_db(self, tmp_path):
        spec = small_campaign()
        drain_dir(spec, tmp_path)
        index_path = os.path.join(str(tmp_path), INDEX_FILENAME)
        with open(index_path, "wb") as handle:
            handle.write(b"this is not a database")
        store = CampaignStore(tmp_path)
        assert len(store.where()) == len(list(store.keys()))
        assert campaign_status(spec, store).missing == 0


# ----------------------------------------------------------------------
# Work queue: leases
# ----------------------------------------------------------------------
KEY = ("t" * 64, "c" * 64)


class TestWorkQueue:
    def test_claims_are_exclusive(self, tmp_path):
        with WorkQueue(tmp_path, worker_id="a") as qa, WorkQueue(
            tmp_path, worker_id="b"
        ) as qb:
            assert qa.try_claim(KEY)
            assert not qb.try_claim(KEY)
            qa.release(KEY)
            assert qb.try_claim(KEY)

    def test_release_is_scoped_to_the_holder(self, tmp_path):
        with WorkQueue(tmp_path, worker_id="a") as qa, WorkQueue(
            tmp_path, worker_id="b"
        ) as qb:
            assert qa.try_claim(KEY)
            qb.release(KEY)  # not b's claim: must be a no-op
            assert not qb.try_claim(KEY)

    def test_fresh_lease_is_not_stolen(self, tmp_path):
        with WorkQueue(tmp_path, worker_id="a", lease_ttl=60.0) as qa, WorkQueue(
            tmp_path, worker_id="b", lease_ttl=60.0
        ) as qb:
            assert qa.try_claim(KEY)
            assert not qb.try_claim(KEY)

    def test_expired_lease_is_stolen(self, tmp_path):
        qa = WorkQueue(tmp_path, worker_id="a", lease_ttl=5.0)
        assert qa.try_claim(KEY)
        # Simulate a dead worker: stop the heartbeat without releasing,
        # then age the claim past its TTL.
        qa._stop.set()
        qa._heartbeat.join(timeout=5.0)
        path = qa._claim_path(KEY)
        os.utime(path, (1, 1))
        with WorkQueue(tmp_path, worker_id="b", lease_ttl=5.0) as qb:
            assert qb.try_claim(KEY), "an expired lease must be reclaimable"

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        with WorkQueue(tmp_path, worker_id="a", lease_ttl=0.4) as qa:
            assert qa.try_claim(KEY)
            path = qa._claim_path(KEY)
            before = os.stat(path).st_mtime
            time.sleep(0.6)  # > TTL: without heartbeats this would expire
            with WorkQueue(tmp_path, worker_id="b", lease_ttl=0.4) as qb:
                assert not qb.try_claim(KEY)
            assert os.stat(path).st_mtime > before


# ----------------------------------------------------------------------
# Work queue: draining campaigns
# ----------------------------------------------------------------------
class TestDrain:
    def test_workers_pool_drains_without_duplicates(self, tmp_path):
        spec = small_campaign()
        result = run_campaign(spec, tmp_path, workers=2)
        assert result.simulated == len(result)
        assert campaign_status(spec, CampaignStore(tmp_path)).missing == 0
        commits = read_commit_log(tmp_path)
        keys = [commit[:2] for commit in commits]
        assert sorted(keys) == sorted(set(keys)), "a point simulated twice"
        assert len(keys) == len(result)

    def test_rerun_simulates_zero(self, tmp_path):
        spec = small_campaign()
        run_campaign(spec, tmp_path, workers=2)
        again = run_campaign(spec, tmp_path, workers=2)
        assert again.simulated == 0
        assert again.reused == len(again)

    def test_workers_require_directory(self):
        with pytest.raises(ConfigurationError, match="directory-backed"):
            run_campaign(small_campaign(), workers=1)

    def test_streaming_traces_drain_through_the_queue(self, tmp_path):
        streaming = CampaignSpec(
            name="stream",
            traces=(
                TraceSpec.synthetic("sha", num_windows=40, chunk_cycles=4096),
            ),
            base=ArchitectureConfig(
                CacheGeometry(8 * 1024, 16),
                num_banks=4,
                policy="probing",
                update_period_cycles=5120,
            ),
            axes={"num_banks": [2, 4]},
            engine="auto",
        )
        result = run_campaign(streaming, tmp_path, workers=2)
        assert result.simulated == len(result) == 2
        commits = read_commit_log(tmp_path)
        keys = [commit[:2] for commit in commits]
        assert sorted(keys) == sorted(set(keys))
        assert run_campaign(streaming, tmp_path, workers=2).simulated == 0

    def test_concurrent_cli_drains_share_one_campaign(self, tmp_path):
        """Two independent CLI processes drain one directory: together
        they simulate each point exactly once (the acceptance claim)."""
        spec = small_campaign(axes={"num_banks": [2, 4], "breakeven_override": [20, 80]})
        spec_file = tmp_path / "spec.json"
        spec.save(spec_file)
        directory = tmp_path / "campaign.d"
        env = dict(os.environ, PYTHONPATH="src")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "run",
            str(spec_file),
            "--dir",
            str(directory),
            "--workers",
            "1",
        ]
        procs = [
            subprocess.Popen(argv, cwd=os.path.dirname(os.path.dirname(__file__)),
                             env=env, stdout=subprocess.PIPE, text=True)
            for _ in range(2)
        ]
        outputs = [proc.communicate()[0] for proc in procs]
        assert all(proc.returncode == 0 for proc in procs), outputs
        store = CampaignStore(directory)
        assert campaign_status(spec, store).missing == 0
        commits = read_commit_log(directory)
        keys = [commit[:2] for commit in commits]
        assert sorted(keys) == sorted(set(keys)), "zero double-simulations"
        assert len(keys) == len(spec.combos())
        assert len({commit[2] for commit in commits}) >= 1

    def test_killed_worker_lease_is_reclaimed(self, tmp_path):
        """A worker dying mid-claim must not wedge the campaign: its
        lease expires and another worker finishes the point."""
        spec = small_campaign()
        spec_file = tmp_path / "spec.json"
        spec.save(spec_file)
        directory = tmp_path / "campaign.d"
        key = next(iter(spec.points())).key()
        # A separate process claims one point, then dies without
        # releasing (no heartbeat survives it).
        script = (
            "import json, os, sys\n"
            "from repro.campaign import CampaignSpec\n"
            "from repro.campaign.service.queue import WorkQueue\n"
            "spec = CampaignSpec.load(sys.argv[1])\n"
            "queue = WorkQueue(sys.argv[2], worker_id='doomed', lease_ttl=600.0)\n"
            "assert queue.try_claim(next(iter(spec.points())).key())\n"
            "os._exit(9)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(spec_file), str(directory)],
            cwd=os.path.dirname(os.path.dirname(__file__)),
            env=env,
        )
        assert proc.returncode == 9
        claim_dir = os.path.join(str(directory), "claims")
        (claim_name,) = os.listdir(claim_dir)
        claim_path = os.path.join(claim_dir, claim_name)
        # The lease is orphaned; age it past any TTL the drain uses.
        os.utime(claim_path, (1, 1))
        result = run_campaign(spec, directory, workers=1)
        assert result.simulated == len(result)
        assert key in CampaignStore(directory)

    def test_two_processes_put_into_one_store(self, tmp_path):
        """Concurrent put() from separate processes: both records land,
        files and index agree."""
        spec = small_campaign()
        script = (
            "import sys\n"
            "from repro.campaign import CampaignSpec, CampaignStore\n"
            "from repro.campaign.tracespec import TraceSpec\n"
            "from repro.core.simulator import simulate\n"
            "from repro.campaign.codec import config_result_hash\n"
            "spec = CampaignSpec.load(sys.argv[1])\n"
            "point = list(spec.points())[int(sys.argv[3])]\n"
            "trace = spec.traces[0].build()\n"
            "result = simulate(point.config, trace)\n"
            "store = CampaignStore(sys.argv[2])\n"
            "store.put(point.key(), result)\n"
        )
        spec_file = tmp_path / "spec.json"
        spec.save(spec_file)
        directory = tmp_path / "store.d"
        env = dict(os.environ, PYTHONPATH="src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(spec_file), str(directory), str(i)],
                cwd=os.path.dirname(os.path.dirname(__file__)),
                env=env,
            )
            for i in range(2)
        ]
        for proc in procs:
            assert proc.wait() == 0
        store = CampaignStore(directory)
        assert len(store) == 2
        assert len(store.where()) == 2
        for point in spec.points():
            assert point.key() in store
            assert store.get_record(point.key()) is not None


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
@pytest.fixture()
def server(tmp_path):
    instance = CampaignServer(tmp_path / "served.d", port=0, workers=2)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()


class TestHTTPService:
    def test_submit_drain_and_query(self, server):
        spec = small_campaign()
        client = ServiceClient(server.url)
        empty = client.status()
        assert empty["records"] == 0 and empty["specs"] == []
        response = client.submit(spec.to_dict())
        entry = client.wait_drained(response["spec_hash"], timeout=120.0)
        assert entry["missing"] == 0 and entry["total"] == len(spec.combos())
        status = client.status()
        assert status["records"] == len(spec.combos())
        assert [s["spec_hash"] for s in status["specs"]] == [response["spec_hash"]]
        records = client.records(num_banks=4)
        assert records["count"] == 1
        assert records["records"][0]["num_banks"] == 4
        limited = client.records(limit=1)
        assert limited["count"] == 1
        metrics = client.metrics()
        assert metrics["records"] == len(spec.combos())
        assert metrics["metrics"]["hit_rate"]["count"] == len(spec.combos())
        assert (
            metrics["metrics"]["hit_rate"]["max"]
            >= metrics["metrics"]["hit_rate"]["min"]
        )

    def test_resubmission_simulates_nothing(self, server, tmp_path):
        spec = small_campaign()
        client = ServiceClient(server.url)
        spec_hash = client.submit(spec.to_dict())["spec_hash"]
        client.wait_drained(spec_hash, timeout=120.0)
        # Drain the same spec again: the store already covers it.
        client.submit(spec.to_dict())
        client.wait_drained(spec_hash, timeout=120.0)
        server.service.wait_idle()
        commits = read_commit_log(tmp_path / "served.d")
        keys = [commit[:2] for commit in commits]
        assert sorted(keys) == sorted(set(keys))

    def test_error_paths(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError, match="invalid campaign spec"):
            client.submit({"surprise": True})
        with pytest.raises(ServiceError, match="unknown index column"):
            client.records(nope=1)
        with pytest.raises(ServiceError, match="unknown path"):
            client._request("GET", "/teapot")

    def test_cli_submit_wait(self, server, tmp_path, capsys):
        spec = small_campaign()
        spec_file = tmp_path / "spec.json"
        spec.save(spec_file)
        assert main(
            [
                "campaign",
                "submit",
                str(spec_file),
                "--url",
                server.url,
                "--wait",
                "--timeout",
                "120",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["missing"] == 0
        assert payload["total"] == len(spec.combos())


# ----------------------------------------------------------------------
# CLI status --json
# ----------------------------------------------------------------------
class TestStatusJSON:
    def test_status_json_payload(self, tmp_path, capsys):
        spec = small_campaign()
        spec_file = tmp_path / "spec.json"
        spec.save(spec_file)
        directory = tmp_path / "campaign.d"
        assert main(
            ["campaign", "status", str(spec_file), "--dir", str(directory), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {
            "name": "t",
            "spec_hash": spec.spec_hash(),
            "total": 2,
            "done": 0,
            "estimated": 0,
            "missing": 2,
            "traces": 1,
            "points_per_trace": 2,
            "strategy": "exhaustive",
        }
        drain_dir(spec, directory)
        assert main(
            ["campaign", "status", str(spec_file), "--dir", str(directory), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == 2 and payload["missing"] == 0

    def test_status_json_matches_server_payload(self, tmp_path):
        spec = small_campaign()
        directory = tmp_path / "campaign.d"
        drain_dir(spec, directory)
        store = CampaignStore(directory)
        assert status_payload(spec, store)["spec_hash"] == spec.spec_hash()
