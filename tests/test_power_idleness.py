"""Tests for idleness accounting and the Block Control unit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.power.controller import BlockControl
from repro.power.idleness import (
    BankIdleStats,
    IdlenessAccountant,
    stats_from_access_cycles,
)


class TestAccountantBasics:
    def test_no_accesses_whole_run_is_one_gap(self):
        accountant = IdlenessAccountant(1, breakeven=10)
        (stats,) = accountant.finalize(100)
        assert stats.idle_intervals == 1
        assert stats.idle_cycles == 100
        assert stats.sleep_cycles == 90
        assert stats.useful_idleness == pytest.approx(0.9)

    def test_gap_equal_to_breakeven_earns_no_sleep(self):
        """The paper's rule is strictly 'greater than the breakeven'."""
        accountant = IdlenessAccountant(1, breakeven=10)
        accountant.on_access(0, 0)
        accountant.on_access(0, 11)  # gap of exactly 10 idle cycles
        (stats,) = accountant.finalize(12)
        assert stats.sleep_cycles == 0
        assert stats.useful_intervals == 0
        assert stats.idle_cycles == 10

    def test_gap_above_breakeven_sleeps_remainder(self):
        accountant = IdlenessAccountant(1, breakeven=10)
        accountant.on_access(0, 0)
        accountant.on_access(0, 61)  # gap of 60
        (stats,) = accountant.finalize(62)
        assert stats.sleep_cycles == 50
        assert stats.transitions == 1

    def test_back_to_back_accesses_no_idle(self):
        accountant = IdlenessAccountant(1, breakeven=5)
        for cycle in range(20):
            accountant.on_access(0, cycle)
        (stats,) = accountant.finalize(20)
        assert stats.idle_cycles == 0
        assert stats.accesses == 20

    def test_wake_detection(self):
        accountant = IdlenessAccountant(1, breakeven=5)
        accountant.on_access(0, 0)
        assert not accountant.on_access(0, 3)
        assert accountant.on_access(0, 50)

    def test_rejects_non_monotonic(self):
        accountant = IdlenessAccountant(1, breakeven=5)
        accountant.on_access(0, 10)
        with pytest.raises(SimulationError):
            accountant.on_access(0, 10)

    def test_rejects_double_finalize(self):
        accountant = IdlenessAccountant(1, breakeven=5)
        accountant.finalize(10)
        with pytest.raises(SimulationError):
            accountant.finalize(10)

    def test_per_bank_independence(self):
        accountant = IdlenessAccountant(2, breakeven=5)
        accountant.on_access(0, 0)
        accountant.on_access(0, 99)
        stats = accountant.finalize(100)
        assert stats[0].accesses == 2
        assert stats[1].accesses == 0
        assert stats[1].sleep_cycles == 95


class TestVectorizedEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=300), max_size=60),
        st.integers(min_value=1, max_value=50),
    )
    def test_property_matches_accountant(self, gaps, breakeven):
        cycles = np.cumsum(np.asarray(gaps, dtype=np.int64)) if gaps else np.empty(0, np.int64)
        horizon = int(cycles[-1]) + 17 if gaps else 50
        accountant = IdlenessAccountant(1, breakeven)
        for cycle in cycles:
            accountant.on_access(0, int(cycle))
        (expected,) = accountant.finalize(horizon)
        measured = stats_from_access_cycles(cycles, breakeven, 0, horizon)
        assert measured == expected

    def test_rejects_unsorted(self):
        with pytest.raises(SimulationError):
            stats_from_access_cycles(np.array([5, 4]), 3, 0, 10)

    def test_rejects_out_of_window(self):
        with pytest.raises(SimulationError):
            stats_from_access_cycles(np.array([11]), 3, 0, 10)


class TestStatsProperties:
    def test_merge_adds_counters(self):
        a = BankIdleStats(accesses=2, idle_intervals=1, useful_intervals=1,
                          idle_cycles=30, sleep_cycles=20, transitions=1, total_cycles=50)
        b = BankIdleStats(accesses=3, idle_intervals=2, useful_intervals=0,
                          idle_cycles=8, sleep_cycles=0, transitions=0, total_cycles=50)
        merged = a.merge(b)
        assert merged.accesses == 5
        assert merged.total_cycles == 100
        assert merged.useful_idleness == pytest.approx(0.2)

    def test_zero_division_guards(self):
        empty = BankIdleStats()
        assert empty.useful_idleness == 0.0
        assert empty.idle_fraction == 0.0
        assert empty.useful_interval_fraction == 0.0


class TestBlockControlAgreesWithAccountant:
    def _drive(self, events, horizon, breakeven, banks=2):
        """Run both models on the same event stream."""
        control = BlockControl(banks, breakeven)
        accountant = IdlenessAccountant(banks, breakeven)
        schedule = dict(events)
        for cycle in range(horizon):
            control.step(schedule.get(cycle))
        for cycle, bank in sorted(events):
            accountant.on_access(bank, cycle)
        stats = accountant.finalize(horizon)
        return control, stats

    def test_simple_stream(self):
        events = [(0, 0), (3, 1), (40, 0)]
        control, stats = self._drive(events, horizon=100, breakeven=10)
        for bank in range(2):
            assert control.sleep_cycles[bank] == stats[bank].sleep_cycles
            assert control.transitions[bank] == stats[bank].transitions

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=199),
                      st.integers(min_value=0, max_value=1)),
            max_size=40,
            unique_by=lambda t: t[0],
        ),
        st.integers(min_value=1, max_value=20),
    )
    def test_property_cycle_accurate_equals_gap_arithmetic(self, events, breakeven):
        control, stats = self._drive(events, horizon=200, breakeven=breakeven)
        for bank in range(2):
            assert control.sleep_cycles[bank] == stats[bank].sleep_cycles, (
                f"bank {bank}: {events}"
            )
            assert control.transitions[bank] == stats[bank].transitions

    def test_run_gap_fast_path(self):
        control = BlockControl(2, breakeven=5)
        control.step(0)
        control.run_gap(50)
        assert control.sleep_cycles[0] == 45
        assert control.sleep_cycles[1] == 45 + 1  # bank 1 idle one extra cycle
        assert control.counter_width_bits == 3

    def test_counter_width_for_paper_breakeven(self):
        assert BlockControl(4, 24).counter_width_bits == 5
        assert BlockControl(4, 63).counter_width_bits == 6
