"""Tests for RandomStreams, units and ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import RandomStreams
from repro.utils.tables import format_table
from repro.utils.units import (
    SECONDS_PER_YEAR,
    cycles_to_seconds,
    joules,
    picojoules,
    seconds_to_cycles,
    seconds_to_years,
    years_to_seconds,
)


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(7)
        a = streams.get("x").random(5)
        b = streams.get("x").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        a = streams.get("x").random(5)
        b = streams.get("y").random(5)
        assert not (a == b).all()

    def test_different_master_seeds_differ(self):
        a = RandomStreams(1).get("x").random(5)
        b = RandomStreams(2).get("x").random(5)
        assert not (a == b).all()

    def test_order_independence(self):
        """Streams must not depend on the order they are requested in."""
        s1 = RandomStreams(3)
        first_then_second = (s1.get("a").random(), s1.get("b").random())
        s2 = RandomStreams(3)
        second_then_first = (s2.get("b").random(), s2.get("a").random())
        assert first_then_second[0] == second_then_first[1]
        assert first_then_second[1] == second_then_first[0]

    def test_spawn_namespacing(self):
        root = RandomStreams(3)
        child = root.spawn("sub")
        assert child.seed_for("x") != root.seed_for("x")
        assert child.seed_for("x") == RandomStreams(3).spawn("sub").seed_for("x")


class TestUnits:
    def test_cycles_seconds_round_trip(self):
        assert seconds_to_cycles(cycles_to_seconds(12345.0)) == pytest.approx(12345.0)

    def test_years_seconds_round_trip(self):
        assert seconds_to_years(years_to_seconds(2.93)) == pytest.approx(2.93)

    def test_year_definition(self):
        assert years_to_seconds(1.0) == SECONDS_PER_YEAR

    def test_energy_round_trip(self):
        assert joules(picojoules(1.5)) == pytest.approx(1.5)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            cycles_to_seconds(10, frequency_hz=0)
        with pytest.raises(ConfigurationError):
            seconds_to_cycles(10, frequency_hz=-1)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.50" in lines[2]

    def test_none_renders_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_title(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        text = format_table(["col", "x"], [["long-value", 1], ["s", 22]])
        lines = text.splitlines()
        # All separator positions align.
        positions = {line.find("|") for line in lines if "|" in line or "+" in line}
        assert len({p for p in positions if p >= 0}) == 1

    def test_float_format_override(self):
        text = format_table(["a"], [[1.23456]], float_fmt=".4f")
        assert "1.2346" in text
