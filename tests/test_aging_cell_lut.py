"""Tests for the characterization framework and the lifetime LUT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging.cell import CharacterizationFramework, SRAMCellSpec
from repro.aging.lifetime import (
    LinearizedLifetimeModel,
    bank_lifetimes_years,
    cache_lifetime_years,
)
from repro.aging.lut import LifetimeLUT
from repro.errors import ModelError


class TestCharacterization:
    def test_calibrated_to_paper_reference(self, framework):
        """Always-on balanced cell: 2.93 years (Section IV-B1)."""
        assert framework.lifetime_years(0.5, 0.0) == pytest.approx(2.93, rel=1e-6)

    def test_snm_fresh_positive(self, framework):
        assert framework.snm_fresh > 0.1

    def test_failure_threshold_is_80_percent(self, framework):
        assert framework.snm_failure_threshold == pytest.approx(
            0.8 * framework.snm_fresh
        )

    def test_sleep_extends_lifetime(self, framework):
        base = framework.lifetime_years(0.5, 0.0)
        assert framework.lifetime_years(0.5, 0.5) > base

    def test_lifetime_matches_linearized_law(self, framework):
        """The full SNM+drift pipeline obeys LT = base/(1 - eta*I) exactly
        (the drift law's time-scaling property)."""
        eta = framework.nbti.sleep_recovery_efficiency
        for psleep in (0.1, 0.42, 0.68, 0.95):
            expected = 2.93 / (1.0 - eta * psleep)
            assert framework.lifetime_years(0.5, psleep) == pytest.approx(
                expected, rel=1e-6
            )

    def test_paper_table4_anchor(self, framework):
        """32kB / 8 banks: idleness 68% -> 5.98 years in the paper."""
        assert framework.lifetime_years(0.5, 0.68) == pytest.approx(5.98, abs=0.02)

    def test_balanced_content_is_best_case(self, framework):
        """p0 = 0.5 maximizes lifetime (Kumar et al.; Section II-B)."""
        balanced = framework.lifetime_years(0.5, 0.0)
        assert framework.lifetime_years(0.9, 0.0) < balanced
        assert framework.lifetime_years(0.1, 0.0) < balanced

    def test_p0_symmetry(self, framework):
        # Small numerical asymmetry from the butterfly bisection is fine.
        assert framework.lifetime_years(0.3, 0.0) == pytest.approx(
            framework.lifetime_years(0.7, 0.0), rel=2e-3
        )

    def test_device_duties(self, framework):
        assert framework.device_duties(0.25) == (0.75, 0.25)
        with pytest.raises(ModelError):
            framework.device_duties(1.5)

    def test_aging_curve_monotone_decreasing(self, framework):
        curve = framework.aging_curve(points=7, horizon_years=6.0)
        assert np.all(np.diff(curve.snm_volts) < 0)
        assert curve.snm_volts[0] == pytest.approx(framework.snm_fresh, rel=1e-6)

    def test_snm_at_time_zero(self, framework):
        assert framework.snm_at(0.0) == pytest.approx(framework.snm_fresh, rel=1e-6)

    def test_rejects_insensitive_cell(self):
        """A cell whose read SNM never reaches -20% must be refused."""
        # Pathologically weak pull-ups make the butterfly insensitive.
        from repro.aging.devices import MOSFETParams

        spec = SRAMCellSpec(
            pull_up=MOSFETParams(k=0.01, vth=0.9),
            pull_down=MOSFETParams(k=2.6, vth=0.30),
            access=MOSFETParams(k=1.3, vth=0.30),
        )
        with pytest.raises(ModelError):
            CharacterizationFramework(spec)


class TestLifetimeLUT:
    def test_exact_on_grid_points(self, lut, framework):
        for psleep in (0.0, float(lut.psleep_grid[10])):
            assert lut.lifetime_years(0.5, psleep) == pytest.approx(
                framework.lifetime_years(0.5, psleep), rel=1e-6
            )

    def test_interpolation_between_grid_points(self, lut, framework):
        """Bilinear interpolation error stays under 1% mid-cell."""
        psleep = 0.4125
        exact = framework.lifetime_years(0.5, psleep)
        assert lut.lifetime_years(0.5, psleep) == pytest.approx(exact, rel=0.01)

    def test_monotone_in_psleep(self, lut):
        values = [lut.lifetime_years(0.5, p) for p in np.linspace(0, 0.99, 20)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_clips_extreme_sleep(self, lut):
        """Psleep = 1.0 (a never-touched bank) returns a finite lifetime."""
        value = lut.lifetime_years(0.5, 1.0)
        assert np.isfinite(value)
        assert value > lut.lifetime_years(0.5, 0.9)

    def test_rejects_out_of_domain(self, lut):
        with pytest.raises(ModelError):
            lut.lifetime_years(1.5, 0.0)
        with pytest.raises(ModelError):
            lut.lifetime_years(0.5, -0.1)

    def test_rejects_degenerate_grid(self, framework):
        with pytest.raises(ModelError):
            LifetimeLUT(framework, p0_points=1)

    def test_default_is_memoised(self):
        assert LifetimeLUT.default() is LifetimeLUT.default()


class TestLinearizedModel:
    def test_matches_paper_values(self):
        model = LinearizedLifetimeModel()
        assert model.lifetime_years(0.0) == pytest.approx(2.93)
        assert model.lifetime_years(0.68) == pytest.approx(5.98, abs=0.02)

    def test_required_sleep_inverse(self):
        model = LinearizedLifetimeModel()
        psleep = model.required_sleep(4.31)
        assert model.lifetime_years(psleep) == pytest.approx(4.31, rel=1e-9)

    def test_required_sleep_rejects_trivial_target(self):
        with pytest.raises(ModelError):
            LinearizedLifetimeModel().required_sleep(1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ModelError):
            LinearizedLifetimeModel(base_lifetime_years=-1)
        with pytest.raises(ModelError):
            LinearizedLifetimeModel(eta=1.5)


class TestBankAndCacheLifetime:
    def test_cache_lifetime_is_worst_bank(self, lut):
        report = cache_lifetime_years([0.9, 0.1, 0.5, 0.7], lut=lut)
        lifetimes = bank_lifetimes_years([0.9, 0.1, 0.5, 0.7], lut=lut)
        assert report.cache_lifetime_years == min(lifetimes)
        assert report.limiting_bank == 1

    def test_uniform_sleep_all_banks_equal(self, lut):
        report = cache_lifetime_years([0.4] * 8, lut=lut)
        assert len(set(report.bank_lifetimes_years)) == 1

    def test_rejects_empty(self, lut):
        with pytest.raises(ModelError):
            cache_lifetime_years([], lut=lut)
