"""reprolint: rule firing/near-miss fixtures, baseline, CLI, self-check.

Every built-in rule gets (a) a fixture snippet that MUST fire placed at
a path inside the rule's scope, and (b) a near-miss snippet that must
NOT fire — the compliant spelling of the same operation. The self-check
test then asserts the real tree is clean with an empty baseline, which
is the CI gate's contract.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import reprolint
from reprolint import (
    Finding,
    LintError,
    Rule,
    apply_baseline,
    get_rule,
    load_baseline,
    register_rule,
    rule_ids,
    run_lint,
    save_baseline,
    unregister_rule,
)
from reprolint.framework import Module
from reprolint.report import render_github, render_json, render_sarif

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_snippet(tmp_path, rel, code, select):
    """Write ``code`` at ``rel`` under tmp_path and lint it with one rule."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code)
    return run_lint([os.fspath(path)], select=(select,))


# ---------------------------------------------------------------------------
# Rule fixtures: (rule, path-in-scope, firing snippet, near-miss snippet)
# ---------------------------------------------------------------------------

RULE_FIXTURES = [
    (
        "REPRO001",
        "power/idleness.py",
        # The PR 2 bug class: weights= bincount accumulates in float64.
        "import numpy as np\n"
        "def kernel(banks, gaps):\n"
        "    return np.bincount(banks, weights=gaps)\n",
        "import numpy as np\n"
        "def kernel(banks, gaps, n):\n"
        "    out = np.zeros(n, dtype=np.int64)\n"
        "    np.add.at(out, banks, gaps)\n"
        "    return out\n",
    ),
    (
        "REPRO001",
        "core/fastsim.py",
        # Float dtype and true division inside a counter kernel.
        "import numpy as np\n"
        "def kernel(n):\n"
        "    buf = np.zeros(n, dtype=np.float64)\n"
        "    return buf.sum() / n\n",
        # Derived rates live in @property accessors; // is integer math.
        "import numpy as np\n"
        "class Stats:\n"
        "    def __init__(self, hits, accesses):\n"
        "        self.hits = hits\n"
        "        self.accesses = accesses\n"
        "    @property\n"
        "    def hit_rate(self):\n"
        "        return self.hits / self.accesses\n"
        "def kernel(total, n):\n"
        "    return total // n\n",
    ),
    (
        "REPRO002",
        "campaign/codec.py",
        "import json\n"
        "def canonical(payload):\n"
        "    return json.dumps(payload, indent=2)\n",
        "import json\n"
        "def canonical(payload):\n"
        "    return json.dumps(payload, sort_keys=True,\n"
        "                      separators=(',', ':'), allow_nan=False)\n",
    ),
    (
        "REPRO002",
        "campaign/tracespec.py",
        # Set iteration order feeding a hashed payload.
        "def payload_fields(params):\n"
        "    return list({k for k in params})\n",
        "def payload_fields(params):\n"
        "    return sorted({k for k in params})\n",
    ),
    (
        "REPRO003",
        "campaign/store.py",
        # Exactly the save_trace_mmap meta.json bug this rule caught.
        "import json\n"
        "def put(path, payload):\n"
        "    with open(path, 'w') as handle:\n"
        "        json.dump(payload, handle)\n",
        "from repro.core.serialize import write_json_atomic\n"
        "def put(path, payload):\n"
        "    write_json_atomic(path, payload)\n",
    ),
    (
        "REPRO004",
        "analysis/sweep.py",
        "def pick(engine, configs):\n"
        "    if engine == 'fast':\n"
        "        return group_path(configs)\n"
        "    return slow_path(configs)\n",
        # Capability query instead of a name check; unrelated string
        # comparisons (policy names) stay silent.
        "def pick(engine_obj, configs, policy):\n"
        "    if policy == 'static':\n"
        "        configs = configs[:1]\n"
        "    run_group = getattr(engine_obj, 'run_group', None)\n"
        "    if run_group is not None:\n"
        "        return run_group(configs)\n"
        "    return slow_path(configs)\n",
    ),
    (
        "REPRO005",
        "analysis/sweep.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def fan_out(payloads, trace):\n"
        "    with ProcessPoolExecutor(max_workers=4) as pool:\n"
        "        return [pool.submit(lambda p: simulate(p, trace), p)\n"
        "                for p in payloads]\n",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def fan_out(payloads, trace, lut):\n"
        "    with ProcessPoolExecutor(max_workers=4, initializer=_init_worker,\n"
        "                             initargs=(trace, lut)) as pool:\n"
        "        return list(pool.map(_simulate_chunk, payloads))\n",
    ),
    (
        "REPRO006",
        "core/anything.py",
        "def load(path):\n"
        "    try:\n"
        "        return _read(path)\n"
        "    except:\n"
        "        pass\n"
        "    raise ValueError('bad file')\n",
        "from repro.errors import SerializationError\n"
        "def load(path):\n"
        "    try:\n"
        "        return _read(path)\n"
        "    except OSError:\n"
        "        pass\n"
        "    raise SerializationError('bad file')\n",
    ),
    (
        "REPRO007",
        "trace/synthetic.py",
        "import time\n"
        "import numpy as np\n"
        "def jitter(n):\n"
        "    np.random.seed(int(time.time()))\n"
        "    return np.random.randint(0, 10, size=n)\n",
        "import time\n"
        "import numpy as np\n"
        "def jitter(n, seed):\n"
        "    start = time.perf_counter()\n"
        "    rng = np.random.default_rng(seed)\n"
        "    draws = rng.integers(0, 10, size=n)\n"
        "    _ = time.perf_counter() - start\n"
        "    return draws\n",
    ),
    (
        "REPRO008",
        "core/streamsim.py",
        # Resetting carry state per chunk: results silently diverge on
        # multi-chunk inputs only.
        "import numpy as np\n"
        "class Tracker:\n"
        "    def __init__(self, n):\n"
        "        self.last_access = np.zeros(n, dtype=np.int64)\n"
        "    def process_chunk(self, chunk):\n"
        "        self.last_access = np.zeros(chunk.size, dtype=np.int64)\n",
        "import numpy as np\n"
        "class Tracker:\n"
        "    def __init__(self, n):\n"
        "        self.last_access = np.zeros(n, dtype=np.int64)\n"
        "        self.hits = 0\n"
        "    def process_chunk(self, chunk, idx):\n"
        "        self.hits += int(chunk.size)\n"
        "        self.last_access[idx] = chunk.cycles\n"
        "        self.last_access = np.maximum(self.last_access, 0)\n",
    ),
    (
        "REPRO009",
        "core/fastsim.py",
        # Bypassing the dispatch layer pins one backend and crashes
        # numpy-only environments when that backend is numba/cext.
        "from repro.kernels import _numba\n"
        "import repro.kernels._cext as cext\n"
        "def kernel(tags, starts, ways):\n"
        "    return _numba.lru_walk(tags, starts, ways)\n",
        # The dispatch layer owns backend selection and fallback.
        "from repro.kernels import dispatch as kernels\n"
        "def kernel(tags, starts, ways, backend=None):\n"
        "    return kernels.lru_walk(tags, starts, ways, backend=backend)\n",
    ),
    (
        "REPRO003",
        "campaign/records.py",
        # Interprocedural: json.dump hidden in a helper whose caller is
        # NOT an atomic writer still fires.
        "import json\n"
        "def _emit(handle, payload):\n"
        "    json.dump(payload, handle)\n"
        "def save(path, payload):\n"
        "    with open(path, 'w') as handle:\n"
        "        _emit(handle, payload)\n",
        # The same helper reached only from write_json_atomic is the
        # sanctioned delegation pattern.
        "import json, os, tempfile\n"
        "def _emit(handle, payload):\n"
        "    json.dump(payload, handle)\n"
        "def write_json_atomic(path, payload):\n"
        "    fd, tmp = tempfile.mkstemp(dir='.')\n"
        "    with os.fdopen(fd, 'w') as handle:\n"
        "        _emit(handle, payload)\n"
        "    os.replace(tmp, path)\n",
    ),
    (
        "REPRO010",
        "campaign/service/index.py",
        # Interprocedural: the index module may *hold* connections but a
        # public method handing one out (via a private wrapper) leaks
        # the fork-hostile handle to arbitrary callers.
        "import sqlite3\n"
        "class CampaignIndex:\n"
        "    def _connect(self):\n"
        "        return sqlite3.connect(':memory:')\n"
        "    def connection(self):\n"
        "        return self._connect()\n",
        # Private plumbing plus operation-shaped public surface.
        "import sqlite3\n"
        "class CampaignIndex:\n"
        "    def _connect(self) -> sqlite3.Connection:\n"
        "        return sqlite3.connect(':memory:')\n"
        "    def count(self):\n"
        "        return self._connect().execute('select 1').fetchone()[0]\n",
    ),
    (
        "REPRO011",
        "campaign/service/state.py",
        # A module-global sqlite connection read by pool-worker code is
        # inherited across fork() with shared locking state.
        "import sqlite3\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "_DB = sqlite3.connect('index.db')\n"
        "def _task(key):\n"
        "    return _DB.execute('select 1').fetchone()\n"
        "def run(keys):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(_task, keys))\n",
        # The _drain_state pattern: a None-initialized slot the pool
        # initializer fills inside each worker.
        "from concurrent.futures import ProcessPoolExecutor\n"
        "_state = None\n"
        "def _init(path):\n"
        "    global _state\n"
        "    _state = {'path': path}\n"
        "def _task(key):\n"
        "    return (_state['path'], key)\n"
        "def run(keys, path):\n"
        "    with ProcessPoolExecutor(initializer=_init,\n"
        "                             initargs=(path,)) as pool:\n"
        "        return list(pool.map(_task, keys))\n",
    ),
    (
        "REPRO012",
        "campaign/service/server.py",
        # self.active written by the Thread-target loop AND by ordinary
        # code, with neither side holding the class's lock.
        "import threading\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.active = None\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._loop, daemon=True).start()\n"
        "    def _loop(self):\n"
        "        self.active = 'draining'\n"
        "    def reset(self):\n"
        "        self.active = None\n",
        "import threading\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.active = None\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._loop, daemon=True).start()\n"
        "    def _loop(self):\n"
        "        with self._lock:\n"
        "            self.active = 'draining'\n"
        "    def reset(self):\n"
        "        with self._lock:\n"
        "            self.active = None\n",
    ),
    (
        "REPRO013",
        "campaign/service/tasks.py",
        # A handle escaping a pool-reachable function outlives the call.
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def _work(path):\n"
        "    handle = open(path)\n"
        "    return handle.read()\n"
        "def run(paths):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(_work, paths))\n",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def _work(path):\n"
        "    with open(path) as handle:\n"
        "        return handle.read()\n"
        "def run(paths):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(_work, paths))\n",
    ),
    (
        "REPRO014",
        "campaign/service/__init__.py",
        "def compute():\n"
        "    return 1\n"
        "__all__ = ['compute', 'missing']\n",
        "def compute():\n"
        "    return 1\n"
        "__all__ = ['compute']\n",
    ),
    (
        "REPRO015",
        "estimate/model.py",
        # Importing the replay machinery would let a tagged "estimate"
        # secretly replay the trace, voiding the fidelity contract.
        "from repro.core import fastsim\n"
        "def predict(trace):\n"
        "    return fastsim.run(trace)\n",
        # The sanctioned route: closed-form synthesis through the same
        # assembly funnel the simulators use.
        "from repro.core.simulator import assemble_result\n"
        "def predict(profile):\n"
        "    return assemble_result\n",
    ),
    (
        "REPRO010",
        "campaign/store.py",
        # A connection opened here would be inherited across the work
        # queue's fork and corrupt the index's locking state.
        "import sqlite3\n"
        "def count(path):\n"
        "    conn = sqlite3.connect(path)\n"
        "    return conn.execute('SELECT COUNT(*) FROM records').fetchone()[0]\n",
        # Going through the index keeps connections per pid/thread.
        "from repro.campaign.service.index import CampaignIndex\n"
        "def count(index: CampaignIndex) -> int:\n"
        "    return index.count()\n",
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "rule_id,rel,firing,_",
        RULE_FIXTURES,
        ids=[f"{r}-{os.path.basename(p)}" for r, p, _, __ in RULE_FIXTURES],
    )
    def test_rule_fires(self, tmp_path, rule_id, rel, firing, _):
        findings = lint_snippet(tmp_path, rel, firing, rule_id)
        assert findings, f"{rule_id} must fire on the fixture"
        assert all(f.rule_id == rule_id for f in findings)

    @pytest.mark.parametrize(
        "rule_id,rel,_,near_miss",
        RULE_FIXTURES,
        ids=[f"{r}-{os.path.basename(p)}" for r, p, _, __ in RULE_FIXTURES],
    )
    def test_rule_near_miss_is_silent(self, tmp_path, rule_id, rel, _, near_miss):
        assert lint_snippet(tmp_path, rel, near_miss, rule_id) == []

    def test_every_builtin_rule_has_a_firing_fixture(self):
        covered = {rule_id for rule_id, *_ in RULE_FIXTURES}
        assert set(rule_ids()) <= covered
        assert len(rule_ids()) >= 14

    def test_scoping_confines_rules(self, tmp_path):
        # A counter-purity violation outside the counter kernels is not
        # this rule's business (the energy model is float math by design).
        code = "import numpy as np\nbuf = np.zeros(4, dtype=np.float64)\n"
        assert lint_snippet(tmp_path, "power/energy.py", code, "REPRO001") == []
        assert lint_snippet(tmp_path, "power/idleness.py", code, "REPRO001") != []

    def test_registry_module_exempt_from_name_checks(self, tmp_path):
        code = "def resolve(engine):\n    return engine == 'auto'\n"
        assert lint_snippet(tmp_path, "core/engine.py", code, "REPRO004") == []
        assert lint_snippet(tmp_path, "campaign/run.py", code, "REPRO004") != []

    def test_kernels_package_exempt_from_backend_encapsulation(self, tmp_path):
        # The dispatch layer itself wires the backends together.
        code = "from repro.kernels import _cext\n"
        assert lint_snippet(tmp_path, "kernels/dispatch.py", code, "REPRO009") == []
        assert lint_snippet(tmp_path, "power/idleness.py", code, "REPRO009") != []

    def test_estimator_isolation_scoped_to_estimate_package(self, tmp_path):
        # The sweep layer legitimately drives the replay engines; only
        # the estimate tier is barred from them.
        code = "from repro.core import fastsim\n"
        assert lint_snippet(tmp_path, "analysis/sweep.py", code, "REPRO015") == []
        assert lint_snippet(tmp_path, "estimate/engine.py", code, "REPRO015") != []
        # kernels are off limits however they are spelled
        relative = "from ..kernels import dispatch\n"
        assert lint_snippet(tmp_path, "estimate/model.py", relative, "REPRO015") != []

    def test_index_module_exempt_from_sqlite_encapsulation(self, tmp_path):
        # The index module is the one sanctioned connect site.
        code = "import sqlite3\nconn = sqlite3.connect(':memory:')\n"
        assert (
            lint_snippet(tmp_path, "campaign/service/index.py", code, "REPRO010")
            == []
        )
        assert lint_snippet(tmp_path, "campaign/run.py", code, "REPRO010") != []
        imported = "from sqlite3 import connect\n"
        assert lint_snippet(tmp_path, "campaign/store.py", imported, "REPRO010") != []

    def test_json_dump_inside_write_json_atomic_is_exempt(self, tmp_path):
        code = (
            "import json, os, tempfile\n"
            "def write_json_atomic(path, payload):\n"
            "    fd, tmp = tempfile.mkstemp(dir='.')\n"
            "    with os.fdopen(fd, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
            "    os.replace(tmp, path)\n"
        )
        assert lint_snippet(tmp_path, "core/serialize.py", code, "REPRO003") == []

    def test_inline_pragma_suppresses(self, tmp_path):
        code = (
            "import json\n"
            "def put(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)  # reprolint: disable=REPRO003\n"
        )
        assert lint_snippet(tmp_path, "campaign/store.py", code, "REPRO003") == []

    def test_syntax_error_is_reported_not_fatal(self, tmp_path):
        findings = lint_snippet(tmp_path, "core/broken.py", "def broken(:\n", "REPRO003")
        assert [f.rule_id for f in findings] == ["REPRO000"]


class TestRegistry:
    def test_mirrors_engine_registry_semantics(self):
        class Probe(Rule):
            rule_id = "REPRO999"
            title = "probe"

            def check(self, module):
                return []

        register_rule(Probe())
        try:
            assert "REPRO999" in rule_ids()
            assert isinstance(get_rule("REPRO999"), Probe)
            with pytest.raises(LintError, match="already registered"):
                register_rule(Probe())
            register_rule(Probe(), replace=True)
        finally:
            unregister_rule("REPRO999")
        assert "REPRO999" not in rule_ids()

    def test_malformed_id_rejected(self):
        class Bad(Rule):
            rule_id = "LINT1"

            def check(self, module):
                return []

        with pytest.raises(LintError, match="malformed"):
            register_rule(Bad())

    def test_unknown_rule_is_self_diagnosing(self):
        with pytest.raises(LintError, match="REPRO001"):
            get_rule("REPRO404")

    def test_custom_rule_participates_in_run_lint(self, tmp_path):
        class NoTodo(Rule):
            rule_id = "REPRO900"
            title = "no TODO identifiers"
            scope = ("*.py",)

            def check(self, module: Module):
                import ast

                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Name) and node.id == "TODO":
                        yield self.finding(module, node, "TODO found")

        register_rule(NoTodo())
        try:
            findings = lint_snippet(tmp_path, "core/x.py", "TODO = 1\n", "REPRO900")
            assert [f.rule_id for f in findings] == ["REPRO900"]
        finally:
            unregister_rule("REPRO900")


class TestBaseline:
    def test_round_trip_and_consumption(self, tmp_path):
        finding = Finding("src/x.py", 10, 1, "REPRO003", "direct json.dump")
        twin = Finding("src/x.py", 99, 1, "REPRO003", "direct json.dump")
        path = os.fspath(tmp_path / "baseline.json")
        save_baseline(path, [finding])
        entries = load_baseline(path)
        # Line drift does not resurrect a grandfathered finding...
        fresh, suppressed = apply_baseline([twin], entries)
        assert fresh == [] and suppressed == 1
        # ...but the baseline is a multiset: a second identical
        # violation is new debt.
        fresh, suppressed = apply_baseline([finding, twin], entries)
        assert len(fresh) == 1 and suppressed == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(os.fspath(tmp_path / "nope.json")) == []

    def test_corrupt_baseline_is_loud(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(LintError, match="baseline"):
            load_baseline(os.fspath(path))

    def test_truncated_baseline_is_loud(self, tmp_path):
        # A partially written baseline (crash mid-write, bad merge) must
        # fail loudly, not silently grandfather nothing.
        path = os.fspath(tmp_path / "baseline.json")
        save_baseline(path, [Finding("src/x.py", 1, 1, "REPRO003", "boom")])
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(LintError, match="baseline"):
            load_baseline(path)

    def test_repo_baseline_is_empty(self):
        entries = load_baseline(os.path.join(REPO_ROOT, ".reprolint-baseline.json"))
        assert entries == []


class TestSelfCheck:
    def test_src_tree_is_clean_with_empty_baseline(self):
        # The CI gate's contract: the shipped tree has zero findings
        # and needs zero grandfathering.
        findings = run_lint([os.path.join(REPO_ROOT, "src", "repro")])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_seeded_violation_is_caught(self, tmp_path):
        # Reverting the meta.json atomic write (the rule's historical
        # catch) must flip the gate red: copy the real module, put the
        # bug back, lint the copy.
        import re

        source_path = os.path.join(REPO_ROOT, "src", "repro", "trace", "stream.py")
        with open(source_path, encoding="utf-8") as handle:
            source = handle.read()
        assert "write_json_atomic" in source
        seeded = source.replace(
            "from repro.core.serialize import write_json_atomic\n\n"
            "    write_json_atomic(os.path.join(directory, MMAP_META), meta)",
            'with open(os.path.join(directory, MMAP_META), "w") as handle:\n'
            "        json.dump(meta, handle, indent=2)",
        )
        assert seeded != source
        target = tmp_path / "trace" / "stream.py"
        target.parent.mkdir(parents=True)
        target.write_text(seeded)
        findings = run_lint([os.fspath(target)], select=("REPRO003",))
        assert [f.rule_id for f in findings] == ["REPRO003"]
        assert re.search(r"write_json_atomic", findings[0].message)


class TestProjectModel:
    """Unit coverage for the whole-program model the project rules share."""

    @staticmethod
    def make_project(files):
        from reprolint.project import Project

        return Project(Module(rel, rel, text) for rel, text in files.items())

    def test_entry_points_cover_pools_threads_and_handlers(self):
        text = (
            "import threading\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from http.server import BaseHTTPRequestHandler\n"
            "def _task(key):\n"
            "    return key\n"
            "def _init():\n"
            "    pass\n"
            "class Handler(BaseHTTPRequestHandler):\n"
            "    def do_GET(self):\n"
            "        pass\n"
            "class Service:\n"
            "    def start(self):\n"
            "        threading.Thread(target=self._loop).start()\n"
            "    def _loop(self):\n"
            "        pass\n"
            "def run(keys):\n"
            "    with ProcessPoolExecutor(initializer=_init) as pool:\n"
            "        return list(pool.map(_task, keys))\n"
        )
        project = self.make_project({"service/app.py": text})
        entries = {(e.function.qualname, e.kind) for e in project.entry_points()}
        assert ("_task", "process") in entries
        assert ("_init", "process") in entries
        assert ("Service._loop", "thread") in entries
        assert ("Handler.do_GET", "thread") in entries

    def test_reachability_follows_calls_across_modules(self):
        files = {
            "service/helpers.py": (
                "def helper(x):\n"
                "    return leaf(x)\n"
                "def leaf(x):\n"
                "    return x\n"
                "def unused(x):\n"
                "    return x\n"
            ),
            "service/app.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from service.helpers import helper\n"
                "def _task(key):\n"
                "    return helper(key)\n"
                "def run(keys):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(_task, keys))\n"
            ),
        }
        project = self.make_project(files)
        reached = {qualname for _, qualname in project.service_reachable()}
        assert {"_task", "helper", "leaf"} <= reached
        assert "unused" not in reached
        assert "run" not in reached

    def test_callers_are_the_reverse_call_graph(self):
        project = self.make_project(
            {
                "pkg/mod.py": (
                    "def leaf():\n"
                    "    return 1\n"
                    "def a():\n"
                    "    return leaf()\n"
                    "def b():\n"
                    "    return leaf()\n"
                )
            }
        )
        symbols = project.module_symbols("pkg/mod.py")
        leaf = symbols.functions["leaf"]
        assert {fn.qualname for fn in project.callers(leaf)} == {"a", "b"}

    def test_global_readers_cross_module_alias(self):
        files = {
            "service/state.py": (
                "import sqlite3\n"
                "_DB = sqlite3.connect('x.db')\n"
                "def reads():\n"
                "    return _DB.execute('select 1')\n"
                "def ignores():\n"
                "    return 1\n"
            ),
            "service/user.py": (
                "from service.state import _DB\n"
                "def touch():\n"
                "    return _DB\n"
            ),
        }
        project = self.make_project(files)
        readers = {
            fn.qualname
            for fn in project.global_readers("service/state.py", "_DB")
        }
        assert readers == {"reads", "touch"}


class TestDeadPragmas:
    def test_dead_pragma_is_reported(self, tmp_path):
        path = tmp_path / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("X = 1  # reprolint: disable=REPRO003\n")
        findings = run_lint([os.fspath(path)])
        assert [f.rule_id for f in findings] == ["REPRO000"]
        assert "dead pragma" in findings[0].message
        assert "REPRO003" in findings[0].message

    def test_live_pragma_is_not_dead(self, tmp_path):
        path = tmp_path / "campaign" / "store.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import json\n"
            "def put(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)  # reprolint: disable=REPRO003\n"
        )
        findings = run_lint([os.fspath(path)])
        assert not any(f.rule_id == "REPRO000" for f in findings)

    def test_opt_out_flag_silences_dead_pragmas(self, tmp_path):
        path = tmp_path / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("X = 1  # reprolint: disable=REPRO003\n")
        assert run_lint([os.fspath(path)], check_pragmas=False) == []

    def test_narrowed_run_does_not_judge_unran_rules(self, tmp_path):
        # disable=REPRO007 cannot be proven dead by a run that only
        # executed REPRO003.
        path = tmp_path / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("X = 1  # reprolint: disable=REPRO007\n")
        assert run_lint([os.fspath(path)], select=("REPRO003",)) == []

    def test_docstring_mention_is_not_a_pragma(self, tmp_path):
        # Prose *about* the pragma syntax (this file's own docs do
        # this) has no comment token and is never audited.
        path = tmp_path / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            '"""Example:\n'
            "\n"
            "    # reprolint: disable=REPRO003\n"
            '"""\n'
            "X = 1\n"
        )
        assert run_lint([os.fspath(path)]) == []


class TestReports:
    def test_render_json_round_trip(self):
        finding = Finding("src/x.py", 10, 2, "REPRO003", "direct json.dump")
        payload = json.loads(render_json([finding], suppressed=3))
        assert payload["version"] == 1
        assert payload["count"] == 1
        assert payload["suppressed"] == 3
        assert payload["findings"] == [finding.to_dict()]

    def test_render_github_escapes_workflow_syntax(self):
        finding = Finding("src/x.py", 3, 5, "REPRO007", "50% of runs\ndiverge")
        out = render_github([finding])
        assert out == (
            "::error file=src/x.py,line=3,col=5,"
            "title=REPRO007::50%25 of runs%0Adiverge"
        )

    def test_render_sarif_document(self):
        finding = Finding("src/x.py", 3, 5, "REPRO003", "boom")
        document = json.loads(render_sarif([finding]))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["REPRO003"]
        result = run["results"][0]
        assert result["ruleId"] == "REPRO003"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/x.py"
        assert location["region"] == {"startLine": 3, "startColumn": 5}

    def test_render_sarif_empty_run_is_valid(self):
        document = json.loads(render_sarif([]))
        assert document["runs"][0]["results"] == []
        assert document["runs"][0]["tool"]["driver"]["rules"] == []


class TestCli:
    def run_cli(self, *argv, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "reprolint", *argv],
            capture_output=True,
            text=True,
            cwd=cwd or REPO_ROOT,
        )

    def test_repo_root_invocation_is_clean(self):
        # The acceptance-criterion spelling, from an uninstalled
        # checkout: `python -m reprolint src/repro` exits 0.
        proc = self.run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_findings_fail_with_json_report(self, tmp_path):
        bad = tmp_path / "campaign" / "store.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import json\n"
            "def put(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
        )
        proc = self.run_cli(os.fspath(bad), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "REPRO003"

    def test_baseline_flow(self, tmp_path):
        bad = tmp_path / "campaign" / "store.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import json\n"
            "def put(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
        )
        baseline = os.fspath(tmp_path / "baseline.json")
        wrote = self.run_cli(os.fspath(bad), "--baseline", baseline, "--write-baseline")
        assert wrote.returncode == 0
        gated = self.run_cli(os.fspath(bad), "--baseline", baseline)
        assert gated.returncode == 0
        assert "suppressed" in gated.stdout

    def test_default_scope_is_clean(self):
        # No paths → src/repro + tools/reprolint + benchmarks, the CI
        # invocation. Whole tree, whole-program rules, zero findings.
        proc = self.run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_select_unknown_rule_is_usage_error(self):
        proc = self.run_cli("src/repro", "--select", "REPRO404")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_nonexistent_path_is_usage_error(self, tmp_path):
        proc = self.run_cli(os.fspath(tmp_path / "nope"))
        assert proc.returncode == 2
        assert "no such file or directory" in proc.stderr

    def test_default_paths_missing_is_usage_error(self, tmp_path):
        # From a directory with none of the default trees, the implicit
        # invocation refuses rather than lint nothing and exit 0.
        env = dict(os.environ, PYTHONPATH=REPO_ROOT)
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint"],
            capture_output=True,
            text=True,
            cwd=os.fspath(tmp_path),
            env=env,
        )
        assert proc.returncode == 2
        assert "none of the default paths" in proc.stderr

    def test_github_format_annotates(self, tmp_path):
        bad = tmp_path / "campaign" / "store.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import json\n"
            "def put(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
        )
        proc = self.run_cli(os.fspath(bad), "--format", "github")
        assert proc.returncode == 1
        assert proc.stdout.startswith("::error file=")
        assert "title=REPRO003" in proc.stdout

    def test_sarif_format_parses(self, tmp_path):
        bad = tmp_path / "campaign" / "store.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import json\n"
            "def put(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
        )
        proc = self.run_cli(os.fspath(bad), "--format", "sarif")
        assert proc.returncode == 1
        document = json.loads(proc.stdout)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == "REPRO003"

    def test_no_check_pragmas_flag(self, tmp_path):
        stale = tmp_path / "core" / "x.py"
        stale.parent.mkdir(parents=True)
        stale.write_text("X = 1  # reprolint: disable=REPRO003\n")
        audited = self.run_cli(os.fspath(stale))
        assert audited.returncode == 1
        assert "REPRO000" in audited.stdout and "dead pragma" in audited.stdout
        opted_out = self.run_cli(os.fspath(stale), "--no-check-pragmas")
        assert opted_out.returncode == 0, opted_out.stdout + opted_out.stderr

    def test_list_rules_names_all_builtins(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in rule_ids():
            assert rule_id in proc.stdout

    def test_repro_lint_subcommand(self):
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src/repro"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_version_importable(self):
        assert reprolint.__version__
