"""Stdlib HTTP/JSON front-end over one campaign directory.

``repro campaign serve <dir>`` turns a campaign directory into a small
service (think Pitwall's result server): clients submit specs and read
status, records and metric aggregates over plain HTTP — no dependency
beyond the standard library on either side.

Endpoints
---------
``POST /specs``
    Body: a campaign-spec payload (``CampaignSpec.to_dict`` form). The
    spec is validated, persisted to ``<dir>/specs/<spec_hash>.json``,
    and queued for draining by the server's background worker loop
    (which runs the claim-based work queue, so external workers may
    drain the same directory concurrently). Responds ``202`` with the
    spec hash.
``GET /status``
    Store-wide record count plus one
    :func:`~repro.campaign.run.status_payload` per known spec (every
    spec ever submitted or served from ``<dir>/specs/``), and the drain
    backlog.
``GET /records``
    Indexed record rows. Query parameters are equality filters on
    index columns (``?num_banks=4&policy=plru``), plus ``limit``;
    values are coerced to numbers when they look numeric. Served from
    the SQLite index — no record file is opened.
``GET /metrics``
    Aggregates (count / min / max / mean) of every indexed metric.

Errors are JSON too: ``{"error": ...}`` with a 4xx status for client
mistakes (unknown path, bad spec payload, unknown filter column).
"""

from __future__ import annotations

import json
import os
import queue as queue_module
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.aging.lut import LifetimeLUT
from repro.campaign.run import run_campaign, status_payload
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.core.serialize import write_json_atomic
from repro.errors import ReproError, ServiceError

#: Subdirectory of a campaign directory holding one file per submitted spec.
SPECS_DIRNAME = "specs"


def _coerce(value: str) -> int | float | str | None:
    """Query-string value → the type the index stores (int/float/str)."""
    if value == "null":
        return None
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


class CampaignService:
    """Shared state behind the HTTP handlers: store, specs, drain loop.

    One background thread drains submitted specs in arrival order with
    ``run_campaign(workers=...)`` — i.e. through the claim-based work
    queue, so a drain started here never double-simulates against
    external workers pointed at the same directory.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        workers: int = 1,
        parallel: int | None = None,
        lut: LifetimeLUT | None = None,
    ) -> None:
        self.directory = os.fspath(directory)
        self.workers = workers
        self.parallel = parallel
        self.lut = lut
        self.store = CampaignStore(self.directory)
        #: None is the stop sentinel (see :meth:`stop`).
        self._backlog: queue_module.Queue[CampaignSpec | None] = queue_module.Queue()
        self._active: str | None = None
        self._last_error: str | None = None
        self._lock = threading.Lock()
        self._drainer = threading.Thread(
            target=self._drain_loop, name="campaign-drainer", daemon=True
        )
        self._drainer.start()

    # -- specs ----------------------------------------------------------
    @property
    def specs_dir(self) -> str:
        return os.path.join(self.directory, SPECS_DIRNAME)

    def known_specs(self) -> list[CampaignSpec]:
        """Every spec ever submitted to (or dropped into) ``specs/``."""
        if not os.path.isdir(self.specs_dir):
            return []
        specs: list[CampaignSpec] = []
        for name in sorted(os.listdir(self.specs_dir)):
            if name.endswith(".json"):
                specs.append(CampaignSpec.load(os.path.join(self.specs_dir, name)))
        return specs

    def submit(self, payload: dict[str, Any]) -> str:
        """Validate, persist and enqueue one spec; returns its hash."""
        try:
            spec = CampaignSpec.from_dict(payload)
        except ReproError as exc:
            raise ServiceError(f"invalid campaign spec: {exc}") from exc
        spec_hash = spec.spec_hash()
        os.makedirs(self.specs_dir, exist_ok=True)
        write_json_atomic(
            os.path.join(self.specs_dir, f"{spec_hash}.json"), spec.to_dict()
        )
        self._backlog.put(spec)
        return spec_hash

    # -- drain loop -----------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            spec = self._backlog.get()
            if spec is None:
                return
            with self._lock:
                self._active = spec.spec_hash()
            try:
                run_campaign(
                    spec,
                    store=self.store,
                    lut=self.lut,
                    parallel=self.parallel,
                    workers=self.workers,
                )
            except Exception as exc:  # surface in /status, keep serving
                with self._lock:
                    self._last_error = f"{spec.name}: {exc}"
            finally:
                with self._lock:
                    self._active = None
                self._backlog.task_done()

    def wait_idle(self) -> None:
        """Block until every queued spec has been drained (for tests)."""
        self._backlog.join()

    def stop(self) -> None:
        self._backlog.put(None)

    # -- views ----------------------------------------------------------
    def status(self) -> dict[str, Any]:
        with self._lock:
            active = self._active
            last_error = self._last_error
        return {
            "directory": self.directory,
            "records": len(self.store),
            "specs": [status_payload(spec, self.store) for spec in self.known_specs()],
            "draining": active,
            "backlog": self._backlog.unfinished_tasks,
            "last_error": last_error,
        }

    def records(
        self, filters: dict[str, Any], limit: int | None
    ) -> dict[str, Any]:
        rows = self.store.where(limit=limit, **filters)
        return {"count": len(rows), "records": rows}

    def metrics(self) -> dict[str, Any]:
        index = self.store.index
        if index is None or not os.path.isdir(
            os.path.join(self.directory, "results")
        ):
            return {"records": 0, "traces": 0, "metrics": {}}
        index.ensure_built()
        return index.summary()


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`CampaignService` on the server."""

    server: CampaignServer  # type: ignore[assignment]

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, code: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:
        service = self.server.service
        url = urlsplit(self.path)
        try:
            if url.path == "/status":
                self._send_json(200, service.status())
            elif url.path == "/records":
                params = dict(parse_qsl(url.query))
                limit_raw = params.pop("limit", None)
                limit = int(limit_raw) if limit_raw is not None else None
                filters = {name: _coerce(value) for name, value in params.items()}
                self._send_json(200, service.records(filters, limit))
            elif url.path == "/metrics":
                self._send_json(200, service.metrics())
            else:
                self._send_json(404, {"error": f"unknown path {url.path}"})
        except (ServiceError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})

    def do_POST(self) -> None:
        service = self.server.service
        url = urlsplit(self.path)
        try:
            if url.path == "/specs":
                spec_hash = service.submit(self._read_json())
                self._send_json(
                    202, {"spec_hash": spec_hash, "status": "/status"}
                )
            else:
                self._send_json(404, {"error": f"unknown path {url.path}"})
        except ServiceError as exc:
            self._send_json(400, {"error": str(exc)})


class CampaignServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`CampaignService`.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    bound address either way.
    """

    daemon_threads = True

    def __init__(
        self,
        directory: str | os.PathLike[str],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        parallel: int | None = None,
        lut: LifetimeLUT | None = None,
        verbose: bool = False,
    ) -> None:
        self.service = CampaignService(
            directory, workers=workers, parallel=parallel, lut=lut
        )
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        self.service.stop()
        super().shutdown()


def serve(
    directory: str | os.PathLike[str],
    host: str = "127.0.0.1",
    port: int = 8437,
    workers: int = 1,
    parallel: int | None = None,
    verbose: bool = True,
) -> None:
    """Run the campaign service until interrupted (the CLI entry)."""
    server = CampaignServer(
        directory,
        host=host,
        port=port,
        workers=workers,
        parallel=parallel,
        verbose=verbose,
    )
    print(f"serving campaign {os.fspath(directory)} at {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", flush=True)
    finally:
        server.shutdown()
        server.server_close()
