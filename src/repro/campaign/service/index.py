"""SQLite index over a campaign store's record files.

The record files stay the source of truth — the index (``index.db`` in
the campaign directory) is a derived, disposable acceleration
structure: one row per ``(trace_hash, config_hash)`` carrying the
point's spec axes (``num_banks``, ``policy``, geometry, schedule…) and
its headline metrics, so membership counts, ``where()`` filters and
``best()`` queries run without opening a single JSON file. Delete or
corrupt ``index.db`` and the next query rebuilds it from the files.

Process discipline
------------------
This module is the **only** place in the tree allowed to call
``sqlite3.connect`` (enforced by reprolint rule REPRO010): SQLite
connections must never cross a process fork — a child inheriting its
parent's connection corrupts the database's locking state. Connections
here are created lazily, per thread *and* per pid: every thread of
every (possibly forked) worker process gets its own connection the
first time it touches the index, which makes the index safe under the
claim-based work queue's multi-process drains and the HTTP server's
handler threads alike.

Concurrent writers rely on SQLite's own file locking with a generous
busy timeout; rows are idempotent upserts keyed by the record identity,
so two workers indexing the same committed record converge on one row.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ServiceError

#: Name of the index database inside a campaign directory.
INDEX_FILENAME = "index.db"

#: Bumped whenever the row schema changes; a mismatch triggers a
#: rebuild from the record files (never a migration — files are the
#: source of truth). Version 2 added the ``fidelity`` column.
SCHEMA_VERSION = 2

#: Spec-axis columns extracted from each record's exact config payload.
AXIS_COLUMNS: tuple[tuple[str, str], ...] = (
    ("num_banks", "INTEGER"),
    ("policy", "TEXT"),
    ("power_managed", "INTEGER"),
    ("update_period_cycles", "INTEGER"),
    ("breakeven_override", "INTEGER"),
    ("size_bytes", "INTEGER"),
    ("line_size", "INTEGER"),
    ("ways", "INTEGER"),
    ("frequency_hz", "REAL"),
)

#: Headline metric columns served without touching the JSON files.
METRIC_COLUMNS: tuple[tuple[str, str], ...] = (
    ("hit_rate", "REAL"),
    ("energy_savings", "REAL"),
    ("energy_pj", "REAL"),
    ("lifetime_years", "REAL"),
    ("total_cycles", "INTEGER"),
)

#: Every queryable column, in table order.
COLUMNS: tuple[str, ...] = (
    "trace_hash",
    "config_hash",
    "path",
    "trace_name",
    "template",
    "fidelity",
    *(name for name, _ in AXIS_COLUMNS),
    *(name for name, _ in METRIC_COLUMNS),
)

#: One indexed row: key fields + axes + metrics.
Row = dict[str, Any]


def resolve_fidelity_filter(filters: dict[str, Any]) -> dict[str, Any]:
    """Apply the simulate-by-default fidelity policy to ``best`` filters.

    Ranking queries default to ``fidelity="simulate"`` so estimated
    records can never masquerade as measurements; ``fidelity="any"``
    removes the filter to rank across tiers.
    """
    filters = dict(filters)
    filters.setdefault("fidelity", "simulate")
    if filters["fidelity"] == "any":
        del filters["fidelity"]
    return filters

#: ``() -> iterable of rows`` used to rebuild a lost/corrupt index.
RebuildSource = Callable[[], Iterable[Row]]


def index_row(
    trace_hash: str, config_hash: str, rel_path: str, record: dict[str, Any]
) -> Row:
    """Flatten one record payload into its index row.

    ``record`` is the ``"record"`` part of a store file (a
    :func:`repro.core.serialize.result_to_dict` payload, v1 or v2);
    fields a version does not carry index as ``NULL``.
    """
    config = record.get("config") or {}
    geometry = config.get("geometry") or {}

    def _num(value: Any) -> Any:
        return value if isinstance(value, (int, float)) else None

    return {
        "trace_hash": trace_hash,
        "config_hash": config_hash,
        "path": rel_path,
        "trace_name": record.get("trace_name"),
        "template": record.get("template", "banked"),
        "fidelity": record.get("fidelity", "simulate"),
        "num_banks": _num(config.get("num_banks")),
        "policy": config.get("policy"),
        "power_managed": (
            int(bool(config["power_managed"]))
            if "power_managed" in config and config["power_managed"] is not None
            else None
        ),
        "update_period_cycles": _num(config.get("update_period_cycles")),
        "breakeven_override": _num(config.get("breakeven_override")),
        "size_bytes": _num(geometry.get("size_bytes")),
        "line_size": _num(geometry.get("line_size")),
        "ways": _num(geometry.get("ways")),
        "frequency_hz": _num(config.get("frequency_hz")),
        "hit_rate": _num(record.get("hit_rate")),
        "energy_savings": _num(record.get("energy_savings")),
        "energy_pj": _num(record.get("energy_pj")),
        "lifetime_years": _num(record.get("lifetime_years")),
        "total_cycles": _num(record.get("total_cycles")),
    }


class CampaignIndex:
    """Lazy, self-healing SQLite index over a store's record files.

    Parameters
    ----------
    path:
        Location of ``index.db``. Nothing is created until the first
        operation that needs the database — opening a store (or
        querying an empty one) stays read-only on the filesystem.
    rebuild_source:
        Zero-argument callable yielding every record's index row by
        walking the store's files. Invoked when the database is absent,
        from an older schema, or corrupt; the files are authoritative.
    """

    def __init__(self, path: str | os.PathLike[str], rebuild_source: RebuildSource) -> None:
        self.path = os.fspath(path)
        self._rebuild_source = rebuild_source
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Connections: one per (pid, thread), never crossing a fork
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(self.path, timeout=30.0)
        connection.row_factory = sqlite3.Row
        connection.execute("PRAGMA busy_timeout = 30000")
        return connection

    def _connection(self) -> sqlite3.Connection:
        connection: sqlite3.Connection | None = getattr(self._local, "connection", None)
        if connection is not None and getattr(self._local, "pid", None) == os.getpid():
            return connection
        # A connection inherited across fork() must not be reused (or
        # even closed — closing rolls back the parent's locks); drop
        # the reference and open a fresh one for this pid/thread.
        connection = self._connect()
        self._local.connection = connection
        self._local.pid = os.getpid()
        return connection

    def close(self) -> None:
        """Close this thread's connection (other threads keep theirs)."""
        connection: sqlite3.Connection | None = getattr(self._local, "connection", None)
        if connection is not None and getattr(self._local, "pid", None) == os.getpid():
            connection.close()
        self._local.connection = None

    # ------------------------------------------------------------------
    # Schema and self-healing
    # ------------------------------------------------------------------
    def _schema_statements(self) -> Iterator[str]:
        columns = ",\n".join(
            [
                "  trace_hash TEXT NOT NULL",
                "  config_hash TEXT NOT NULL",
                "  path TEXT NOT NULL",
                "  trace_name TEXT",
                "  template TEXT",
                "  fidelity TEXT",
                *(f"  {name} {sql_type}" for name, sql_type in AXIS_COLUMNS),
                *(f"  {name} {sql_type}" for name, sql_type in METRIC_COLUMNS),
                "  PRIMARY KEY (trace_hash, config_hash)",
            ]
        )
        yield f"CREATE TABLE IF NOT EXISTS records (\n{columns}\n)"
        yield "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        yield "CREATE INDEX IF NOT EXISTS idx_records_trace ON records (trace_hash)"

    def _ensure_schema(self, connection: sqlite3.Connection) -> None:
        for statement in self._schema_statements():
            connection.execute(statement)
        cursor = connection.execute("SELECT value FROM meta WHERE key = 'schema_version'")
        row = cursor.fetchone()
        if row is None:
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            connection.commit()
        elif row["value"] != str(SCHEMA_VERSION):
            raise sqlite3.DatabaseError(
                f"index schema version {row['value']} != {SCHEMA_VERSION}"
            )

    def _reset(self) -> None:
        """Drop every thread's view of a corrupt database and the file."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def _guarded(self, operation: Callable[[sqlite3.Connection], Any]) -> Any:
        """Run ``operation``; on corruption, rebuild from files and retry.

        Any :class:`sqlite3.DatabaseError` — a truncated file, a schema
        from a previous version, garbage bytes — demotes the database
        to "absent": it is deleted and rebuilt from the record files,
        then the operation runs once more. A second failure propagates
        as :class:`~repro.errors.ServiceError` (the store directory
        itself is unusable).
        """
        try:
            connection = self._connection()
            self._ensure_schema(connection)
            return operation(connection)
        except sqlite3.DatabaseError:
            self._reset()
        try:
            connection = self._connection()
            self._ensure_schema(connection)
            self._fill(connection)
            return operation(connection)
        except sqlite3.DatabaseError as exc:
            raise ServiceError(f"campaign index {self.path} is unusable: {exc}") from exc

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    _INSERT = (
        f"INSERT OR REPLACE INTO records ({', '.join(COLUMNS)}) "
        f"VALUES ({', '.join('?' for _ in COLUMNS)})"
    )

    @staticmethod
    def _row_values(row: Row) -> tuple[Any, ...]:
        return tuple(row.get(name) for name in COLUMNS)

    def add(self, row: Row) -> None:
        """Upsert one record row (idempotent across concurrent writers)."""

        def _add(connection: sqlite3.Connection) -> None:
            connection.execute(self._INSERT, self._row_values(row))
            connection.commit()

        self._guarded(_add)

    def _fill(self, connection: sqlite3.Connection) -> None:
        rows = [self._row_values(row) for row in self._rebuild_source()]
        connection.execute("DELETE FROM records")
        connection.executemany(self._INSERT, rows)
        connection.commit()

    def rebuild(self) -> int:
        """Re-derive every row from the record files; returns the count."""

        def _rebuild(connection: sqlite3.Connection) -> int:
            self._fill(connection)
            cursor = connection.execute("SELECT COUNT(*) AS n FROM records")
            return int(cursor.fetchone()["n"])

        return int(self._guarded(_rebuild))

    def ensure_built(self) -> None:
        """Build the database now if it is absent or corrupt."""
        if not os.path.exists(self.path):
            self.rebuild()
        else:
            self._guarded(lambda connection: None)

    # ------------------------------------------------------------------
    # Queries (never touch the JSON files)
    # ------------------------------------------------------------------
    def count(self) -> int:
        def _count(connection: sqlite3.Connection) -> int:
            cursor = connection.execute("SELECT COUNT(*) AS n FROM records")
            return int(cursor.fetchone()["n"])

        return int(self._guarded(_count))

    def keys(self) -> list[tuple[str, str]]:
        """Every indexed ``(trace_hash, config_hash)``, sorted."""

        def _keys(connection: sqlite3.Connection) -> list[tuple[str, str]]:
            cursor = connection.execute(
                "SELECT trace_hash, config_hash FROM records "
                "ORDER BY trace_hash, config_hash"
            )
            return [(row["trace_hash"], row["config_hash"]) for row in cursor]

        result: list[tuple[str, str]] = self._guarded(_keys)
        return result

    def has(self, key: tuple[str, str]) -> bool:
        def _has(connection: sqlite3.Connection) -> bool:
            cursor = connection.execute(
                "SELECT 1 FROM records WHERE trace_hash = ? AND config_hash = ?",
                key,
            )
            return cursor.fetchone() is not None

        return bool(self._guarded(_has))

    @staticmethod
    def _where_clause(filters: dict[str, Any]) -> tuple[str, list[Any]]:
        clauses: list[str] = []
        values: list[Any] = []
        for name, value in filters.items():
            if name not in COLUMNS:
                raise ServiceError(
                    f"unknown index column {name!r}; queryable: {', '.join(COLUMNS)}"
                )
            if value is None:
                clauses.append(f"{name} IS NULL")
            else:
                clauses.append(f"{name} = ?")
                values.append(value)
        sql = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return sql, values

    def where(self, limit: int | None = None, **filters: Any) -> list[Row]:
        """Rows matching equality ``filters``, sorted by key.

        Filters name index columns (spec axes, ``trace_name``,
        ``template``, metric columns); ``None`` matches SQL ``NULL``
        (e.g. ``breakeven_override=None``). Served entirely from the
        index — no record file is opened.
        """
        clause, values = self._where_clause(filters)
        sql = (
            f"SELECT * FROM records{clause} ORDER BY trace_hash, config_hash"
        )
        if limit is not None:
            sql += " LIMIT ?"
            values = [*values, int(limit)]

        def _where(connection: sqlite3.Connection) -> list[Row]:
            cursor = connection.execute(sql, values)
            return [dict(row) for row in cursor]

        result: list[Row] = self._guarded(_where)
        return result

    def best(
        self, metric: str, minimize: bool = False, **filters: Any
    ) -> Row | None:
        """The row extremizing ``metric`` among ``filters`` matches.

        ``NULL`` metric values (v1 records, non-numeric payloads) never
        win. Returns ``None`` on an empty match set.

        Unless the caller filters on ``fidelity`` explicitly, only
        ``fidelity="simulate"`` rows compete: a cheap estimated record
        must never answer a question about what the simulator measured.
        Pass ``fidelity="estimate"`` to rank estimates, or
        ``fidelity="any"`` to rank across tiers.
        """
        filters = resolve_fidelity_filter(filters)
        if metric not in COLUMNS:
            raise ServiceError(
                f"unknown index column {metric!r}; queryable: {', '.join(COLUMNS)}"
            )
        clause, values = self._where_clause(filters)
        direction = "ASC" if minimize else "DESC"
        sql = (
            f"SELECT * FROM records{clause} "
            f"ORDER BY ({metric} IS NULL) ASC, {metric} {direction}, "
            "trace_hash, config_hash LIMIT 1"
        )

        def _best(connection: sqlite3.Connection) -> Row | None:
            cursor = connection.execute(sql, values)
            row = cursor.fetchone()
            if row is None or row[metric] is None:
                return None
            return dict(row)

        result: Row | None = self._guarded(_best)
        return result

    def summary(self) -> dict[str, Any]:
        """Aggregate view for ``GET /metrics``: counts + metric ranges."""

        def _summary(connection: sqlite3.Connection) -> dict[str, Any]:
            cursor = connection.execute(
                "SELECT COUNT(*) AS n, COUNT(DISTINCT trace_hash) AS traces "
                "FROM records"
            )
            head = cursor.fetchone()
            metrics: dict[str, Any] = {}
            for name, _ in METRIC_COLUMNS:
                cursor = connection.execute(
                    f"SELECT MIN({name}) AS lo, MAX({name}) AS hi, "
                    f"AVG({name}) AS mean, COUNT({name}) AS n FROM records"
                )
                row = cursor.fetchone()
                metrics[name] = {
                    "min": row["lo"],
                    "max": row["hi"],
                    "mean": row["mean"],
                    "count": row["n"],
                }
            return {
                "records": head["n"],
                "traces": head["traces"],
                "metrics": metrics,
            }

        result: dict[str, Any] = self._guarded(_summary)
        return result
