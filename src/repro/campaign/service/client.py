"""Thin stdlib client for the campaign service HTTP API.

Used by the CLI (``repro campaign submit``) and by anything else that
wants campaign state over the wire without importing the simulator:
every method mirrors one endpoint of
:mod:`repro.campaign.service.server` and returns the decoded JSON
payload. Transport and protocol failures both surface as
:class:`~repro.errors.ServiceError` (with the server's ``error``
message when there is one), so callers need a single except clause.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from urllib.parse import urlencode

from repro.errors import ServiceError


class ServiceClient:
    """Client for one campaign service base URL (``http://host:port``)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        request = urllib.request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                decoded_error = json.loads(detail)
            except json.JSONDecodeError:
                decoded_error = None
            if isinstance(decoded_error, dict) and "error" in decoded_error:
                detail = decoded_error["error"]
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"campaign service unreachable at {self.url}: {exc.reason}"
            ) from exc
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"{method} {path}: non-JSON response") from exc
        if not isinstance(decoded, dict):
            raise ServiceError(f"{method} {path}: unexpected response shape")
        return decoded

    # -- endpoints ------------------------------------------------------
    def status(self) -> dict:
        """``GET /status``."""
        return self._request("GET", "/status")

    def submit(self, spec_payload: dict) -> dict:
        """``POST /specs`` — submit one campaign-spec payload."""
        return self._request("POST", "/specs", payload=spec_payload)

    def records(self, limit: int | None = None, **filters: object) -> dict:
        """``GET /records`` with equality ``filters`` on index columns."""
        params = dict(filters)
        if limit is not None:
            params["limit"] = limit
        query = f"?{urlencode(params)}" if params else ""
        return self._request("GET", f"/records{query}")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    # -- conveniences ---------------------------------------------------
    def wait_drained(self, spec_hash: str, timeout: float = 300.0) -> dict:
        """Poll ``/status`` until ``spec_hash`` reports zero missing.

        Returns that spec's status payload; raises
        :class:`~repro.errors.ServiceError` if the deadline passes or
        the server forgets the spec.
        """
        deadline = time.monotonic() + timeout
        interval = 0.05
        while True:
            status = self.status()
            for entry in status.get("specs", []):
                if entry.get("spec_hash") == spec_hash and not entry.get("missing"):
                    return entry
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"spec {spec_hash[:12]} not drained within {timeout:.0f}s "
                    f"(last error: {status.get('last_error')})"
                )
            time.sleep(interval)
            interval = min(interval * 2, 1.0)
