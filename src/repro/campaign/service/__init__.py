"""Campaign-as-a-service: index, work queue, and HTTP front-end.

Layers on top of the content-addressed :mod:`repro.campaign.store`:

* :mod:`~repro.campaign.service.index` — per-store SQLite index
  (``index.db``) for O(1) membership and file-free queries; derived
  from the record files, rebuilt on loss or corruption.
* :mod:`~repro.campaign.service.queue` — claim-based work queue so many
  worker processes (or hosts sharing a directory) drain one campaign
  with zero double-simulations.
* :mod:`~repro.campaign.service.server` /
  :mod:`~repro.campaign.service.client` — stdlib HTTP/JSON front-end
  (``repro campaign serve``) and the thin client the CLI uses.

Only the index is imported eagerly (the store depends on it); the
queue, server and client import the store and are loaded on demand to
keep :mod:`repro.campaign` import-cycle-free.
"""

from repro.campaign.service.index import INDEX_FILENAME, CampaignIndex, index_row

__all__ = ["INDEX_FILENAME", "CampaignIndex", "index_row"]
