"""Claim-based work queue: many workers drain one campaign directory.

The campaign runner's resume contract (PR 3) already makes reruns cheap
— finished points are skipped — but two *concurrent* processes pointed
at one directory would both see the same missing points and simulate
them twice. This module adds the missing coordination with nothing but
the shared filesystem:

claim → simulate → commit
    A worker takes a point by atomically creating
    ``claims/<point_hash>.json`` (``O_CREAT | O_EXCL`` — exactly one
    creator wins), simulates it, commits the record through
    :meth:`~repro.campaign.store.CampaignStore.put`, appends the commit
    to its ``queue-log/<worker>.jsonl`` line log, and only then releases
    the claim. A point is therefore simulated by at most one live
    worker, on one host or many sharing the directory.

leases (TTL + heartbeat)
    A claim is a *lease*, not a lock: its file's mtime is refreshed by a
    heartbeat thread every quarter TTL while the worker lives. A worker
    that dies mid-claim stops heartbeating; once the mtime is older than
    the TTL any other worker may steal the claim (atomic rename into a
    private tombstone, so two stealers cannot both win) and simulate the
    point itself. After stealing — or winning any claim — a worker
    re-checks the store before simulating, so a claim left behind
    *after* a successful commit is released without recomputation.

The commit logs exist for auditability: concatenating every
``queue-log/*.jsonl`` line must name each point identity at most once —
the tests assert exactly that across concurrent drains.

:func:`drain_campaign` is the entry point ``run_campaign(workers=N)``
delegates to; ``workers > 1`` fans complete claim→simulate→commit loops
out over a process pool (state shipped via the pool initializer, as
everywhere else in the tree), while each worker may additionally use
``parallel=M`` to shard its own streaming passes.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.aging.lut import LifetimeLUT
from repro.analysis.sweep import _breakeven_group_ids, simulate_selected
from repro.campaign.run import _streaming_source, _write_manifest, campaign_status
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore, point_hash
from repro.core.plan import TracePlan
from repro.core.results import SimulationResult
from repro.errors import ServiceError

#: Subdirectory of a campaign directory holding one lease file per
#: in-flight point.
CLAIMS_DIRNAME = "claims"

#: Subdirectory holding one append-only JSONL commit log per worker.
LOG_DIRNAME = "queue-log"

#: Default lease time-to-live in seconds; a claim whose file mtime is
#: older than this is considered abandoned and may be stolen.
DEFAULT_LEASE_TTL = 60.0


def _lease_clock() -> float:
    """Wall-clock seconds, for comparing against claim-file mtimes.

    Lease scheduling is the one sanctioned wall-clock read in the
    library: it decides only *who simulates*, never *what is simulated*
    — stored results remain bit-identical regardless of clock skew.
    """
    return time.time()  # reprolint: disable=REPRO007


class WorkQueue:
    """Leased claims over one campaign directory's missing points.

    Parameters
    ----------
    directory:
        The shared campaign directory (claims and commit logs live in
        ``claims/`` and ``queue-log/`` beside ``results/``).
    worker_id:
        Identity written into claims and the commit log; defaults to
        ``<hostname>-<pid>``, unique per worker process.
    lease_ttl:
        Seconds a claim survives without a heartbeat before any other
        worker may steal it.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        self.directory = os.fspath(directory)
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"{socket.gethostname()}-{os.getpid()}"
        )
        self.lease_ttl = float(lease_ttl)
        self._held: dict[tuple[str, str], str] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._heartbeat: threading.Thread | None = None

    # -- paths ----------------------------------------------------------
    @property
    def claims_dir(self) -> str:
        return os.path.join(self.directory, CLAIMS_DIRNAME)

    @property
    def log_path(self) -> str:
        return os.path.join(self.directory, LOG_DIRNAME, f"{self.worker_id}.jsonl")

    def _claim_path(self, key: tuple[str, str]) -> str:
        return os.path.join(self.claims_dir, f"{point_hash(key)}.json")

    # -- leases ---------------------------------------------------------
    def _read_holder(self, path: str) -> str | None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return str(json.load(handle).get("worker"))
        except (OSError, ValueError, AttributeError):
            # Mid-write, already stolen, or garbage: holder unknown.
            return None

    def _steal_if_stale(self, path: str) -> bool:
        """Take down an expired claim; ``True`` if *we* removed it.

        The holder observed before the expiry check must match the
        holder found after the atomic rename — otherwise the claim was
        re-created by a live worker in the window and is handed back.
        """
        observed = self._read_holder(path)
        try:
            age = _lease_clock() - os.stat(path).st_mtime
        except OSError:
            return False  # released (or stolen) under us
        if age <= self.lease_ttl:
            return False
        tomb = f"{path}.{self.worker_id}.steal"
        try:
            os.rename(path, tomb)
        except OSError:
            return False  # another stealer won the rename
        stolen = self._read_holder(tomb)
        if observed is not None and stolen is not None and stolen != observed:
            # The stale claim was released and re-claimed between our
            # check and our rename; restore the live claim untouched.
            try:
                os.rename(tomb, path)
            except OSError:
                pass
            return False
        try:
            os.unlink(tomb)
        except OSError:
            pass
        return True

    def try_claim(self, key: tuple[str, str]) -> bool:
        """Atomically lease ``key``; ``False`` if someone else holds it."""
        os.makedirs(self.claims_dir, exist_ok=True)
        path = self._claim_path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if not self._steal_if_stale(path):
                return False
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False  # another worker re-claimed first
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "worker": self.worker_id,
                        "trace_hash": key[0],
                        "config_hash": key[1],
                    }
                )
            )
        with self._lock:
            self._held[key] = path
        self._ensure_heartbeat()
        return True

    def release(self, key: tuple[str, str]) -> None:
        """Give up a held lease (no-op for keys this queue never won)."""
        with self._lock:
            path = self._held.pop(key, None)
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def log_commit(self, key: tuple[str, str]) -> None:
        """Append one committed simulation to this worker's line log."""
        os.makedirs(os.path.dirname(self.log_path), exist_ok=True)
        line = json.dumps(
            {
                "worker": self.worker_id,
                "trace_hash": key[0],
                "config_hash": key[1],
            }
        )
        with open(self.log_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    # -- heartbeat ------------------------------------------------------
    def _ensure_heartbeat(self) -> None:
        if self._heartbeat is not None and self._heartbeat.is_alive():
            return
        self._stop.clear()
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="workqueue-heartbeat", daemon=True
        )
        self._heartbeat.start()

    def _heartbeat_loop(self) -> None:
        interval = max(self.lease_ttl / 4.0, 0.05)
        while not self._stop.wait(interval):
            with self._lock:
                paths = list(self._held.values())
            for path in paths:
                try:
                    os.utime(path, None)
                except OSError:
                    pass

    def close(self) -> None:
        """Stop the heartbeat and release every held lease."""
        self._stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=5.0)
            self._heartbeat = None
        with self._lock:
            held = list(self._held)
        for key in held:
            self.release(key)

    def __enter__(self) -> WorkQueue:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _drain_pass(
    spec: CampaignSpec,
    store: CampaignStore,
    queue: WorkQueue,
    lut: LifetimeLUT,
    parallel: int | None,
    claim_batch: int,
) -> int:
    """One claim→simulate→commit sweep; returns points simulated here.

    Walks every trace, leases whatever missing points it can win, and
    simulates them through the exact batch machinery of the plain
    runner — breakeven groups still collapse, streaming traces still
    run one shared pass (over the *claimed* subset) and may shard it
    with ``parallel``. Points leased by other live workers are left
    alone; the caller loops until the campaign is covered.
    """
    names = spec.axis_names
    combos = spec.combos()
    group_ids = _breakeven_group_ids(names, spec.axes)
    simulated = 0
    for trace_spec in spec.traces:
        points = spec.trace_points(trace_spec)
        keys = [point.key() for point in points]
        stream = _streaming_source(spec, trace_spec)
        trace = None
        plan = None
        while True:
            missing = [i for i, key in enumerate(keys) if key not in store]
            if not missing:
                break
            # Streaming traces amortize one pass over every claimable
            # point; in-memory traces lease small batches so concurrent
            # workers interleave within a single trace too.
            want = len(missing) if stream is not None else max(claim_batch, 1)
            batch: list[int] = []
            for i in missing:
                if len(batch) >= want:
                    break
                if not queue.try_claim(keys[i]):
                    continue
                if keys[i] in store:
                    # Claim outlived its commit (or we stole one left
                    # behind by a crash after put): nothing to redo.
                    queue.release(keys[i])
                    continue
                batch.append(i)
            if not batch:
                break  # everything left is leased to live workers
            try:
                batch_combos = [combos[i] for i in batch]
                batch_groups = (
                    [group_ids[i] for i in batch] if group_ids is not None else None
                )

                def on_result(
                    j: int,
                    result: SimulationResult,
                    _batch: list[int] = batch,
                    _keys: list[tuple[str, str]] = keys,
                ) -> None:
                    key = _keys[_batch[j]]
                    store.put(key, result)
                    queue.log_commit(key)
                    queue.release(key)

                if stream is not None:
                    from repro.core.streamsim import stream_selected

                    stream_selected(
                        spec.base,
                        stream,
                        names,
                        batch_combos,
                        group_ids=batch_groups,
                        lut=lut,
                        engine=spec.engine,
                        on_result=on_result,
                        parallel=parallel,
                    )
                else:
                    if trace is None:
                        trace = trace_spec.build()
                        plan = TracePlan(trace)
                    simulate_selected(
                        spec.base,
                        trace,
                        names,
                        batch_combos,
                        group_ids=batch_groups,
                        lut=lut,
                        engine=spec.engine,
                        parallel=parallel,
                        plan=plan,
                        on_result=on_result,
                    )
                simulated += len(batch)
            finally:
                # Normally a no-op (on_result released each lease);
                # after a failure this frees the un-simulated leases so
                # other workers can take over immediately.
                for i in batch:
                    queue.release(keys[i])
    return simulated


def drain_worker(
    spec: CampaignSpec,
    directory: str | os.PathLike[str],
    lut: LifetimeLUT | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    claim_batch: int = 1,
    parallel: int | None = None,
    poll_interval: float = 0.1,
    timeout: float | None = None,
    worker_id: str | None = None,
) -> int:
    """Run one worker's claim loop until the campaign is fully covered.

    Returns the number of points *this* worker simulated. Blocks (poll
    + sleep) while the remaining points are leased to other workers —
    their commits, or their leases expiring, make progress; ``timeout``
    (seconds, monotonic) bounds the wait and raises
    :class:`~repro.errors.ServiceError` on a stall.
    """
    shared_lut = lut if lut is not None else LifetimeLUT.default()
    store = CampaignStore(directory)
    deadline = time.monotonic() + timeout if timeout is not None else None
    simulated = 0
    with WorkQueue(directory, worker_id=worker_id, lease_ttl=lease_ttl) as queue:
        while True:
            simulated += _drain_pass(
                spec, store, queue, shared_lut, parallel, claim_batch
            )
            if campaign_status(spec, store).missing == 0:
                return simulated
            if deadline is not None and time.monotonic() > deadline:
                status = campaign_status(spec, store)
                raise ServiceError(
                    f"campaign drain stalled: {status.missing} of "
                    f"{status.total} points still missing after timeout"
                )
            time.sleep(poll_interval)


@dataclass
class _DrainState:
    """Per-worker drain parameters shipped via the pool initializer."""

    spec: CampaignSpec
    directory: str
    lut: LifetimeLUT
    lease_ttl: float
    claim_batch: int
    parallel: int | None
    timeout: float | None


#: Installed once by the pool initializer so task payloads carry only
#: the worker ordinal.
_drain_state: _DrainState | None = None


def _init_drain_worker(
    spec_payload: dict[str, Any],
    directory: str,
    lut: LifetimeLUT,
    lease_ttl: float,
    claim_batch: int,
    parallel: int | None,
    timeout: float | None,
    engines: tuple[Any, ...] = (),
    metrics: tuple[Any, ...] = (),
    templates: tuple[Any, ...] = (),
) -> None:
    """Pool initializer: the spec, LUT and the parent's plugins.

    Mirrors the sweep pool's initializer — under spawn the worker
    process knows nothing, so the parent's custom engine/metric/template
    registrations travel here once per worker, and the spec travels as
    its payload dict (always picklable) rather than as live objects.
    """
    from repro.core.engine import install_engines
    from repro.core.metrics import install_metrics, install_templates

    install_templates(templates)
    install_metrics(metrics)
    install_engines(engines)
    global _drain_state
    _drain_state = _DrainState(
        spec=CampaignSpec.from_dict(spec_payload),
        directory=directory,
        lut=lut,
        lease_ttl=lease_ttl,
        claim_batch=claim_batch,
        parallel=parallel,
        timeout=timeout,
    )


def _drain_task(ordinal: int) -> int:
    """Pool task: run one full drain worker (module-level, picklable)."""
    assert _drain_state is not None  # installed by _init_drain_worker
    state = _drain_state
    return drain_worker(
        state.spec,
        state.directory,
        lut=state.lut,
        lease_ttl=state.lease_ttl,
        claim_batch=state.claim_batch,
        parallel=state.parallel,
        timeout=state.timeout,
        worker_id=f"{socket.gethostname()}-{os.getpid()}-w{ordinal}",
    )


def drain_campaign(
    spec: CampaignSpec,
    directory: str | os.PathLike[str],
    lut: LifetimeLUT | None = None,
    workers: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    claim_batch: int = 1,
    parallel: int | None = None,
    timeout: float | None = None,
) -> int:
    """Drain ``spec`` with ``workers`` claim-loop processes.

    ``workers=1`` runs the claim loop in-process (still safe alongside
    other hosts' workers on a shared directory); ``workers>1`` fans
    complete loops out over a process pool. Returns the total number of
    points simulated by the workers of *this* call — a fully covered
    campaign drains with zero.
    """
    if workers < 1:
        raise ServiceError(f"workers must be >= 1, got {workers}")
    shared_lut = lut if lut is not None else LifetimeLUT.default()
    store = CampaignStore(directory)
    _write_manifest(spec, store)
    if campaign_status(spec, store).missing == 0:
        return 0
    if workers == 1:
        return drain_worker(
            spec,
            directory,
            lut=shared_lut,
            lease_ttl=lease_ttl,
            claim_batch=claim_batch,
            parallel=parallel,
            timeout=timeout,
        )
    from repro.core.engine import custom_engines
    from repro.core.metrics import custom_metrics, custom_templates

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_drain_worker,
        initargs=(
            spec.to_dict(),
            os.fspath(directory),
            shared_lut,
            lease_ttl,
            claim_batch,
            parallel,
            timeout,
            custom_engines(),
            custom_metrics(),
            custom_templates(),
        ),
    ) as pool:
        counts = list(pool.map(_drain_task, range(workers)))
    return sum(counts)
