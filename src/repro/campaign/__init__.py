"""Declarative campaigns: serializable specs, content-addressed results.

This package is the public experiment API. An experiment is described
by data, not by code:

* :mod:`repro.campaign.codec` — exact, versioned ``to_dict``/
  ``from_dict`` round-trips for :class:`~repro.core.config.ArchitectureConfig`,
  :class:`~repro.cache.geometry.CacheGeometry` and
  :class:`~repro.power.energy.TechnologyParams`, plus canonical-JSON
  content hashing;
* :mod:`repro.campaign.tracespec` — :class:`TraceSpec`, a workload
  named by data (synthetic profile + seed + schedule, or a trace file)
  behind one extensible registry;
* :mod:`repro.campaign.spec` — :class:`CampaignSpec` = trace specs ×
  config axes × engine, serializable to a JSON spec file;
* :mod:`repro.campaign.store` — :class:`CampaignStore`, one atomic
  record per ``(trace_hash, config_hash)`` under a campaign directory;
* :mod:`repro.campaign.run` — :func:`run_campaign`, which simulates
  only the points the store is missing;
* :mod:`repro.campaign.service` — the campaign-as-a-service layer:
  per-store SQLite index, claim-based work queue
  (``run_campaign(workers=N)``), and the stdlib HTTP front-end behind
  ``repro campaign serve``.

Content-hash guarantees
-----------------------
Every identity in this package is a SHA-256 over *canonical JSON*
(sorted keys, compact separators, NaN rejected, all defaults written
explicitly by the encoders). That buys three properties the resumable
store relies on:

1. **Stability** — hashes are identical across processes, platforms
   and Python versions; float fields use shortest-round-trip ``repr``
   formatting, which is exact for IEEE-754 doubles.
2. **Semantic identity** — two configs (or trace specs) hash equally
   iff they are equal as objects: encoders never elide defaults, and
   decoders reject unknown keys, so each object has exactly one
   encoding.
3. **Point addressing** — a result is keyed by the pair
   ``(trace_hash, config_hash)`` alone. Anything that cannot change
   the simulated numbers (worker count, campaign name, which spec file
   a point came from) is excluded from the key, so every rerun —
   resumed, widened, or from a different campaign sharing points —
   reuses the same entries.

For deterministic trace sources (``synthetic``, or ``file`` with a
``sha256`` checksum) equal hashes imply bit-identical traces and hence
bit-identical results; results stored under a key can be reproduced by
rebuilding the config with :func:`~repro.campaign.codec.config_from_dict`
and resimulating.
"""

from repro.campaign.codec import (
    CodecError,
    config_from_dict,
    config_hash,
    config_to_dict,
    content_hash,
    geometry_from_dict,
    geometry_to_dict,
    technology_from_dict,
    technology_to_dict,
)
from repro.campaign.run import (
    CampaignPoint,
    CampaignResult,
    CampaignStatus,
    campaign_status,
    run_campaign,
    status_payload,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore, point_hash
from repro.campaign.tracespec import TraceSource, TraceSpec, register_trace_source

__all__ = [
    "CodecError",
    "config_to_dict",
    "config_from_dict",
    "config_hash",
    "content_hash",
    "geometry_to_dict",
    "geometry_from_dict",
    "technology_to_dict",
    "technology_from_dict",
    "TraceSpec",
    "TraceSource",
    "register_trace_source",
    "CampaignSpec",
    "CampaignStore",
    "CampaignPoint",
    "CampaignResult",
    "CampaignStatus",
    "campaign_status",
    "run_campaign",
    "status_payload",
    "point_hash",
]
