"""Declarative campaign specifications.

A :class:`CampaignSpec` is the first-class representation of "an
experiment": which workloads (a list of :class:`~repro.campaign.tracespec.TraceSpec`),
which configurations (a base :class:`~repro.core.config.ArchitectureConfig`
plus named axes, exactly like :func:`repro.analysis.sweep.sweep`), and
which engine. It is pure data — serializable to a JSON file, editable by
hand, and content-hashed.

Content-hash guarantee
----------------------
:meth:`CampaignSpec.spec_hash` hashes the canonical encoded form
(sorted keys, defaults explicit, axis values encoded through the exact
config codec). Two spec files that decode to equal specs hash equally
regardless of formatting or key order; any change to a workload, the
base config, an axis value, or the engine changes the hash. Execution
knobs that cannot change results (``parallel`` worker counts) are
deliberately *not* part of the spec, so they can never fragment a
store.

Every grid point also has its own identity: the pair
``(trace_hash, config_hash)`` of its workload spec and its fully
substituted config. The store keys on that pair, which is what makes
reruns incremental — a widened axis adds new pairs, and only those are
simulated.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.campaign.codec import (
    CodecError,
    config_from_dict,
    config_result_hash,
    config_to_dict,
    content_hash,
    geometry_from_dict,
    geometry_to_dict,
    technology_from_dict,
    technology_to_dict,
)
from repro.analysis.planner import SearchSpec
from repro.campaign.tracespec import TraceSpec
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.power.energy import TechnologyParams

#: Version of the campaign spec file format.
SPEC_FORMAT_VERSION = 1


def _encode_axis_value(name: str, value):
    """Encode one axis value to JSON types, field-aware."""
    if value is None:
        return None
    if name == "geometry":
        if not isinstance(value, CacheGeometry):
            raise CodecError("geometry axis values must be CacheGeometry objects")
        return geometry_to_dict(value)
    if name == "technology":
        if not isinstance(value, TechnologyParams):
            raise CodecError("technology axis values must be TechnologyParams objects")
        return technology_to_dict(value)
    if name == "update_events":
        return list(value)
    if isinstance(value, (bool, int, float, str)):
        return value
    raise CodecError(
        f"axis {name!r}: cannot encode value of type {type(value).__name__}"
    )


def _decode_axis_value(name: str, value):
    """Inverse of :func:`_encode_axis_value`."""
    if value is None:
        return None
    if name == "geometry":
        return geometry_from_dict(value)
    if name == "technology":
        return technology_from_dict(value)
    if name == "update_events":
        if not isinstance(value, (list, tuple)):
            raise CodecError("update_events axis values must be lists")
        return tuple(int(c) for c in value)
    return value


@dataclass(frozen=True)
class CampaignPointSpec:
    """One fully substituted grid point of a campaign.

    ``family`` is the engine's *result family* (see
    :func:`repro.core.engine.result_family`): banked engines share
    store entries, engines simulating a different machine get their own
    point identities. ``fidelity`` is the engine's result fidelity
    (:func:`repro.core.engine.result_fidelity`): estimated records key
    separately from simulated ones, so a prediction can never satisfy —
    or be overwritten by — a measurement of the same point.
    """

    trace: TraceSpec
    parameters: dict
    config: ArchitectureConfig
    family: str = "banked"
    fidelity: str = "simulate"

    def key_at(self, fidelity: str) -> tuple[str, str]:
        """The store key this point would have at ``fidelity``."""
        return (
            self.trace.trace_hash(),
            config_result_hash(self.config, self.family, fidelity),
        )

    def key(self) -> tuple[str, str]:
        """The store key ``(trace_hash, result hash)``."""
        return self.key_at(self.fidelity)


@dataclass(frozen=True)
class CampaignSpec:
    """Serializable description of a whole simulation campaign.

    Attributes
    ----------
    name:
        Human label; carried into the campaign directory metadata (not
        part of any point's identity).
    traces:
        Workload specs; the config grid runs once per workload.
    base:
        Configuration template the axes are substituted into.
    axes:
        ``field name -> candidate values`` (any
        :class:`ArchitectureConfig` field). May be empty: the campaign
        then runs exactly the base config per trace.
    engine:
        Engine selector forwarded to the sweep engine; any name in the
        engine registry (``repro engines``) is valid. Part of the spec
        hash (it describes *how* to run). Engines of the same *result
        family* are bit-identical by construction, so their store
        entries are shared (``fast``/``reference``/``auto``); engines
        of a different family (``finegrain``) key their records
        separately.
    search:
        Optional :class:`~repro.analysis.planner.SearchSpec` describing
        how the grid is explored. ``None`` (the default, and the only
        value the pre-search spec format could express) means
        exhaustive execution; a spec file opts in with a ``"search"``
        block. Part of the spec hash only when present, so every
        pre-existing spec file keeps its hash.
    """

    name: str
    traces: tuple[TraceSpec, ...]
    base: ArchitectureConfig
    axes: dict = field(default_factory=dict)
    engine: str = "auto"
    search: "SearchSpec | None" = None

    def __post_init__(self) -> None:
        # Registry-backed: any engine registered via register_engine()
        # is a valid campaign engine; unknown names fail here with the
        # registered list in the message.
        from repro.core.engine import validate_engine

        if not self.traces:
            raise CodecError("a campaign needs at least one trace spec")
        object.__setattr__(self, "traces", tuple(self.traces))
        field_names = set(ArchitectureConfig.__dataclass_fields__)
        axes = {}
        for axis_name, values in dict(self.axes).items():
            if axis_name not in field_names:
                raise CodecError(
                    f"{axis_name!r} is not an ArchitectureConfig field"
                )
            values = list(values)
            if not values:
                raise CodecError(f"axis {axis_name!r} has no values")
            axes[axis_name] = values
        object.__setattr__(self, "axes", axes)
        validate_engine(self.engine)
        if self.search is not None and not isinstance(self.search, SearchSpec):
            raise CodecError(
                "campaign 'search' must be a SearchSpec (or None for "
                f"exhaustive), got {type(self.search).__name__}"
            )

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> list[str]:
        """Axis names in declaration order."""
        return list(self.axes)

    def combos(self) -> list[tuple]:
        """Cartesian product of the axes (one empty combo when no axes)."""
        return list(itertools.product(*(self.axes[n] for n in self.axis_names)))

    def trace_points(self, trace: TraceSpec) -> list[CampaignPointSpec]:
        """The grid points of one trace, in grid order.

        The single place point identity is derived — the runner, the
        status command and :meth:`points` all substitute axes into the
        base config and key the store through here, so they can never
        disagree about which points exist.

        Raises the underlying configuration error if an axis combination
        is invalid (e.g. a dynamic policy with one bank) — a campaign
        grid must be fully valid before anything runs.
        """
        from repro.core.engine import result_family, result_fidelity

        names = self.axis_names
        family = result_family(self.engine)
        fidelity = result_fidelity(self.engine)
        points = []
        for combo in self.combos():
            parameters = dict(zip(names, combo))
            points.append(
                CampaignPointSpec(
                    trace=trace,
                    parameters=parameters,
                    config=replace(self.base, **parameters),
                    family=family,
                    fidelity=fidelity,
                )
            )
        return points

    def points(self) -> Iterator[CampaignPointSpec]:
        """Yield every (trace, parameters, config) point in grid order."""
        for trace in self.traces:
            yield from self.trace_points(trace)

    def num_points(self) -> int:
        """Total grid size across all traces."""
        combos = 1
        for values in self.axes.values():
            combos *= len(values)
        return combos * len(self.traces)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-shaped form (defaults explicit).

        The ``"search"`` key appears only when a search block is set:
        a spec without one encodes exactly as the pre-search format
        did, keeping every existing spec file's hash stable.
        """
        payload = {
            "version": SPEC_FORMAT_VERSION,
            "name": self.name,
            "engine": self.engine,
            "traces": [trace.to_dict() for trace in self.traces],
            "base": config_to_dict(self.base),
            "axes": {
                name: [_encode_axis_value(name, v) for v in values]
                for name, values in self.axes.items()
            },
        }
        if self.search is not None:
            payload["search"] = self.search.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Decode a spec payload (e.g. a parsed spec file)."""
        if not isinstance(payload, dict):
            raise CodecError(
                f"campaign payload must be a dict, got {type(payload).__name__}"
            )
        version = payload.get("version", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise CodecError(f"unsupported campaign spec version {version!r}")
        unknown = set(payload) - {
            "version", "name", "engine", "traces", "base", "axes", "search",
        }
        if unknown:
            raise CodecError(f"unknown campaign spec fields: {sorted(unknown)}")
        traces = payload.get("traces")
        if not isinstance(traces, list) or not traces:
            raise CodecError("campaign spec needs a non-empty 'traces' list")
        if "base" not in payload:
            raise CodecError("campaign spec missing 'base' config")
        axes_payload = payload.get("axes", {})
        if not isinstance(axes_payload, dict):
            raise CodecError("campaign 'axes' must be a dict of value lists")
        axes = {
            name: [_decode_axis_value(name, v) for v in values]
            for name, values in axes_payload.items()
        }
        search_payload = payload.get("search")
        if search_payload is not None and not isinstance(search_payload, dict):
            raise CodecError("campaign 'search' must be a dict block")
        return cls(
            name=str(payload.get("name", "")),
            traces=tuple(TraceSpec.from_dict(t) for t in traces),
            base=config_from_dict(payload["base"]),
            axes=axes,
            engine=str(payload.get("engine", "auto")),
            search=(
                SearchSpec.from_dict(search_payload)
                if search_payload is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Files and identity
    # ------------------------------------------------------------------
    def spec_hash(self) -> str:
        """Content hash of the canonical form (see module docstring)."""
        return content_hash(self.to_dict())

    def save(self, path: str | os.PathLike) -> None:
        """Write the spec as a JSON file (atomically)."""
        from repro.core.serialize import write_json_atomic

        write_json_atomic(path, self.to_dict())

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CampaignSpec":
        """Read a spec file written by :meth:`save` (or by hand)."""
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CodecError(f"{path}: not valid JSON ({exc})") from exc
        return cls.from_dict(payload)
