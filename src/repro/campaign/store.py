"""Content-addressed persistence of campaign results.

A :class:`CampaignStore` holds exactly one result record per point
identity ``(trace_hash, config_hash)`` — the content hashes of the
point's :class:`~repro.campaign.tracespec.TraceSpec` and of its fully
substituted :class:`~repro.core.config.ArchitectureConfig` (see
:mod:`repro.campaign.codec` for the guarantees those hashes carry).
Because the key is derived from *what was simulated* and not from when
or how, reruns, widened grids, interrupted campaigns and even different
campaign specs that share points all converge on the same entries.

Two tiers:

* **memory** — live :class:`SimulationResult` objects from this
  process, plus the record payloads (the runner's old memo dict is
  exactly this tier);
* **disk** (optional) — one JSON file per record, written atomically so
  a crash mid-campaign can never corrupt an entry. A fresh process
  pointed at the directory sees every finished point and can rebuild
  bit-identical results from the records.

Disk layout
-----------
Records live under ``<directory>/results/`` in a *sharded* layout:
``results/<ph[:2]>/<ph[2:]>.json`` where ``ph`` is the point hash (the
content hash of the key pair), giving 256 balanced subdirectories so a
store holding millions of records never puts them all in one directory.
Stores written before the sharded layout used flat files
``results/<short_trace>-<short_config>.json``; reads transparently check
both layouts, and :meth:`CampaignStore.migrate` rewrites a flat store in
place — each move is one atomic :func:`os.replace` of the *same bytes*,
so migration is resumable, idempotent, and byte-preserving.

Opening a store is O(1): nothing is scanned or created at construction.
Membership tests are path-existence checks and enumeration is served by
the per-store SQLite index (:mod:`repro.campaign.service.index`), which
is derived from — and rebuilt from — the record files; the files remain
the only source of truth.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.campaign.codec import content_hash, short_hash
from repro.campaign.service.index import (
    COLUMNS,
    INDEX_FILENAME,
    CampaignIndex,
    Row,
    index_row,
    resolve_fidelity_filter,
)
from repro.errors import ServiceError
from repro.core.results import SimulationResult
from repro.core.serialize import (
    ResultRecord,
    read_record_file,
    result_to_dict,
    write_json_atomic,
)

if TYPE_CHECKING:
    from repro.aging.lut import LifetimeLUT

#: Subdirectory of a campaign directory holding one file per record.
RESULTS_DIRNAME = "results"

#: Filename length of a shard subdirectory (leading hex of the point hash).
SHARD_PREFIX_LEN = 2


def point_hash(key: tuple[str, str]) -> str:
    """Content hash of a point identity (names the record's shard file)."""
    return content_hash({"trace_hash": key[0], "config_hash": key[1]})


class CampaignStore:
    """One result record per (trace-hash, config-hash) point.

    Parameters
    ----------
    directory:
        Campaign directory for the disk tier; ``None`` keeps the store
        memory-only (the experiment runner's default). Construction
        never touches the filesystem — records are found lazily, so
        opening a store over millions of records costs nothing until
        something is actually read.
    """

    def __init__(self, directory: str | os.PathLike[str] | None = None) -> None:
        self.directory = os.fspath(directory) if directory is not None else None
        self._records: dict[tuple[str, str], dict[str, Any]] = {}
        self._results: dict[tuple[str, str], SimulationResult] = {}
        self._index: CampaignIndex | None = None
        if self.directory is not None:
            self._index = CampaignIndex(
                os.path.join(self.directory, INDEX_FILENAME), self._iter_disk_rows
            )

    # ------------------------------------------------------------------
    # Disk layout
    # ------------------------------------------------------------------
    @property
    def _results_dir(self) -> str:
        assert self.directory is not None  # disk-tier helpers are gated on it
        return os.path.join(self.directory, RESULTS_DIRNAME)

    def _shard_path(self, key: tuple[str, str]) -> str:
        digest = point_hash(key)
        return os.path.join(
            self._results_dir,
            digest[:SHARD_PREFIX_LEN],
            f"{digest[SHARD_PREFIX_LEN:]}.json",
        )

    def _legacy_path(self, key: tuple[str, str]) -> str:
        trace_hash, config_hash = key
        name = f"{short_hash(trace_hash)}-{short_hash(config_hash)}.json"
        return os.path.join(self._results_dir, name)

    def _disk_path(self, key: tuple[str, str]) -> str | None:
        """The record file for ``key`` in either layout, or ``None``."""
        if self.directory is None:
            return None
        for path in (self._shard_path(key), self._legacy_path(key)):
            if os.path.isfile(path):
                return path
        return None

    def _iter_disk_files(self) -> Iterator[str]:
        """Every record file on disk (flat first, then sharded), sorted."""
        results_dir = self._results_dir
        if not os.path.isdir(results_dir):
            return
        shard_dirs: list[str] = []
        for entry in sorted(os.listdir(results_dir)):
            path = os.path.join(results_dir, entry)
            if entry.endswith(".json") and os.path.isfile(path):
                yield path
            elif len(entry) == SHARD_PREFIX_LEN and os.path.isdir(path):
                shard_dirs.append(path)
        for shard_dir in shard_dirs:
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def _iter_disk_rows(self) -> Iterator[Row]:
        """Index rows for every record file (the index rebuild source)."""
        assert self.directory is not None
        for path in self._iter_disk_files():
            key, record = read_record_file(path)
            rel_path = os.path.relpath(path, self.directory)
            yield index_row(key[0], key[1], rel_path, record)

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------
    @property
    def index(self) -> CampaignIndex | None:
        """The store's SQLite index (``None`` for memory-only stores)."""
        return self._index

    def _ready_index(self) -> CampaignIndex | None:
        """The index, built now if records exist but the db does not.

        Returns ``None`` (and touches nothing) when the store has no
        results directory at all, so read-only opens of missing or
        still-empty campaigns never create files.
        """
        if self._index is None or not os.path.isdir(self._results_dir):
            return None
        self._index.ensure_built()
        return self._index

    def rebuild_index(self) -> int:
        """Re-derive ``index.db`` from the record files; returns rows."""
        if self._index is None:
            return 0
        return self._index.rebuild()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _disk_keys(self) -> list[tuple[str, str]]:
        index = self._ready_index()
        if index is None:
            return []
        return index.keys()

    def __len__(self) -> int:
        if self.directory is None:
            return len(self._records)
        return len({*self._disk_keys(), *self._records})

    def __contains__(self, key: tuple[str, str]) -> bool:
        if key in self._records:
            return True
        return self._disk_path(key) is not None

    def keys(self) -> Iterator[tuple[str, str]]:
        """All stored point identities (sorted for disk-backed stores)."""
        if self.directory is None:
            return iter(self._records)
        return iter(sorted({*self._disk_keys(), *self._records}))

    def _load_payload(self, key: tuple[str, str]) -> dict[str, Any] | None:
        payload = self._records.get(key)
        if payload is not None:
            return payload
        path = self._disk_path(key)
        if path is None:
            return None
        _, record = read_record_file(path)
        self._records[key] = record
        return record

    def get_record(self, key: tuple[str, str]) -> ResultRecord | None:
        """The stored record for ``key``, or ``None``."""
        payload = self._load_payload(key)
        if payload is None:
            return None
        return ResultRecord.from_dict(payload)

    def get_result(
        self, key: tuple[str, str], lut: LifetimeLUT | None = None
    ) -> SimulationResult | None:
        """The full result for ``key``, or ``None`` if absent.

        Results simulated by this process come back as the very same
        object (the memo-dict contract); results known only as records
        are rebuilt bit-identically via
        :meth:`~repro.core.serialize.ResultRecord.to_result` and then
        cached in the live tier.
        """
        live = self._results.get(key)
        if live is not None:
            return live
        record = self.get_record(key)
        if record is None:
            return None
        result = record.to_result(lut)
        self._results[key] = result
        return result

    def put(
        self, key: tuple[str, str], result: SimulationResult
    ) -> dict[str, Any]:
        """Store ``result`` under ``key`` in both tiers; returns its payload."""
        payload = result_to_dict(result)
        self._records[key] = payload
        self._results[key] = result
        if self.directory is not None:
            path = self._shard_path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            write_json_atomic(
                path,
                {
                    "key": {"trace_hash": key[0], "config_hash": key[1]},
                    "record": payload,
                },
            )
            # A record written before the sharded layout is superseded
            # by the shard file; drop it so each key has one file.
            try:
                os.unlink(self._legacy_path(key))
            except OSError:
                pass
            if self._index is not None:
                rel_path = os.path.relpath(path, self.directory)
                self._index.add(index_row(key[0], key[1], rel_path, payload))
        return payload

    def records(self) -> list[ResultRecord]:
        """Every stored record (stable key order)."""
        out: list[ResultRecord] = []
        for key in self.keys():
            record = self.get_record(key)
            if record is not None:
                out.append(record)
        return out

    # ------------------------------------------------------------------
    # Index-backed queries
    # ------------------------------------------------------------------
    def _memory_rows(self) -> list[Row]:
        return [
            index_row(key[0], key[1], "", payload)
            for key, payload in sorted(self._records.items())
        ]

    @staticmethod
    def _check_columns(names: Iterable[str]) -> None:
        """Same filter validation the SQLite index applies."""
        for name in names:
            if name not in COLUMNS:
                raise ServiceError(
                    f"unknown index column {name!r}; queryable: "
                    f"{', '.join(COLUMNS)}"
                )

    def where(self, limit: int | None = None, **filters: Any) -> list[Row]:
        """Index rows matching equality ``filters`` (axes or metrics).

        Disk-backed stores answer straight from the SQLite index without
        opening a single record file; memory-only stores filter their
        payloads in Python with the same semantics.
        """
        index = self._ready_index()
        if index is not None:
            return index.where(limit=limit, **filters)
        self._check_columns(filters)
        rows = [
            row
            for row in self._memory_rows()
            if all(row.get(name) == value for name, value in filters.items())
        ]
        return rows[:limit] if limit is not None else rows

    def best(
        self, metric: str, minimize: bool = False, **filters: Any
    ) -> Row | None:
        """The indexed row extremizing ``metric`` among ``filters`` matches.

        Defaults to ``fidelity="simulate"`` rows (estimated records
        never win a measurement query); pass ``fidelity="estimate"`` or
        ``fidelity="any"`` to rank other tiers.
        """
        index = self._ready_index()
        if index is not None:
            return index.best(metric, minimize=minimize, **filters)
        filters = resolve_fidelity_filter(filters)
        self._check_columns([metric])
        rows = [row for row in self.where(**filters) if row.get(metric) is not None]
        if not rows:
            return None
        return (min if minimize else max)(rows, key=lambda row: row[metric])

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate(self) -> int:
        """Rewrite a flat (pre-shard) store into the sharded layout.

        Each flat ``results/*.json`` file is moved — same bytes — to its
        shard path with one atomic :func:`os.replace`, so an interrupted
        migration leaves every record in exactly one layout and a rerun
        simply continues (a fully sharded store migrates zero files).
        The index is rebuilt afterwards so record paths stay current.
        Returns the number of files moved.
        """
        if self.directory is None or not os.path.isdir(self._results_dir):
            return 0
        moved = 0
        results_dir = self._results_dir
        for entry in sorted(os.listdir(results_dir)):
            flat_path = os.path.join(results_dir, entry)
            if not entry.endswith(".json") or not os.path.isfile(flat_path):
                continue
            key, _ = read_record_file(flat_path)
            shard_path = self._shard_path(key)
            os.makedirs(os.path.dirname(shard_path), exist_ok=True)
            os.replace(flat_path, shard_path)
            moved += 1
        if moved and self._index is not None:
            self._index.rebuild()
        return moved

    def clear_memory(self) -> None:
        """Drop the in-memory tiers (disk records, if any, survive)."""
        self._results.clear()
        self._records.clear()
