"""Content-addressed persistence of campaign results.

A :class:`CampaignStore` holds exactly one result record per point
identity ``(trace_hash, config_hash)`` — the content hashes of the
point's :class:`~repro.campaign.tracespec.TraceSpec` and of its fully
substituted :class:`~repro.core.config.ArchitectureConfig` (see
:mod:`repro.campaign.codec` for the guarantees those hashes carry).
Because the key is derived from *what was simulated* and not from when
or how, reruns, widened grids, interrupted campaigns and even different
campaign specs that share points all converge on the same entries.

Two tiers:

* **memory** — live :class:`SimulationResult` objects from this
  process, plus the record payloads (the runner's old memo dict is
  exactly this tier);
* **disk** (optional) — one JSON file per record under
  ``<directory>/results/``, named by the short hashes and written
  atomically, so a crash mid-campaign can never corrupt an entry. A
  fresh process pointed at the directory sees every finished point and
  can rebuild bit-identical results from the records.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Iterator

from repro.campaign.codec import short_hash
from repro.core.results import SimulationResult
from repro.core.serialize import (
    ResultRecord,
    SerializationError,
    result_to_dict,
    write_json_atomic,
)

if TYPE_CHECKING:
    from repro.aging.lut import LifetimeLUT

#: Subdirectory of a campaign directory holding one file per record.
RESULTS_DIRNAME = "results"


class CampaignStore:
    """One result record per (trace-hash, config-hash) point.

    Parameters
    ----------
    directory:
        Campaign directory for the disk tier; ``None`` keeps the store
        memory-only (the experiment runner's default). Existing records
        under ``<directory>/results/`` are indexed at construction, so
        a reopened store resumes where the last process stopped.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = os.fspath(directory) if directory is not None else None
        self._records: dict[tuple[str, str], dict[str, Any]] = {}
        self._results: dict[tuple[str, str], SimulationResult] = {}
        if self.directory is not None:
            self._load_existing()

    # ------------------------------------------------------------------
    # Disk layout
    # ------------------------------------------------------------------
    @property
    def _results_dir(self) -> str:
        assert self.directory is not None  # disk-tier helpers are gated on it
        return os.path.join(self.directory, RESULTS_DIRNAME)

    def _record_path(self, key: tuple[str, str]) -> str:
        trace_hash, config_hash = key
        name = f"{short_hash(trace_hash)}-{short_hash(config_hash)}.json"
        return os.path.join(self._results_dir, name)

    def _load_existing(self) -> None:
        """Index every record file already in the campaign directory.

        Deliberately does not create anything: read-only callers
        (``campaign status``/``show``) must be able to open a store —
        including a not-yet-existing directory — without mutating the
        filesystem. Directories are created on first :meth:`put`.
        """
        if not os.path.isdir(self._results_dir):
            return
        for entry in sorted(os.listdir(self._results_dir)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(self._results_dir, entry)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                key = (payload["key"]["trace_hash"], payload["key"]["config_hash"])
                record = payload["record"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise SerializationError(
                    f"corrupt campaign record {path}: {exc}"
                ) from exc
            self._records[key] = record

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._records

    def keys(self) -> Iterator[tuple[str, str]]:
        """All stored point identities."""
        return iter(self._records)

    def get_record(self, key: tuple[str, str]) -> ResultRecord | None:
        """The stored record for ``key``, or ``None``."""
        payload = self._records.get(key)
        if payload is None:
            return None
        return ResultRecord.from_dict(payload)

    def get_result(
        self, key: tuple[str, str], lut: LifetimeLUT | None = None
    ) -> SimulationResult | None:
        """The full result for ``key``, or ``None`` if absent.

        Results simulated by this process come back as the very same
        object (the memo-dict contract); results known only as records
        are rebuilt bit-identically via
        :meth:`~repro.core.serialize.ResultRecord.to_result` and then
        cached in the live tier.
        """
        live = self._results.get(key)
        if live is not None:
            return live
        record = self.get_record(key)
        if record is None:
            return None
        result = record.to_result(lut)
        self._results[key] = result
        return result

    def put(
        self, key: tuple[str, str], result: SimulationResult
    ) -> dict[str, Any]:
        """Store ``result`` under ``key`` in both tiers; returns its payload."""
        payload = result_to_dict(result)
        self._records[key] = payload
        self._results[key] = result
        if self.directory is not None:
            os.makedirs(self._results_dir, exist_ok=True)
            write_json_atomic(
                self._record_path(key),
                {
                    "key": {"trace_hash": key[0], "config_hash": key[1]},
                    "record": payload,
                },
            )
        return payload

    def records(self) -> list[ResultRecord]:
        """Every stored record (arbitrary but stable key order)."""
        return [ResultRecord.from_dict(p) for _, p in sorted(self._records.items())]

    def clear_memory(self) -> None:
        """Drop the in-memory tiers (disk records, if any, survive)."""
        self._results.clear()
        if self.directory is None:
            self._records.clear()
        # Directory-backed: re-index from disk so records stay visible.
        else:
            self._records.clear()
            self._load_existing()
