"""Campaign execution: run only what the store does not already hold.

:func:`run_campaign` walks a :class:`~repro.campaign.spec.CampaignSpec`
point by point, asks the :class:`~repro.campaign.store.CampaignStore`
for each ``(trace_hash, config_hash)`` identity, and simulates *only*
the missing points — through
:func:`repro.analysis.sweep.simulate_selected`, so missing points on
one trace still share a single :class:`~repro.core.plan.TracePlan`,
points differing only in ``breakeven_override`` collapse into one
batched gap computation, and ``parallel=N`` fans chunks out over
processes. Chunked (streaming) traces run through
:func:`repro.core.streamsim.stream_selected` instead, where
``parallel=N`` shards the single shared pass by set/bank partition —
still bit-identical to the serial and in-memory paths.

Consequences (pinned by the tests):

* running the same spec twice simulates **zero** points the second
  time — including after an interruption, because every finished point
  was already persisted atomically;
* widening an axis simulates only the new points;
* a trace is not even materialized unless one of its points is missing,
  so resuming a finished campaign costs only hash computations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.aging.lut import LifetimeLUT
from repro.analysis.planner import PlanContext, SearchSpec, get_strategy, plan_grid
from repro.analysis.sweep import _breakeven_group_ids, simulate_selected
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.campaign.tracespec import TraceSpec
from repro.core.plan import TracePlan
from repro.core.serialize import ResultRecord, write_json_atomic


@dataclass(frozen=True)
class CampaignPoint:
    """One finished campaign point and its stored record."""

    trace: TraceSpec
    parameters: dict
    trace_hash: str
    config_hash: str
    record: ResultRecord

    def value(self, metric: str):
        """Read a metric off the record by attribute name."""
        return getattr(self.record, metric)


@dataclass(frozen=True)
class CampaignResult:
    """All points of one campaign run, plus what the run actually did.

    ``estimated`` counts fresh estimator evaluations performed by a
    guided (non-exhaustive) run; exhaustive runs never estimate. For a
    guided run ``points`` holds only the grid points with a
    *simulated* record (survivors plus anything already stored) — the
    estimated tier lives in the store under its own keys.
    """

    spec: CampaignSpec
    points: tuple[CampaignPoint, ...]
    simulated: int
    reused: int
    estimated: int = 0

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def records(self) -> list[ResultRecord]:
        """The records in grid order."""
        return [p.record for p in self.points]


@dataclass(frozen=True)
class CampaignStatus:
    """Store coverage of a spec without running anything.

    ``estimated`` counts grid points covered at the *estimate* fidelity
    tier (guided runs screen points there first); ``done`` counts only
    the spec's own fidelity — an estimated record never satisfies a
    simulating spec's point.
    """

    total: int
    done: int
    estimated: int = 0

    @property
    def missing(self) -> int:
        """Points not yet in the store."""
        return self.total - self.done


def _streaming_source(spec: CampaignSpec, trace_spec: TraceSpec):
    """A factory for the chunked stream, or ``None`` for in-memory.

    A spec opts in per trace (``chunk_cycles > 0`` on the trace
    source); the opt-in is honored only when the spec's engine exposes
    the streaming capability for the base configuration — otherwise the
    runner quietly falls back to materializing, since the stored
    records are bit-identical either way. The *factory* (the spec's
    bound ``stream`` method, picklable) is returned rather than an
    opened stream so a ``parallel=N`` sharded pass can re-open the
    stream once per worker.
    """
    stream_factory = getattr(trace_spec, "stream", None)
    if stream_factory is None:
        return None
    from repro.campaign.tracespec import trace_source
    from repro.core.engine import resolve_engine, supports_streaming

    source = trace_source(trace_spec.kind)
    if source.stream_build is None or not trace_spec.params.get("chunk_cycles", 0):
        return None
    if not supports_streaming(resolve_engine(spec.engine, spec.base)):
        return None
    return stream_factory


def campaign_status(spec: CampaignSpec, store: CampaignStore) -> CampaignStatus:
    """How much of ``spec`` the store already holds."""
    total = 0
    done = 0
    estimated = 0
    for point in spec.points():
        total += 1
        if point.key() in store:
            done += 1
        if point.fidelity != "estimate" and point.key_at("estimate") in store:
            estimated += 1
    return CampaignStatus(total=total, done=done, estimated=estimated)


def status_payload(spec: CampaignSpec, store: CampaignStore) -> dict:
    """Machine-readable status — one code path for CLI and HTTP server.

    ``repro campaign status --json`` prints exactly this payload and
    the service front-end's ``GET /status`` embeds it per spec, so the
    CI smoke and a remote client read the same numbers. Served from
    membership checks only: no result file is opened.
    """
    status = campaign_status(spec, store)
    return {
        "name": spec.name,
        "spec_hash": spec.spec_hash(),
        "total": status.total,
        "done": status.done,
        "missing": status.missing,
        "estimated": status.estimated,
        "strategy": spec.search.strategy if spec.search is not None else "exhaustive",
        "traces": len(spec.traces),
        "points_per_trace": len(spec.combos()),
    }


def _write_manifest(spec: CampaignSpec, store: CampaignStore) -> None:
    """Record the latest spec (and its hash) in the campaign directory."""
    if store.directory is None:
        return
    os.makedirs(store.directory, exist_ok=True)
    write_json_atomic(
        os.path.join(store.directory, "campaign.json"),
        {"spec": spec.to_dict(), "spec_hash": spec.spec_hash()},
    )


def _collect_points(spec: CampaignSpec, store: CampaignStore) -> tuple[CampaignPoint, ...]:
    """Materialize every grid point's stored record, in grid order."""
    collected: list[CampaignPoint] = []
    for trace_spec in spec.traces:
        for point in spec.trace_points(trace_spec):
            key = point.key()
            collected.append(
                CampaignPoint(
                    trace=trace_spec,
                    parameters=point.parameters,
                    trace_hash=key[0],
                    config_hash=key[1],
                    record=store.get_record(key),
                )
            )
    return tuple(collected)


def _resolve_search(
    spec: CampaignSpec, search: "SearchSpec | str | None"
) -> SearchSpec | None:
    """The effective search block: call-site override, then the spec's.

    Returns ``None`` for exhaustive execution (also when the resolved
    block names the ``exhaustive`` strategy — that *is* the classic
    path, bit-identically).
    """
    if search is None:
        search = spec.search
    elif isinstance(search, str):
        search = SearchSpec(strategy=search)
    if search is None or search.strategy == "exhaustive":
        return None
    return search


def _run_guided(
    spec: CampaignSpec,
    store: CampaignStore,
    search: SearchSpec,
    lut: LifetimeLUT,
    parallel: int | None,
) -> CampaignResult:
    """Strategy-guided execution: estimate the grid, simulate survivors.

    Every estimator evaluation is persisted under the point's
    *estimate*-fidelity key and every simulation under its plain
    simulated key, so a guided run and an exhaustive run of the same
    spec share simulated records — and a later exhaustive run only
    fills in the points the strategy pruned.
    """
    from repro.core.engine import get_engine, result_family, result_fidelity
    from repro.errors import ConfigurationError

    if result_family(spec.engine) != "banked":
        raise ConfigurationError(
            f"guided search needs a banked-family engine — the estimator "
            f"predicts the banked machine, so its screening is "
            f"meaningless for {spec.engine!r}; run strategy 'exhaustive' "
            "instead"
        )
    if result_fidelity(spec.engine) == "estimate":
        raise ConfigurationError(
            "guided search screens with the estimator and simulates "
            "survivors; a campaign whose engine is already the "
            "estimator has nothing to prune — use strategy 'exhaustive'"
        )

    grid = plan_grid(spec.axes, allow_empty=True)
    estimator = get_engine("estimate")

    all_points: list[CampaignPoint] = []
    simulated = 0
    estimated = 0
    reused = 0
    for trace_spec in spec.traces:
        points = spec.trace_points(trace_spec)
        keys = [point.key() for point in points]
        present = {i for i, key in enumerate(keys) if key in store}
        reused += len(present)
        if len(present) < len(points):
            trace = trace_spec.build()
            plan = TracePlan(trace)
            est_keys = [point.key_at("estimate") for point in points]
            counters = {"simulated": 0, "estimated": 0}

            def run_estimate(indices, _trace=trace, _plan=plan,
                             _points=points, _est_keys=est_keys,
                             _counters=counters):
                out = []
                for i in indices:
                    result = store.get_result(_est_keys[i], lut=lut)
                    if result is None:
                        result = estimator.run(
                            _points[i].config, _trace, lut=lut, plan=_plan
                        )
                        store.put(_est_keys[i], result)
                        _counters["estimated"] += 1
                    out.append(result)
                return out

            def run_simulate(indices, _trace=trace, _plan=plan,
                             _keys=keys, _counters=counters):
                fresh = [i for i in indices if _keys[i] not in store]
                if fresh:
                    simulate_selected(
                        spec.base,
                        _trace,
                        list(grid.names),
                        [grid.combos[i] for i in fresh],
                        group_ids=grid.subset_group_ids(fresh),
                        lut=lut,
                        engine=spec.engine,
                        parallel=parallel,
                        plan=_plan,
                        on_result=lambda j, result: store.put(
                            _keys[fresh[j]], result
                        ),
                    )
                    _counters["simulated"] += len(fresh)
                return [store.get_result(_keys[i], lut=lut) for i in indices]

            context = PlanContext(
                grid=grid,
                search=search,
                simulate=run_simulate,
                estimate=run_estimate,
            )
            get_strategy(search.strategy).select(context)
            simulated += counters["simulated"]
            estimated += counters["estimated"]
        for point, key in zip(points, keys):
            record = store.get_record(key)
            if record is None:
                continue  # pruned by the strategy — no simulated record
            all_points.append(
                CampaignPoint(
                    trace=trace_spec,
                    parameters=point.parameters,
                    trace_hash=key[0],
                    config_hash=key[1],
                    record=record,
                )
            )
    return CampaignResult(
        spec=spec,
        points=tuple(all_points),
        simulated=simulated,
        reused=reused,
        estimated=estimated,
    )


def run_campaign(
    spec: CampaignSpec,
    directory: str | os.PathLike | None = None,
    store: CampaignStore | None = None,
    lut: LifetimeLUT | None = None,
    parallel: int | None = None,
    workers: int | None = None,
    search: "SearchSpec | str | None" = None,
) -> CampaignResult:
    """Execute ``spec``, simulating only points absent from the store.

    Parameters
    ----------
    spec:
        The declarative campaign description.
    directory:
        Campaign directory for persistence; ``None`` runs in memory
        (every point simulates, nothing survives the process). Ignored
        when an explicit ``store`` is passed.
    store:
        An already-open store to run against (shared with e.g. an
        :class:`~repro.experiments.runner.ExperimentRunner`).
    lut:
        Lifetime LUT; defaults to the calibrated shared instance.
        Stored integer counters are LUT-independent; derived lifetime
        fields assume the same LUT across runs.
    parallel:
        Worker processes for the missing points of each trace. For an
        in-memory trace the missing points fan out across workers; a
        trace that opts into chunked loading (``chunk_cycles > 0``)
        instead shards its single shared streaming pass by set/bank
        partition across the workers, each re-opening the stream from
        the spec's factory — bit-identical to the serial pass, with
        peak memory still bounded by the chunk size. When a streaming
        pass cannot be sharded (the engine lacks shard support, or the
        stream cannot travel to workers) a
        :class:`~repro.errors.ReproWarning` is emitted and that
        trace's pass runs serially.
    workers:
        Claim-loop worker processes (the campaign service's work
        queue). ``None`` keeps the classic single-process path with no
        claim files. Any value >= 1 routes through
        :func:`repro.campaign.service.queue.drain_campaign`:
        missing points are leased (TTL + heartbeat), simulated, and
        committed, so several invocations — across processes or hosts
        sharing ``directory`` — drain one campaign without
        double-simulating. Requires a directory-backed store.
    search:
        Search strategy override: a
        :class:`~repro.analysis.planner.SearchSpec`, a strategy name,
        or ``None`` to use the spec's own ``search`` block (and
        exhaustive execution when the spec has none). Anything other
        than exhaustive routes through :func:`_run_guided`: the whole
        grid is estimated (records persisted under estimate-fidelity
        keys), the strategy picks survivors, and only those are
        simulated.

    Returns
    -------
    CampaignResult
        Every point of the grid (reused and new alike) in grid order,
        with ``simulated``/``reused`` counting what this call did.
    """
    if store is None:
        store = CampaignStore(directory)
    shared_lut = lut if lut is not None else LifetimeLUT.default()
    _write_manifest(spec, store)

    effective_search = _resolve_search(spec, search)
    if effective_search is not None:
        if workers is not None:
            import warnings

            from repro.errors import ReproWarning

            # The claim queue leases points independently; a strategy
            # decides *which* points to lease only after estimating, so
            # guided runs stay single-process (parallelism still fans
            # out inside each simulate batch).
            warnings.warn(
                "guided search ignores workers=…; running single-process "
                "(simulate batches still honor parallel=…)",
                ReproWarning,
                stacklevel=2,
            )
        return _run_guided(spec, store, effective_search, shared_lut, parallel)

    if workers is not None:
        from repro.campaign.service.queue import drain_campaign
        from repro.errors import ConfigurationError

        if store.directory is None:
            raise ConfigurationError(
                "run_campaign(workers=...) needs a directory-backed store; "
                "claims and commit logs live beside results/"
            )
        simulated = drain_campaign(
            spec,
            store.directory,
            lut=shared_lut,
            workers=workers,
            parallel=parallel,
        )
        points = _collect_points(spec, store)
        return CampaignResult(
            spec=spec,
            points=points,
            simulated=simulated,
            reused=len(points) - simulated,
        )

    names = spec.axis_names
    combos = spec.combos()
    group_ids = _breakeven_group_ids(names, spec.axes)

    all_points: list[CampaignPoint] = []
    simulated = 0
    reused = 0
    for trace_spec in spec.traces:
        points = spec.trace_points(trace_spec)
        keys = [point.key() for point in points]
        missing = [i for i, key in enumerate(keys) if key not in store]
        if missing:
            missing_combos = [combos[i] for i in missing]
            missing_groups = (
                [group_ids[i] for i in missing] if group_ids is not None else None
            )
            # Persist each result the moment it exists (per point /
            # breakeven group / parallel chunk): an interruption
            # loses at most the in-flight batch, and the rerun
            # resumes from everything already stored.
            on_result = lambda j, result: store.put(keys[missing[j]], result)
            stream = _streaming_source(spec, trace_spec)
            if stream is not None:
                # Chunked loading: the trace is never materialized;
                # every missing point advances through one shared pass
                # over the stream (results — and therefore stored
                # records — are bit-identical to the in-memory path,
                # so chunked and unchunked runs resume each other).
                from repro.core.streamsim import stream_selected

                stream_selected(
                    spec.base,
                    stream,
                    names,
                    missing_combos,
                    group_ids=missing_groups,
                    lut=shared_lut,
                    engine=spec.engine,
                    on_result=on_result,
                    parallel=parallel,
                )
            else:
                # Materialize the trace only now — a fully covered
                # trace costs nothing to resume.
                trace = trace_spec.build()
                simulate_selected(
                    spec.base,
                    trace,
                    names,
                    missing_combos,
                    group_ids=missing_groups,
                    lut=shared_lut,
                    engine=spec.engine,
                    parallel=parallel,
                    plan=TracePlan(trace),
                    on_result=on_result,
                )
            simulated += len(missing)
        reused += len(combos) - len(missing)
        for point, key in zip(points, keys):
            record = store.get_record(key)
            all_points.append(
                CampaignPoint(
                    trace=trace_spec,
                    parameters=point.parameters,
                    trace_hash=key[0],
                    config_hash=key[1],
                    record=record,
                )
            )
    return CampaignResult(
        spec=spec,
        points=tuple(all_points),
        simulated=simulated,
        reused=reused,
    )
