"""Exact, versioned codec for configuration objects.

The original ``serialize.py`` wrote a lossy *summary* of the simulated
configuration — good enough for reading a table, useless for
resimulation. This module is the exact counterpart: every field of
:class:`~repro.core.config.ArchitectureConfig` (and of the nested
:class:`~repro.cache.geometry.CacheGeometry` and
:class:`~repro.power.energy.TechnologyParams`) round-trips through plain
JSON types with no loss, so a stored payload can rebuild the *identical*
config object::

    config_from_dict(config_to_dict(config)) == config

Round-trip exactness includes floats: canonical JSON uses Python's
``repr``-based float formatting, which is shortest-round-trip exact for
IEEE-754 doubles, so ``frequency_hz`` and every technology coefficient
survive a disk round-trip bit-for-bit.

Content hashing
---------------
:func:`content_hash` derives a hex digest from *canonical JSON*: keys
sorted, no whitespace, NaN/Infinity rejected, all defaults written
explicitly by the ``*_to_dict`` encoders. Two guarantees follow:

* **Determinism** — the hash of a config (or any payload built from the
  encoders here) is stable across processes, platforms and Python
  versions; it can safely key an on-disk store.
* **Semantic identity** — two configs hash equally iff they are equal
  as dataclasses, because the encoders write every field (never eliding
  defaults) and the decoders validate strictly (unknown keys are
  errors, so no two spellings of the same config exist).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.errors import ReproError
from repro.power.energy import TechnologyParams


class CodecError(ReproError):
    """A payload cannot be decoded into a configuration object."""


#: Version of the exact-config payload format (v1 was the lossy summary
#: written by ``serialize.FORMAT_VERSION == 1`` files).
CONFIG_CODEC_VERSION = 2


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to canonical JSON (sorted keys, compact)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def short_hash(full_hash: str, length: int = 12) -> str:
    """Filename-friendly prefix of a full content hash."""
    return full_hash[:length]


# ----------------------------------------------------------------------
# CacheGeometry
# ----------------------------------------------------------------------
def geometry_to_dict(geometry: CacheGeometry) -> dict[str, Any]:
    """Encode a geometry; every field explicit."""
    return {
        "size_bytes": int(geometry.size_bytes),
        "line_size": int(geometry.line_size),
        "ways": int(geometry.ways),
    }


def geometry_from_dict(payload: Any) -> CacheGeometry:
    """Decode a geometry; unknown keys are errors."""
    if not isinstance(payload, dict):
        raise CodecError(f"geometry payload must be a dict, got {type(payload).__name__}")
    unknown = set(payload) - {"size_bytes", "line_size", "ways"}
    if unknown:
        raise CodecError(f"unknown geometry fields: {sorted(unknown)}")
    try:
        return CacheGeometry(
            size_bytes=int(payload["size_bytes"]),
            line_size=int(payload["line_size"]),
            ways=int(payload.get("ways", 1)),
        )
    except KeyError as exc:
        raise CodecError(f"geometry payload missing field {exc}") from exc
    except ReproError as exc:
        raise CodecError(f"invalid geometry: {exc}") from exc


# ----------------------------------------------------------------------
# TechnologyParams
# ----------------------------------------------------------------------
_TECH_FIELDS = tuple(f.name for f in dataclasses.fields(TechnologyParams))


def _normalize_tech_value(name: str, value: Any) -> int | float:
    """int for ``address_bits``, float for every coefficient.

    Normalizing the numeric *type* keeps hashing semantic: Python
    compares ``9`` and ``9.0`` equal, but canonical JSON spells them
    differently, and the hash must follow object equality.
    """
    return int(value) if name == "address_bits" else float(value)


def technology_to_dict(technology: TechnologyParams) -> dict[str, Any]:
    """Encode the full coefficient set, defaults included."""
    return {
        name: _normalize_tech_value(name, getattr(technology, name))
        for name in _TECH_FIELDS
    }


def technology_from_dict(payload: Any) -> TechnologyParams:
    """Decode coefficients; missing fields take the calibrated defaults."""
    if not isinstance(payload, dict):
        raise CodecError(
            f"technology payload must be a dict, got {type(payload).__name__}"
        )
    unknown = set(payload) - set(_TECH_FIELDS)
    if unknown:
        raise CodecError(f"unknown technology fields: {sorted(unknown)}")
    try:
        normalized = {
            name: _normalize_tech_value(name, value)
            for name, value in payload.items()
        }
        return TechnologyParams(**normalized)
    except (ReproError, TypeError, ValueError) as exc:
        raise CodecError(f"invalid technology: {exc}") from exc


# ----------------------------------------------------------------------
# ArchitectureConfig
# ----------------------------------------------------------------------
_CONFIG_FIELDS = {
    "geometry",
    "num_banks",
    "policy",
    "power_managed",
    "update_period_cycles",
    "update_events",
    "breakeven_override",
    "technology",
    "frequency_hz",
}


def config_to_dict(config: ArchitectureConfig) -> dict[str, Any]:
    """Encode every field of the config — an exact, resimulable payload.

    Numeric fields are normalized to one canonical JSON type (int for
    counts/cycles, float for the frequency), so two configs that
    compare equal — e.g. ``frequency_hz=400e6`` vs ``400_000_000`` —
    always produce the same encoding and hence the same content hash.
    """
    return {
        "geometry": geometry_to_dict(config.geometry),
        "num_banks": int(config.num_banks),
        "policy": str(config.policy),
        "power_managed": bool(config.power_managed),
        "update_period_cycles": (
            int(config.update_period_cycles)
            if config.update_period_cycles is not None
            else None
        ),
        "update_events": (
            [int(c) for c in config.update_events]
            if config.update_events is not None
            else None
        ),
        "breakeven_override": (
            int(config.breakeven_override)
            if config.breakeven_override is not None
            else None
        ),
        "technology": technology_to_dict(config.technology),
        "frequency_hz": float(config.frequency_hz),
    }


def config_from_dict(payload: Any) -> ArchitectureConfig:
    """Decode an exact config payload back into the identical object.

    Optional fields absent from the payload take the dataclass defaults
    (hand-written spec files stay short); unknown keys are errors so a
    typo'd field name cannot silently vanish.
    """
    if not isinstance(payload, dict):
        raise CodecError(f"config payload must be a dict, got {type(payload).__name__}")
    unknown = set(payload) - _CONFIG_FIELDS
    if unknown:
        raise CodecError(f"unknown config fields: {sorted(unknown)}")
    if "geometry" not in payload:
        raise CodecError("config payload missing 'geometry'")
    kwargs: dict[str, Any] = {"geometry": geometry_from_dict(payload["geometry"])}
    if "technology" in payload and payload["technology"] is not None:
        kwargs["technology"] = technology_from_dict(payload["technology"])
    if payload.get("update_events") is not None:
        events = payload["update_events"]
        if not isinstance(events, (list, tuple)):
            raise CodecError("update_events must be a list of cycles")
        kwargs["update_events"] = tuple(int(c) for c in events)
    coercions = {
        "num_banks": int,
        "policy": str,
        "power_managed": bool,
        "update_period_cycles": int,
        "breakeven_override": int,
        "frequency_hz": float,
    }
    for name, coerce in coercions.items():
        if name in payload and payload[name] is not None:
            kwargs[name] = coerce(payload[name])
    try:
        return ArchitectureConfig(**kwargs)
    except ReproError as exc:
        raise CodecError(f"invalid config: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed config payload: {exc}") from exc


def config_hash(config: ArchitectureConfig) -> str:
    """Content hash identifying ``config`` exactly (see module docstring)."""
    return content_hash(config_to_dict(config))


def config_result_hash(
    config: ArchitectureConfig, family: str = "banked", fidelity: str = "simulate"
) -> str:
    """Identity of *a result* for ``config`` under a result family/fidelity.

    Engines in the default ``"banked"`` family (fast, reference, auto)
    are bit-identical by construction, so their identity is plain
    :func:`config_hash` — byte-compatible with every store written
    before families existed. Engines that simulate a different machine
    (e.g. ``finegrain``) mix their family into the hash so their
    records never alias banked ones for the same configuration.

    ``fidelity`` works the same way one level up: the default
    ``"simulate"`` tier leaves the hash untouched (byte-compatible with
    every store written before fidelity tiers existed), while estimated
    results mix their tier into the hash — an estimate can never alias
    or satisfy a simulated record, whatever the family.
    """
    base = config_hash(config)
    result = base if family == "banked" else content_hash(
        {"family": family, "config_hash": base}
    )
    if fidelity == "simulate":
        return result
    return content_hash({"fidelity": fidelity, "config_hash": result})
