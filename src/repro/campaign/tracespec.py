"""Declarative, regenerable trace sources.

A :class:`TraceSpec` names a workload *by data*: a source kind plus the
parameters that source needs to materialize the trace. Specs are plain
JSON-shaped values, so a campaign file fully describes its workloads and
the trace can always be regenerated — there is no "trace object I
happened to have in memory" anywhere in the campaign layer.

Sources live in one registry keyed by kind. Two kinds are built in:

* ``synthetic`` — the calibrated MediaBench-like generator: benchmark
  profile + geometry + seed + schedule dimensions. Deterministic: the
  same spec yields a bit-identical trace on every machine.
* ``file`` — a trace file readable by :func:`repro.trace.io.load_trace`
  (``.trc`` text or ``.npz``). An optional ``sha256`` of the file bytes
  is verified at build time, extending the content-hash guarantee to
  file-backed workloads; without it the spec hash only pins the *path*.

Custom sources register through :func:`register_trace_source`.

Content-hash guarantee
----------------------
:meth:`TraceSpec.trace_hash` hashes the *normalized* spec (kind + all
workload parameters with defaults filled in), via the same canonical
JSON as the config codec. Hence two specs hash equally iff they
normalize to the same workload — and for deterministic kinds, equal
hashes imply bit-identical traces. Parameters a source declares
*hash-neutral* (loading hints such as ``chunk_cycles``, which change
how the trace is materialized but not which trace it is) are excluded
from the hash, so opting a spec into chunked loading reuses every
record an unchunked run already stored.

Chunked loading
---------------
Both built-in sources accept ``chunk_cycles`` (default ``0`` =
resident). A positive value makes :meth:`TraceSpec.stream` return a
:class:`~repro.trace.stream.TraceStream` instead of ``None``, which the
campaign runner feeds to streaming-capable engines so file-backed (or
synthetic) workloads far larger than RAM simulate out-of-core;
:meth:`TraceSpec.build` still materializes the full trace for
in-memory consumers.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.codec import CodecError, content_hash
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceSource:
    """One registered way of materializing traces.

    Attributes
    ----------
    kind:
        Registry key, e.g. ``"synthetic"``.
    build:
        ``params dict -> Trace``; receives the normalized parameters.
    required:
        Parameter names that must be present in a spec.
    defaults:
        Optional parameters and their default values (written into the
        normalized form so hashes never depend on spelling defaults
        out).
    stream_build:
        Optional ``params dict -> TraceStream`` for chunked
        materialization; consulted by :meth:`TraceSpec.stream` when the
        spec's ``chunk_cycles`` is positive.
    hash_neutral:
        Parameter names that are loading hints, not workload identity —
        excluded from :meth:`TraceSpec.trace_hash` so e.g. a chunked
        and an unchunked spelling of the same workload share store
        records.
    """

    kind: str
    build: Callable[[dict], Trace]
    required: tuple[str, ...] = ()
    defaults: dict = field(default_factory=dict)
    stream_build: Callable[[dict], object] | None = None
    hash_neutral: tuple[str, ...] = ()

    def normalize(self, params: dict) -> dict:
        """Validate ``params`` and fill defaults."""
        unknown = set(params) - set(self.required) - set(self.defaults)
        if unknown:
            raise CodecError(
                f"trace source {self.kind!r}: unknown parameters {sorted(unknown)}"
            )
        missing = set(self.required) - set(params)
        if missing:
            raise CodecError(
                f"trace source {self.kind!r}: missing parameters {sorted(missing)}"
            )
        normalized = dict(self.defaults)
        normalized.update(params)
        return normalized


_REGISTRY: dict[str, TraceSource] = {}


def register_trace_source(source: TraceSource) -> None:
    """Register (or replace) a trace source under its kind."""
    _REGISTRY[source.kind] = source


def trace_source(kind: str) -> TraceSource:
    """Look up a registered source."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise CodecError(f"unknown trace source {kind!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Built-in sources
# ----------------------------------------------------------------------
def _build_synthetic(params: dict) -> Trace:
    from repro.cache.geometry import CacheGeometry
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for

    geometry = CacheGeometry(
        size_bytes=params["size_bytes"],
        line_size=params["line_size"],
        ways=params["ways"],
    )
    generator = WorkloadGenerator(
        geometry,
        num_windows=params["num_windows"],
        window_cycles=params["window_cycles"],
        master_seed=params["master_seed"],
    )
    return generator.generate(profile_for(params["benchmark"]))


def _build_synthetic_stream(params: dict):
    from repro.cache.geometry import CacheGeometry
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for

    geometry = CacheGeometry(
        size_bytes=params["size_bytes"],
        line_size=params["line_size"],
        ways=params["ways"],
    )
    generator = WorkloadGenerator(
        geometry,
        num_windows=params["num_windows"],
        window_cycles=params["window_cycles"],
        master_seed=params["master_seed"],
    )
    return generator.stream(profile_for(params["benchmark"]), params["chunk_cycles"])


def _verify_file_checksum(params: dict) -> None:
    from repro.errors import TraceError

    path = params["path"]
    expected = params["sha256"]
    if not expected:
        return
    digest = hashlib.sha256()
    with open(os.fspath(path), "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    if digest.hexdigest() != expected:
        raise TraceError(
            f"trace file {path} does not match its spec checksum "
            f"(expected {expected[:12]}…, found {digest.hexdigest()[:12]}…)"
        )


def _build_file(params: dict) -> Trace:
    from repro.trace.io import load_trace

    _verify_file_checksum(params)
    return load_trace(params["path"])


def _build_file_stream(params: dict):
    from repro.trace.stream import open_trace_stream

    _verify_file_checksum(params)
    return open_trace_stream(params["path"], params["chunk_cycles"])


register_trace_source(
    TraceSource(
        kind="synthetic",
        build=_build_synthetic,
        required=("benchmark",),
        defaults={
            "size_bytes": 16 * 1024,
            "line_size": 16,
            "ways": 1,
            "num_windows": 1500,
            "window_cycles": 1024,
            "master_seed": 2011,
            "chunk_cycles": 0,
        },
        stream_build=_build_synthetic_stream,
        hash_neutral=("chunk_cycles",),
    )
)

register_trace_source(
    TraceSource(
        kind="file",
        build=_build_file,
        required=("path",),
        defaults={"sha256": "", "chunk_cycles": 0},
        stream_build=_build_file_stream,
        hash_neutral=("chunk_cycles",),
    )
)


# ----------------------------------------------------------------------
# TraceSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceSpec:
    """A trace named by data: source kind + parameters.

    Specs are validated and normalized at construction (defaults filled
    in), so equality and :meth:`trace_hash` are canonical — two specs
    that mean the same workload compare and hash equal.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        source = trace_source(self.kind)
        object.__setattr__(self, "params", source.normalize(self.params))

    # -- construction helpers ------------------------------------------
    @classmethod
    def synthetic(cls, benchmark: str, **params) -> "TraceSpec":
        """Spec for the calibrated synthetic generator."""
        return cls(kind="synthetic", params={"benchmark": benchmark, **params})

    @classmethod
    def from_file(cls, path: str | os.PathLike, sha256: str = "") -> "TraceSpec":
        """Spec for a saved trace file (optionally checksum-pinned)."""
        return cls(kind="file", params={"path": os.fspath(path), "sha256": sha256})

    # -- codec ----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-shaped form (normalized parameters, defaults explicit).

        Hash-neutral parameters still at their default are omitted, so
        spec files written before a loading hint existed re-encode
        byte-identically.
        """
        source = trace_source(self.kind)
        params = {
            key: value
            for key, value in self.params.items()
            if not (
                key in source.hash_neutral and value == source.defaults.get(key)
            )
        }
        return {"kind": self.kind, "params": params}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSpec":
        """Decode; unknown keys and unknown kinds are errors."""
        if not isinstance(payload, dict):
            raise CodecError(
                f"trace spec payload must be a dict, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"kind", "params"}
        if unknown:
            raise CodecError(f"unknown trace spec fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise CodecError("trace spec payload missing 'kind'")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise CodecError("trace spec 'params' must be a dict")
        return cls(kind=payload["kind"], params=dict(params))

    # -- identity and materialization ----------------------------------
    def trace_hash(self) -> str:
        """Content hash of the normalized *workload* (see module docstring).

        Hash-neutral loading hints are excluded at any value: a chunked
        and an unchunked spelling of the same workload hash — and
        therefore store — identically.
        """
        source = trace_source(self.kind)
        params = {
            key: value
            for key, value in self.params.items()
            if key not in source.hash_neutral
        }
        return content_hash({"kind": self.kind, "params": params})

    def build(self) -> Trace:
        """Materialize the trace this spec names."""
        return trace_source(self.kind).build(dict(self.params))

    def stream(self):
        """Chunked view of the workload, or ``None``.

        Returns a :class:`~repro.trace.stream.TraceStream` when this
        spec opts into chunked loading (``chunk_cycles > 0``) and its
        source supports it; ``None`` means "materialize with
        :meth:`build`".
        """
        source = trace_source(self.kind)
        if source.stream_build is None:
            return None
        if not self.params.get("chunk_cycles", 0):
            return None
        return source.stream_build(dict(self.params))

    def label(self) -> str:
        """Short human-readable identity for reports."""
        if self.kind == "synthetic":
            return str(self.params["benchmark"])
        if self.kind == "file":
            return os.path.basename(str(self.params["path"]))
        return self.kind
