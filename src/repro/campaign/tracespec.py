"""Declarative, regenerable trace sources.

A :class:`TraceSpec` names a workload *by data*: a source kind plus the
parameters that source needs to materialize the trace. Specs are plain
JSON-shaped values, so a campaign file fully describes its workloads and
the trace can always be regenerated — there is no "trace object I
happened to have in memory" anywhere in the campaign layer.

Sources live in one registry keyed by kind. Two kinds are built in:

* ``synthetic`` — the calibrated MediaBench-like generator: benchmark
  profile + geometry + seed + schedule dimensions. Deterministic: the
  same spec yields a bit-identical trace on every machine.
* ``file`` — a trace file readable by :func:`repro.trace.io.load_trace`
  (``.trc`` text or ``.npz``). An optional ``sha256`` of the file bytes
  is verified at build time, extending the content-hash guarantee to
  file-backed workloads; without it the spec hash only pins the *path*.

Custom sources register through :func:`register_trace_source`.

Content-hash guarantee
----------------------
:meth:`TraceSpec.trace_hash` hashes the *normalized* spec (kind + all
parameters with defaults filled in), via the same canonical JSON as the
config codec. Hence two specs hash equally iff they normalize to the
same parameters — and for deterministic kinds, equal hashes imply
bit-identical traces.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.codec import CodecError, content_hash
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceSource:
    """One registered way of materializing traces.

    Attributes
    ----------
    kind:
        Registry key, e.g. ``"synthetic"``.
    build:
        ``params dict -> Trace``; receives the normalized parameters.
    required:
        Parameter names that must be present in a spec.
    defaults:
        Optional parameters and their default values (written into the
        normalized form so hashes never depend on spelling defaults
        out).
    """

    kind: str
    build: Callable[[dict], Trace]
    required: tuple[str, ...] = ()
    defaults: dict = field(default_factory=dict)

    def normalize(self, params: dict) -> dict:
        """Validate ``params`` and fill defaults."""
        unknown = set(params) - set(self.required) - set(self.defaults)
        if unknown:
            raise CodecError(
                f"trace source {self.kind!r}: unknown parameters {sorted(unknown)}"
            )
        missing = set(self.required) - set(params)
        if missing:
            raise CodecError(
                f"trace source {self.kind!r}: missing parameters {sorted(missing)}"
            )
        normalized = dict(self.defaults)
        normalized.update(params)
        return normalized


_REGISTRY: dict[str, TraceSource] = {}


def register_trace_source(source: TraceSource) -> None:
    """Register (or replace) a trace source under its kind."""
    _REGISTRY[source.kind] = source


def trace_source(kind: str) -> TraceSource:
    """Look up a registered source."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise CodecError(f"unknown trace source {kind!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Built-in sources
# ----------------------------------------------------------------------
def _build_synthetic(params: dict) -> Trace:
    from repro.cache.geometry import CacheGeometry
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for

    geometry = CacheGeometry(
        size_bytes=params["size_bytes"],
        line_size=params["line_size"],
        ways=params["ways"],
    )
    generator = WorkloadGenerator(
        geometry,
        num_windows=params["num_windows"],
        window_cycles=params["window_cycles"],
        master_seed=params["master_seed"],
    )
    return generator.generate(profile_for(params["benchmark"]))


def _build_file(params: dict) -> Trace:
    from repro.errors import TraceError
    from repro.trace.io import load_trace

    path = params["path"]
    expected = params["sha256"]
    if expected:
        with open(os.fspath(path), "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        if digest != expected:
            raise TraceError(
                f"trace file {path} does not match its spec checksum "
                f"(expected {expected[:12]}…, found {digest[:12]}…)"
            )
    return load_trace(path)


register_trace_source(
    TraceSource(
        kind="synthetic",
        build=_build_synthetic,
        required=("benchmark",),
        defaults={
            "size_bytes": 16 * 1024,
            "line_size": 16,
            "ways": 1,
            "num_windows": 1500,
            "window_cycles": 1024,
            "master_seed": 2011,
        },
    )
)

register_trace_source(
    TraceSource(
        kind="file",
        build=_build_file,
        required=("path",),
        defaults={"sha256": ""},
    )
)


# ----------------------------------------------------------------------
# TraceSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceSpec:
    """A trace named by data: source kind + parameters.

    Specs are validated and normalized at construction (defaults filled
    in), so equality and :meth:`trace_hash` are canonical — two specs
    that mean the same workload compare and hash equal.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        source = trace_source(self.kind)
        object.__setattr__(self, "params", source.normalize(self.params))

    # -- construction helpers ------------------------------------------
    @classmethod
    def synthetic(cls, benchmark: str, **params) -> "TraceSpec":
        """Spec for the calibrated synthetic generator."""
        return cls(kind="synthetic", params={"benchmark": benchmark, **params})

    @classmethod
    def from_file(cls, path: str | os.PathLike, sha256: str = "") -> "TraceSpec":
        """Spec for a saved trace file (optionally checksum-pinned)."""
        return cls(kind="file", params={"path": os.fspath(path), "sha256": sha256})

    # -- codec ----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-shaped form (normalized parameters, defaults explicit)."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSpec":
        """Decode; unknown keys and unknown kinds are errors."""
        if not isinstance(payload, dict):
            raise CodecError(
                f"trace spec payload must be a dict, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"kind", "params"}
        if unknown:
            raise CodecError(f"unknown trace spec fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise CodecError("trace spec payload missing 'kind'")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise CodecError("trace spec 'params' must be a dict")
        return cls(kind=payload["kind"], params=dict(params))

    # -- identity and materialization ----------------------------------
    def trace_hash(self) -> str:
        """Content hash of the normalized spec (see module docstring)."""
        return content_hash(self.to_dict())

    def build(self) -> Trace:
        """Materialize the trace this spec names."""
        return trace_source(self.kind).build(dict(self.params))

    def label(self) -> str:
        """Short human-readable identity for reports."""
        if self.kind == "synthetic":
            return str(self.params["benchmark"])
        if self.kind == "file":
            return os.path.basename(str(self.params["path"]))
        return self.kind
