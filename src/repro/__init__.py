"""repro — reproduction of *Partitioned Cache Architectures for Reduced
NBTI-Induced Aging* (A. Calimera, M. Loghi, E. Macii, M. Poncino,
DATE 2011).

The library implements the paper's complete stack from scratch:

* a trace-driven **cache simulator** (direct-mapped and set-associative,
  monolithic and M-bank partitioned) — :mod:`repro.cache`;
* the **decoder/remapper hardware** of Figures 1-3 (one-hot encoder,
  saturating idle counters, LFSR, probing/scrambling datapaths) —
  :mod:`repro.hw`;
* **power management** (drowsy banks, breakeven times, a calibrated
  45nm-like energy model) — :mod:`repro.power`;
* **NBTI aging physics** (reaction-diffusion Vth drift, butterfly-curve
  read SNM of a 6T cell, lifetime LUT) — :mod:`repro.aging`;
* the paper's **dynamic indexing policies** — :mod:`repro.indexing`;
* two agreeing **simulation engines** and the architecture glue —
  :mod:`repro.core`;
* synthetic **MediaBench-like workloads** calibrated to the paper's
  Table I — :mod:`repro.trace`;
* the **experiment harness** regenerating Tables I-IV —
  :mod:`repro.experiments`;
* declarative, content-hashed **campaigns** with a resumable result
  store — :mod:`repro.campaign`.

Quickstart
----------
>>> from repro import (ArchitectureConfig, CacheGeometry, WorkloadGenerator,
...                    profile_for, simulate)
>>> geometry = CacheGeometry(size_bytes=16 * 1024, line_size=16)
>>> trace = WorkloadGenerator(geometry, num_windows=200).generate(profile_for("sha"))
>>> config = ArchitectureConfig(geometry, num_banks=4, policy="probing",
...                             update_period_cycles=trace.horizon // 8)
>>> result = simulate(config, trace)
>>> result.lifetime_years > 2.93
True
"""

from repro.aging import CharacterizationFramework, LifetimeLUT, NBTIModel, SRAMCellSpec
from repro.cache import BankedCache, CacheGeometry, DirectMappedCache, SetAssociativeCache
from repro.core import (
    ArchitectureConfig,
    Engine,
    StreamingPlan,
    FastSimulator,
    Measurement,
    Metric,
    ReferenceSimulator,
    SimulationResult,
    TracePlan,
    engine_names,
    metric_names,
    register_engine,
    register_metric,
    simulate,
    simulate_stream,
    summarize,
)
from repro.analysis import (
    SearchSpec,
    pareto_front,
    search_sweep,
    stream_sweep,
    sweep,
)
from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    CampaignStore,
    TraceSpec,
    campaign_status,
    config_from_dict,
    config_hash,
    config_to_dict,
    register_trace_source,
    run_campaign,
)
from repro.core.serialize import ResultRecord, load_results, save_results
from repro.errors import ReproError
from repro.experiments import ExperimentRunner, ExperimentSettings
from repro.finegrain import FineGrainConfig, FineGrainEngine, FineGrainSimulator
from repro.hw.overhead import estimate_overhead
from repro.indexing import make_policy
from repro.power import EnergyModel, TechnologyParams, breakeven_cycles
from repro.trace import (
    Trace,
    TraceChunk,
    TraceStream,
    WorkloadGenerator,
    open_trace_stream,
    profile_for,
    save_trace_mmap,
    stream_to_trace,
)
from repro.trace.stats import profile_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "CacheGeometry",
    "DirectMappedCache",
    "SetAssociativeCache",
    "BankedCache",
    "ArchitectureConfig",
    "ReferenceSimulator",
    "FastSimulator",
    "TracePlan",
    "StreamingPlan",
    "SimulationResult",
    "simulate",
    "simulate_stream",
    "summarize",
    "Engine",
    "register_engine",
    "engine_names",
    "Metric",
    "Measurement",
    "register_metric",
    "metric_names",
    "Trace",
    "TraceChunk",
    "TraceStream",
    "open_trace_stream",
    "save_trace_mmap",
    "stream_to_trace",
    "WorkloadGenerator",
    "profile_for",
    "make_policy",
    "EnergyModel",
    "TechnologyParams",
    "breakeven_cycles",
    "NBTIModel",
    "SRAMCellSpec",
    "CharacterizationFramework",
    "LifetimeLUT",
    "ExperimentRunner",
    "ExperimentSettings",
    "FineGrainConfig",
    "FineGrainSimulator",
    "FineGrainEngine",
    "sweep",
    "stream_sweep",
    "search_sweep",
    "SearchSpec",
    "pareto_front",
    "estimate_overhead",
    "profile_trace",
    "save_results",
    "load_results",
    "ResultRecord",
    "TraceSpec",
    "register_trace_source",
    "CampaignSpec",
    "CampaignStore",
    "CampaignResult",
    "campaign_status",
    "run_campaign",
    "config_to_dict",
    "config_from_dict",
    "config_hash",
]
