"""Direct-mapped cache model (the paper's configuration).

Functional model: one tag per line plus a valid bit; an access hits when
the indexed line is valid and holds the address's tag. Contents are not
stored (trace-driven simulation needs hit/miss behaviour only).
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import AccessOutcome, CacheStats
from repro.errors import GeometryError


class DirectMappedCache:
    """A direct-mapped cache over ``geometry``.

    Parameters
    ----------
    geometry:
        Must have ``ways == 1``.

    Examples
    --------
    >>> cache = DirectMappedCache(CacheGeometry(1024, 16))
    >>> cache.access(0x40).name, cache.access(0x40).name
    ('MISS', 'HIT')
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        if geometry.ways != 1:
            raise GeometryError("DirectMappedCache requires ways == 1")
        self.geometry = geometry
        self.stats = CacheStats()
        self._tags: list[int | None] = [None] * geometry.num_lines

    def access(self, address: int) -> AccessOutcome:
        """Look up ``address``; allocate on miss; return the outcome."""
        tag, index, _ = self.geometry.split(address)
        outcome = (
            AccessOutcome.HIT if self._tags[index] == tag else AccessOutcome.MISS
        )
        self._tags[index] = tag
        self.stats.record(outcome)
        return outcome

    def probe(self, address: int) -> bool:
        """Non-allocating lookup: True if ``address`` would hit."""
        tag, index, _ = self.geometry.split(address)
        return self._tags[index] == tag

    def flush(self) -> int:
        """Invalidate every line; return how many valid lines were dropped."""
        dropped = sum(1 for t in self._tags if t is not None)
        self._tags = [None] * self.geometry.num_lines
        self.stats.flushes += 1
        return dropped

    @property
    def valid_lines(self) -> int:
        """Number of currently valid lines."""
        return sum(1 for t in self._tags if t is not None)
