"""M-bank uniformly partitioned cache (Figure 1a).

Composes the decoder *D* (:class:`repro.hw.decoder.BankDecoder`) with M
identical sub-arrays, each one a standard memory-compiler block modelled
by :class:`~repro.cache.directmapped.DirectMappedCache` (or any object
with the same ``access``/``flush`` interface).

Remapping correctness: within one re-indexing epoch the mapping f() is a
bijection on banks, so no two live addresses collide; across epochs the
cache is flushed when the mapping changes (Section III-A3: "every time
the indexing is updated ... a cache flush is required"). The functional
model additionally stores the logical bank bits with each tag, which
keeps the model correct even if a caller forgets to flush — a mapping
change then simply turns stale lines into misses.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cache.directmapped import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import AccessOutcome, BankedCacheStats
from repro.errors import GeometryError
from repro.hw.decoder import BankDecoder, DecodedAccess
from repro.hw.remap import StaticRemapper


class BankedCache:
    """A cache of ``num_banks`` uniform banks behind decoder D.

    Parameters
    ----------
    geometry:
        Overall cache geometry.
    num_banks:
        ``M = 2**p``; must not exceed the number of sets.
    remapper:
        The f() datapath (static, probing or scrambling). Defaults to
        the identity (conventional partitioned cache).
    array_factory:
        Constructor for each bank's array model, taking the per-bank
        geometry; defaults to :class:`DirectMappedCache` (the paper's
        configuration) when ``geometry.ways == 1`` and the LRU
        set-associative model otherwise.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        num_banks: int,
        remapper: StaticRemapper | None = None,
        array_factory: Callable[[CacheGeometry], object] | None = None,
    ) -> None:
        if num_banks > geometry.num_sets:
            raise GeometryError(
                f"{num_banks} banks exceed {geometry.num_sets} sets"
            )
        self.geometry = geometry
        self.num_banks = num_banks
        self.decoder = BankDecoder(geometry.num_sets, num_banks, remapper)
        self.bank_geometry = CacheGeometry(
            size_bytes=geometry.size_bytes // num_banks,
            line_size=geometry.line_size,
            ways=geometry.ways,
        )
        if array_factory is None:
            if geometry.ways == 1:
                array_factory = DirectMappedCache
            else:
                from repro.cache.setassoc import SetAssociativeCache

                array_factory = SetAssociativeCache
        self.banks = [array_factory(self.bank_geometry) for _ in range(num_banks)]
        self.stats = BankedCacheStats(bank_accesses=[0] * num_banks)

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def route(self, address: int) -> DecodedAccess:
        """Route ``address`` through decoder D without touching the arrays."""
        return self.decoder.decode(self.geometry.index_of(address))

    def access(self, address: int) -> tuple[AccessOutcome, DecodedAccess]:
        """Perform one access; return its outcome and the routing record."""
        tag, index, _ = self.geometry.split(address)
        return self.access_split(tag, index)

    def access_split(self, tag: int, index: int) -> tuple[AccessOutcome, DecodedAccess]:
        """Access with a pre-split ``(tag, index)`` pair.

        Same machine as :meth:`access`; lets a caller holding the
        memoized decode of a :class:`~repro.core.plan.TracePlan` skip
        re-splitting every address.
        """
        decoded = self.decoder.decode(index)
        # Extended tag: original tag plus the logical bank bits (see
        # module docstring for why this is safe and convenient).
        extended_tag = (tag << self.decoder.bank_bits) | decoded.logical_bank
        bank_address = self.bank_geometry.address_for(
            extended_tag, decoded.line_in_bank
        )
        outcome = self.banks[decoded.physical_bank].access(bank_address)
        self.stats.record_bank(decoded.physical_bank, outcome)
        return outcome, decoded

    # ------------------------------------------------------------------
    # Management operations
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Invalidate all banks; return the number of dropped lines."""
        dropped = sum(bank.flush() for bank in self.banks)
        self.stats.flushes += 1
        return dropped

    def update_mapping(self) -> int:
        """Pulse the update signal: advance f() and flush (paper's rule).

        Returns the number of lines invalidated by the flush. In a real
        system the update is piggybacked on a flush that is happening
        anyway (e.g. on a context switch), making it free; the simulator
        accounts the induced misses explicitly so the claim can be
        checked.
        """
        self.decoder.remapper.update()
        return self.flush()

    @property
    def valid_lines(self) -> int:
        """Total valid lines across banks."""
        return sum(bank.valid_lines for bank in self.banks)
