"""Hit/miss bookkeeping shared by all cache models."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AccessOutcome(Enum):
    """Result of one cache access."""

    HIT = "hit"
    MISS = "miss"


@dataclass
class CacheStats:
    """Aggregated access counters.

    Attributes
    ----------
    hits, misses:
        Access outcomes.
    flushes:
        Whole-cache invalidations (each one also charges the accesses
        needed to refill, indirectly, as post-flush misses).
    """

    hits: int = 0
    misses: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0.0 when no accesses were made)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0.0 when no accesses were made)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def record(self, outcome: AccessOutcome) -> None:
        """Count one access outcome."""
        if outcome is AccessOutcome.HIT:
            self.hits += 1
        else:
            self.misses += 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return combined counters of two disjoint measurement windows."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            flushes=self.flushes + other.flushes,
        )


@dataclass
class BankedCacheStats(CacheStats):
    """Counters of a banked cache, including per-physical-bank accesses."""

    bank_accesses: list[int] = field(default_factory=list)

    def record_bank(self, bank: int, outcome: AccessOutcome) -> None:
        """Count one access routed to ``bank``."""
        self.record(outcome)
        self.bank_accesses[bank] += 1
