"""Cache simulator substrate.

A small trace-driven cache model family:

* :mod:`repro.cache.geometry` — sizes, index/tag/offset arithmetic;
* :mod:`repro.cache.directmapped` — the paper's cache organization;
* :mod:`repro.cache.setassoc` — LRU set-associative generalization
  (the dynamic-indexing architecture is agnostic to associativity, so
  the library supports it even though the paper evaluates direct-mapped
  caches);
* :mod:`repro.cache.banked` — an M-bank uniformly partitioned cache
  routed through the decoder of :mod:`repro.hw.decoder`;
* :mod:`repro.cache.stats` — hit/miss and per-bank counters.

All models are *functional* (hit/miss and content tracking only); timing
and power are layered on top by :mod:`repro.core`.
"""

from repro.cache.banked import BankedCache
from repro.cache.directmapped import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import AccessOutcome, CacheStats

__all__ = [
    "CacheGeometry",
    "DirectMappedCache",
    "SetAssociativeCache",
    "BankedCache",
    "CacheStats",
    "AccessOutcome",
]
