"""Set-associative cache with true-LRU replacement.

The paper evaluates direct-mapped caches, but nothing in the partitioned
architecture depends on associativity (banking splits the *set index*),
so the library provides an LRU set-associative model as well. It is used
by the extension examples and by tests that check the banked cache
composes with any underlying array model.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import AccessOutcome, CacheStats


class SetAssociativeCache:
    """An LRU set-associative cache over ``geometry``.

    Each set is an :class:`collections.OrderedDict` from tag to None,
    maintained in LRU order (oldest first).

    Examples
    --------
    >>> g = CacheGeometry(1024, 16, ways=2)
    >>> cache = SetAssociativeCache(g)
    >>> a, b = 0x000, 0x400   # same set, different tags
    >>> cache.access(a).name, cache.access(b).name, cache.access(a).name
    ('MISS', 'MISS', 'HIT')
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = CacheStats()
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]

    def access(self, address: int) -> AccessOutcome:
        """Look up ``address``; allocate with LRU eviction on miss."""
        tag, index, _ = self.geometry.split(address)
        line_set = self._sets[index]
        if tag in line_set:
            line_set.move_to_end(tag)
            outcome = AccessOutcome.HIT
        else:
            if len(line_set) >= self.geometry.ways:
                line_set.popitem(last=False)
            line_set[tag] = None
            outcome = AccessOutcome.MISS
        self.stats.record(outcome)
        return outcome

    def probe(self, address: int) -> bool:
        """Non-allocating lookup: True if ``address`` would hit."""
        tag, index, _ = self.geometry.split(address)
        return tag in self._sets[index]

    def flush(self) -> int:
        """Invalidate everything; return the number of dropped lines."""
        dropped = sum(len(s) for s in self._sets)
        for line_set in self._sets:
            line_set.clear()
        self.stats.flushes += 1
        return dropped

    @property
    def valid_lines(self) -> int:
        """Number of currently valid lines."""
        return sum(len(s) for s in self._sets)
