"""Cache geometry: size arithmetic and address decomposition.

The paper's notation: a direct-mapped cache with ``L = 2**n`` lines has
``n`` index bits; partitioning into ``M = 2**p`` banks splits the index
into ``p`` MSBs (bank address) and ``n-p`` LSBs (line within bank).
:class:`CacheGeometry` provides the ``n`` side of that arithmetic; the
``p`` side lives in :class:`repro.hw.decoder.BankDecoder`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.utils.bitops import bit_slice, is_power_of_two, log2_exact


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a cache array.

    Attributes
    ----------
    size_bytes:
        Total data capacity (power of two).
    line_size:
        Line (block) size in bytes (power of two). The paper evaluates
        16 and 32 bytes.
    ways:
        Associativity; 1 for the paper's direct-mapped configuration.

    Examples
    --------
    >>> g = CacheGeometry(size_bytes=16 * 1024, line_size=16)
    >>> g.num_lines, g.index_bits, g.offset_bits
    (1024, 10, 4)
    """

    size_bytes: int
    line_size: int
    ways: int = 1

    def __post_init__(self) -> None:
        for name, value in (
            ("size_bytes", self.size_bytes),
            ("line_size", self.line_size),
            ("ways", self.ways),
        ):
            if not is_power_of_two(value):
                raise GeometryError(f"{name} must be a power of two, got {value}")
        if self.line_size > self.size_bytes:
            raise GeometryError("line_size exceeds cache size")
        if self.ways > self.num_lines:
            raise GeometryError("associativity exceeds the number of lines")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Total cache lines ``L``."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (equals ``num_lines`` when direct-mapped)."""
        return self.num_lines // self.ways

    @property
    def offset_bits(self) -> int:
        """Byte-offset bits within a line."""
        return log2_exact(self.line_size)

    @property
    def index_bits(self) -> int:
        """Set-index bits ``n``."""
        return log2_exact(self.num_sets)

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def split(self, address: int) -> tuple[int, int, int]:
        """Decompose a byte address into ``(tag, index, offset)``."""
        if address < 0:
            raise GeometryError("addresses are non-negative")
        offset = bit_slice(address, 0, self.offset_bits)
        index = bit_slice(address, self.offset_bits, self.index_bits)
        tag = address >> (self.offset_bits + self.index_bits)
        return tag, index, offset

    def index_of(self, address: int) -> int:
        """Set index of ``address``."""
        return self.split(address)[1]

    def tag_of(self, address: int) -> int:
        """Tag of ``address``."""
        return self.split(address)[0]

    def address_for(self, tag: int, index: int, offset: int = 0) -> int:
        """Rebuild a byte address from its fields (inverse of :meth:`split`)."""
        if not 0 <= index < self.num_sets:
            raise GeometryError(f"index {index} out of range")
        if not 0 <= offset < self.line_size:
            raise GeometryError(f"offset {offset} out of range")
        if tag < 0:
            raise GeometryError("tag must be non-negative")
        return (tag << (self.offset_bits + self.index_bits)) | (
            index << self.offset_bits
        ) | offset

    def line_address(self, address: int) -> int:
        """Address with the offset bits cleared (the line's base address)."""
        return address & ~((1 << self.offset_bits) - 1)
