"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ReproWarning(UserWarning):
    """Base class for warnings emitted by the ``repro`` package.

    Used where a request is honored with degraded behavior rather than
    rejected — e.g. a ``parallel=N`` streaming pass falling back to the
    serial single pass when the stream cannot travel to workers.
    """


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range.

    Raised, for example, when a cache size is not a power of two, when the
    number of banks exceeds the number of cache lines, or when a technology
    parameter is negative.
    """


class GeometryError(ConfigurationError):
    """A cache geometry parameter is invalid (sizes, line size, ways)."""


class TraceError(ReproError):
    """A trace is malformed (non-monotonic cycles, bad record, bad file)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class UnknownEngineError(ReproError, ValueError):
    """An engine name is not in the engine registry.

    Derives from :class:`ValueError` as well, so callers that predate
    the registry (``except ValueError``) keep working.
    """


class UnknownMetricError(ReproError, ValueError):
    """A metric (or metric value) name is not in the metric registry."""


class ServiceError(ReproError):
    """The campaign service layer failed (index, work queue, or HTTP).

    Raised for invalid index queries, unclaimable work-queue state, and
    client/server protocol failures — anything in
    :mod:`repro.campaign.service` that is not a plain serialization or
    configuration problem.
    """


class ModelError(ReproError):
    """An analytical model was evaluated outside its domain of validity."""


class CalibrationError(ModelError):
    """A calibration routine failed to converge to its target."""
