"""Indexing policy objects.

Policies own a remapper datapath and expose a uniform interface to the
simulators: :meth:`IndexingPolicy.physical_bank` for routing and
:meth:`IndexingPolicy.update` for the time-varying step. They also
expose :meth:`mapping` — the current full logical→physical permutation —
which the fast simulator applies vectorially to a whole epoch of
accesses at once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.remap import ProbingRemapper, ScramblingRemapper, StaticRemapper
from repro.utils.bitops import log2_exact


class IndexingPolicy(ABC):
    """Interface of a dynamic indexing policy over ``num_banks`` banks."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, num_banks: int) -> None:
        self.num_banks = num_banks
        self.p_bits = log2_exact(num_banks)
        self.updates_applied = 0

    @property
    @abstractmethod
    def remapper(self) -> StaticRemapper:
        """The underlying hardware datapath."""

    def physical_bank(self, logical_bank: int) -> int:
        """Map one logical bank address to its current physical bank."""
        return self.remapper.map(logical_bank)

    def mapping(self) -> np.ndarray:
        """Current permutation as an array: ``phys = mapping[logical]``."""
        return np.array(
            [self.remapper.map(b) for b in range(self.num_banks)], dtype=np.int64
        )

    def update(self) -> None:
        """Pulse the update signal (the mapping changes; caller flushes)."""
        self.remapper.update()
        self.updates_applied += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_banks={self.num_banks})"


class StaticPolicy(IndexingPolicy):
    """Identity mapping — the conventional power-managed partition (LT0)."""

    name = "static"

    def __init__(self, num_banks: int) -> None:
        super().__init__(num_banks)
        self._remapper = StaticRemapper(self.p_bits)

    @property
    def remapper(self) -> StaticRemapper:
        return self._remapper


class ProbingPolicy(IndexingPolicy):
    """Linear probing: bank ``i`` maps to ``(i + R) mod M`` after R updates.

    Optimal by construction: after at least M updates every logical bank
    has spent identical time on every physical bank ([7], Section III-A3).
    """

    name = "probing"

    def __init__(self, num_banks: int, increment: int = 1) -> None:
        super().__init__(num_banks)
        self._remapper = ProbingRemapper(self.p_bits, increment=increment)

    @property
    def remapper(self) -> StaticRemapper:
        return self._remapper

    def mapping(self) -> np.ndarray:
        """Vector form of ``(i + counter) mod M`` (cheap, no per-bank calls)."""
        offset = self._remapper.counter
        return (np.arange(self.num_banks, dtype=np.int64) + offset) % self.num_banks


class ScramblingPolicy(IndexingPolicy):
    """LFSR scrambling: bank ``i`` maps to ``i XOR word``.

    Quasi-uniform: the residual imbalance decays as 1/sqrt(N) with the
    number of updates N (Section IV-B2); in any realistic deployment N
    is large enough to make the sub-optimality negligible.
    """

    name = "scrambling"

    def __init__(self, num_banks: int, lfsr_width: int = 16, seed: int = 0xACE1) -> None:
        super().__init__(num_banks)
        self._remapper = ScramblingRemapper(self.p_bits, lfsr_width=lfsr_width, seed=seed)

    @property
    def remapper(self) -> StaticRemapper:
        return self._remapper

    def mapping(self) -> np.ndarray:
        """Vector form of ``i XOR word``."""
        word = self._remapper.word
        return np.arange(self.num_banks, dtype=np.int64) ^ word


#: Names accepted by :func:`make_policy`.
POLICY_NAMES: tuple[str, ...] = ("static", "probing", "scrambling")


def make_policy(name: str, num_banks: int, **kwargs) -> IndexingPolicy:
    """Construct a policy by registry name.

    >>> make_policy("probing", 4).name
    'probing'
    """
    registry = {
        "static": StaticPolicy,
        "probing": ProbingPolicy,
        "scrambling": ScramblingPolicy,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}"
        ) from None
    return cls(num_banks, **kwargs)
