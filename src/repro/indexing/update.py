"""Update-event scheduling.

Section III-A3: updates "can be activated with a very low frequency
(e.g., once a day or even less frequently) given the typical time
horizons of aging", and are best piggybacked on flushes the system
performs anyway (context switches), making them energy-free.

A simulation covers minutes of wall-clock time at most, so the simulator
compresses the schedule. Two forms are supported:

* **periodic** — every ``period_cycles`` simulated cycles (the default
  used by the experiment harness);
* **explicit events** — an arbitrary increasing list of update cycles,
  e.g. produced by :func:`poisson_flush_schedule` to model updates
  riding on context-switch flushes that arrive irregularly.

What matters for the reproduction is the *number* of updates relative
to M (probing needs >= M to reach perfect uniformity), not their exact
spacing — which the irregular-schedule tests confirm.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class UpdateSchedule:
    """Update-event generator (periodic or explicit).

    Parameters
    ----------
    period_cycles:
        Interval between updates; ``None`` disables updates entirely
        (static indexing or monolithic baselines). Ignored when
        ``events`` is given.
    offset_cycles:
        Cycle of the first periodic update (defaults to one period).
    events:
        Explicit strictly-increasing update cycles.

    Examples
    --------
    >>> s = UpdateSchedule(100)
    >>> [s.due(99), s.due(100), s.due(100)]
    [False, True, False]
    >>> e = UpdateSchedule.from_events([10, 400])
    >>> [e.due(9), e.due(10), e.due(500), e.due(10**9)]
    [False, True, True, False]
    """

    def __init__(
        self,
        period_cycles: int | None,
        offset_cycles: int | None = None,
        events: tuple[int, ...] | None = None,
    ) -> None:
        if events is not None:
            if any(c < 0 for c in events):
                raise ConfigurationError("update events must be non-negative")
            if any(b <= a for a, b in zip(events, events[1:])):
                raise ConfigurationError("update events must be strictly increasing")
            self.period_cycles = None
            self._events: list[int] | None = list(events)
            self._cursor = 0
            self._next = self._events[0] if self._events else None
        else:
            if period_cycles is not None and period_cycles < 1:
                raise ConfigurationError("update period must be >= 1 cycle")
            self.period_cycles = period_cycles
            self._events = None
            self._cursor = 0
            if period_cycles is None:
                self._next = None
            else:
                self._next = offset_cycles if offset_cycles is not None else period_cycles
        self.fired = 0

    @classmethod
    def from_events(cls, events) -> "UpdateSchedule":
        """Build an explicit-event schedule."""
        return cls(None, events=tuple(int(c) for c in events))

    @property
    def next_update_cycle(self) -> int | None:
        """Cycle of the next update, or None when disabled/exhausted."""
        return self._next

    def due(self, cycle: int) -> bool:
        """True exactly once per pending update at or before ``cycle``.

        The caller applies one update per True; repeated calls drain
        multiple overdue events one at a time.
        """
        if self._next is None or cycle < self._next:
            return False
        if self._events is not None:
            self._cursor += 1
            self._next = (
                self._events[self._cursor] if self._cursor < len(self._events) else None
            )
        else:
            self._next += self.period_cycles  # type: ignore[operator]
        self.fired += 1
        return True

    def updates_before(self, horizon_cycles: int) -> int:
        """How many updates a run of ``horizon_cycles`` will see in total.

        Counts events strictly before ``horizon_cycles`` that have not
        already fired.
        """
        if self._events is not None:
            remaining = self._events[self._cursor :]
            return sum(1 for c in remaining if c < horizon_cycles)
        if self.period_cycles is None:
            return 0
        first = self._next if self._next is not None else self.period_cycles
        if horizon_cycles <= first:
            return 0
        return 1 + (horizon_cycles - 1 - first) // self.period_cycles

    def boundaries_up_to(self, last_cycle: int) -> np.ndarray:
        """All firing cycles <= ``last_cycle`` (for the fast engine)."""
        if self._events is not None:
            events = np.asarray(self._events, dtype=np.int64)
            return events[events <= last_cycle]
        if self.period_cycles is None or self._next is None:
            return np.empty(0, dtype=np.int64)
        if self._next > last_cycle:
            return np.empty(0, dtype=np.int64)
        return np.arange(self._next, last_cycle + 1, self.period_cycles, dtype=np.int64)


def poisson_flush_schedule(
    horizon_cycles: int,
    mean_interval_cycles: float,
    rng: np.random.Generator,
) -> tuple[int, ...]:
    """Sample context-switch-like flush times over a horizon.

    Flushes (and therefore updates, which ride on them) arrive as a
    Poisson process with the given mean interval. Returns the strictly
    increasing update cycles within ``[1, horizon_cycles)``.
    """
    if horizon_cycles < 1:
        raise ConfigurationError("horizon must be positive")
    if mean_interval_cycles <= 0:
        raise ConfigurationError("mean interval must be positive")
    events: list[int] = []
    cycle = 0.0
    while True:
        cycle += rng.exponential(mean_interval_cycles)
        if cycle >= horizon_cycles:
            break
        quantized = max(1, int(round(cycle)))
        if events and quantized <= events[-1]:
            quantized = events[-1] + 1
            if quantized >= horizon_cycles:
                break
        events.append(quantized)
    return tuple(events)
