"""Uniformity analysis of indexing policies (Section IV-B2).

The paper argues:

* Probing with increment 1 is *perfectly* uniform once the number of
  updates is a multiple of M (each logical bank has then visited every
  physical bank equally often);
* Scrambling's quality is governed by the repetition statistics of its
  RNG: over N updates each of the M scrambling words should ideally
  repeat N/M times, and for a uniform generator the relative deviation
  (the paper's *error*) decays as 1/sqrt(N).

These functions measure exactly those quantities so the policy bench
can plot the paper's claimed convergence behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.indexing.policies import IndexingPolicy


def mapping_histogram(policy: IndexingPolicy, num_updates: int) -> np.ndarray:
    """Visit counts: ``hist[logical, physical]`` over ``num_updates`` epochs.

    Epoch 0 uses the policy's initial mapping; each subsequent epoch
    follows one update. The policy object is advanced (pass a fresh one).
    """
    if num_updates < 0:
        raise ConfigurationError("num_updates must be non-negative")
    m = policy.num_banks
    hist = np.zeros((m, m), dtype=np.int64)
    for epoch in range(num_updates + 1):
        mapping = policy.mapping()
        hist[np.arange(m), mapping] += 1
        if epoch < num_updates:
            policy.update()
    return hist


def uniformity_error(hist: np.ndarray) -> float:
    """Relative max deviation of visit counts from the uniform ideal.

    0.0 means every logical bank spent exactly the same number of epochs
    on every physical bank (probing after k*M updates); larger values
    mean some bank pair is over- or under-visited.
    """
    if hist.ndim != 2 or hist.shape[0] != hist.shape[1]:
        raise ConfigurationError("histogram must be square")
    total_epochs = hist.sum(axis=1)
    if not np.all(total_epochs == total_epochs[0]):
        raise ConfigurationError("histogram rows cover different epoch counts")
    ideal = total_epochs[0] / hist.shape[1]
    if ideal == 0:
        return 0.0
    return float(np.max(np.abs(hist - ideal)) / ideal)


def rng_repetition_error(words: np.ndarray, num_values: int) -> float:
    """The paper's RNG *error*: deviation of value repetition from N/M.

    Parameters
    ----------
    words:
        Sequence of generated scrambling words.
    num_values:
        M — size of the value range ``[0, M)``.

    Returns the max relative deviation of any value's count from the
    ideal ``N/M``. For a uniform RNG this decays as ``1/sqrt(N)``.
    """
    if num_values < 1:
        raise ConfigurationError("num_values must be positive")
    words = np.asarray(words)
    if words.size == 0:
        return 0.0
    if np.any((words < 0) | (words >= num_values)):
        raise ConfigurationError("words outside [0, num_values)")
    counts = np.bincount(words, minlength=num_values)
    ideal = words.size / num_values
    return float(np.max(np.abs(counts - ideal)) / ideal)
