"""Dynamic indexing policies — the paper's core contribution.

A policy wraps one of the remapping datapaths of :mod:`repro.hw.remap`
with naming, construction-by-name, and update scheduling:

* ``static`` — conventional partitioned cache (the LT0 baseline);
* ``probing`` — Figure 3(a), provably uniform after >= M updates;
* ``scrambling`` — Figure 3(b), asymptotically uniform.

:mod:`repro.indexing.update` schedules when the ``update`` signal fires
(periodically in simulations; piggybacked on cache flushes in a real
system), and :mod:`repro.indexing.analysis` quantifies how uniformly a
policy spreads a bank address over the banks (Section IV-B2).
"""

from repro.indexing.analysis import (
    mapping_histogram,
    rng_repetition_error,
    uniformity_error,
)
from repro.indexing.policies import (
    POLICY_NAMES,
    IndexingPolicy,
    ProbingPolicy,
    ScramblingPolicy,
    StaticPolicy,
    make_policy,
)
from repro.indexing.update import UpdateSchedule

__all__ = [
    "IndexingPolicy",
    "StaticPolicy",
    "ProbingPolicy",
    "ScramblingPolicy",
    "make_policy",
    "POLICY_NAMES",
    "UpdateSchedule",
    "mapping_histogram",
    "uniformity_error",
    "rng_repetition_error",
]
