"""Compiled simulation kernels with a pure-numpy fallback.

Public surface is :mod:`repro.kernels.dispatch` re-exported here; the
backend modules (``_numpy``, ``_numba``, ``_cext``) are private —
reprolint REPRO009 rejects importing them outside this package.
"""

from repro.kernels.dispatch import (
    active_backend,
    available_backends,
    backend_status,
    compiled_backend,
    gap_extract,
    gap_threshold_batch,
    lru_segment,
    lru_walk,
    set_backend,
    stream_gap_update,
    use_backend,
)

__all__ = [
    "active_backend",
    "available_backends",
    "backend_status",
    "compiled_backend",
    "gap_extract",
    "gap_threshold_batch",
    "lru_segment",
    "lru_walk",
    "set_backend",
    "stream_gap_update",
    "use_backend",
]
