"""C kernel backend: build ``_ckernels.c`` on demand, load via ctypes.

The shared library is compiled once per source revision with the system
C compiler (``cc``/``gcc``; no Python C-API involved, so there is no
ABI coupling) and cached next to the package (or, when that directory
is read-only, under the user's temp dir) keyed by a hash of the source
and the compile command. Every step degrades gracefully: no compiler,
a failed compile, or an unloadable artifact simply marks the backend
unavailable and :mod:`repro.kernels.dispatch` falls back to numpy —
the compiled path is an accelerator, never a dependency.

Concurrency: compiles land in a unique temp file and are published
with ``os.replace``, so racing processes at worst both compile and one
atomic rename wins.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.errors import SimulationError

NAME = "cext"

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_ckernels.c")
_CFLAGS = ("-O2", "-shared", "-fPIC", "-fvisibility=hidden")

#: Error codes of _ckernels.c mapped onto the numpy backend's exact
#: SimulationError messages, so backends fail identically.
_ERRORS = {
    -1: "access cycles must be strictly increasing",
    -2: "access cycles outside the observation window",
    -3: "chunk accesses must be later than every prior access",
}

_lib: ctypes.CDLL | None = None
_load_error: str | None = None


def _compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _cache_dirs() -> list[str]:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return [override]
    return [
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "_cache"),
        os.path.join(tempfile.gettempdir(), "repro-kernels"),
    ]


def _build() -> tuple[ctypes.CDLL | None, str | None]:
    """Compile (if needed) and load the kernel library."""
    compiler = _compiler()
    if compiler is None:
        return None, "no C compiler (cc/gcc/clang) on PATH"
    try:
        with open(_SOURCE, "rb") as handle:
            source = handle.read()
    except OSError as exc:
        return None, f"kernel source unreadable: {exc}"
    key = hashlib.sha256(source + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    soname = f"_ckernels_{key}.so"
    last_error = "no writable cache directory"
    for directory in _cache_dirs():
        target = os.path.join(directory, soname)
        if not os.path.exists(target):
            try:
                os.makedirs(directory, exist_ok=True)
                fd, tmp = tempfile.mkstemp(suffix=".so", dir=directory)
                os.close(fd)
                proc = subprocess.run(
                    [compiler, *_CFLAGS, "-o", tmp, _SOURCE],
                    capture_output=True,
                    text=True,
                )
                if proc.returncode != 0:
                    os.unlink(tmp)
                    return None, f"compile failed: {proc.stderr.strip()[:200]}"
                os.replace(tmp, target)
            except OSError as exc:
                last_error = f"cache dir {directory!r} unusable: {exc}"
                continue
        try:
            return ctypes.CDLL(target), None
        except OSError as exc:
            last_error = f"built library failed to load: {exc}"
    return None, last_error


_i64 = ctypes.c_int64
_p64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")

_SIGNATURES = {
    "repro_gap_extract": (
        _i64,
        [_p64, _i64, _p64, _i64, _i64, _i64, _p64, _p64, _p64, _p64, _p64],
    ),
    "repro_gap_threshold_batch": (
        None,
        [_p64, _p64, _i64, _i64, _p64, _i64, _p64, _p64],
    ),
    "repro_stream_gap_update": (
        _i64,
        [_p64, _p64, _i64, _p64, _p64, _p64, _p64, _p64, _i64, _p64, _p64],
    ),
    "repro_lru_walk": (_i64, [_p64, _p64, _i64, _i64, _p64, _p64]),
    "repro_lru_segment": (_i64, [_p64, _p64, _i64, _p64, _i64]),
}


def _library() -> ctypes.CDLL:
    global _lib, _load_error
    if _lib is None and _load_error is None:
        _lib, _load_error = _build()
        if _lib is not None:
            for symbol, (restype, argtypes) in _SIGNATURES.items():
                fn = getattr(_lib, symbol)
                fn.restype = restype
                fn.argtypes = argtypes
    if _lib is None:
        raise SimulationError(f"compiled kernel backend unavailable: {_load_error}")
    return _lib


def available() -> bool:
    """Whether the compiled library can be (or has been) loaded."""
    try:
        _library()
    except SimulationError:
        return False
    return True


def unavailable_reason() -> str | None:
    """Why the backend is unavailable (``None`` when it is available)."""
    return None if available() else _load_error


def _contig(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _raise_code(code: int) -> None:
    raise SimulationError(_ERRORS.get(code, f"kernel error {code}"))


# ----------------------------------------------------------------------
# Backend contract (see repro.kernels.dispatch for semantics)
# ----------------------------------------------------------------------
def gap_extract(cycles, splits, start_cycle, end_cycle):
    lib = _library()
    cycles = _contig(cycles)
    splits = _contig(splits)
    num_banks = splits.size - 1
    capacity = cycles.size + 3 * num_banks
    gap_values = np.empty(capacity, dtype=np.int64)
    gap_banks = np.empty(capacity, dtype=np.int64)
    accesses = np.empty(num_banks, dtype=np.int64)
    idle_intervals = np.empty(num_banks, dtype=np.int64)
    idle_cycles = np.empty(num_banks, dtype=np.int64)
    count = lib.repro_gap_extract(
        cycles,
        cycles.size,
        splits,
        num_banks,
        start_cycle,
        end_cycle,
        gap_values,
        gap_banks,
        accesses,
        idle_intervals,
        idle_cycles,
    )
    if count < 0:
        _raise_code(count)
    return (
        gap_values[:count].copy(),
        gap_banks[:count].copy(),
        accesses,
        idle_intervals,
        idle_cycles,
    )


def gap_threshold_batch(gap_values, gap_banks, num_banks, breakevens, useful, sleep):
    lib = _library()
    lib.repro_gap_threshold_batch(
        _contig(gap_values),
        _contig(gap_banks),
        int(gap_values.size),
        int(num_banks),
        _contig(breakevens),
        int(breakevens.size),
        useful,
        sleep,
    )


def stream_gap_update(
    cycles,
    splits,
    last_event,
    accesses,
    idle_intervals,
    idle_cycles,
    breakevens,
    useful,
    sleep,
):
    lib = _library()
    code = lib.repro_stream_gap_update(
        _contig(cycles),
        _contig(splits),
        int(last_event.size),
        last_event,
        accesses,
        idle_intervals,
        idle_cycles,
        _contig(breakevens),
        int(breakevens.size),
        useful,
        sleep,
    )
    if code < 0:
        _raise_code(code)


def lru_walk(tags, starts, ways):
    lib = _library()
    num_groups = starts.size - 1
    scratch = np.empty(int(ways), dtype=np.int64)
    lines_per_group = np.zeros(num_groups, dtype=np.int64)
    hits = lib.repro_lru_walk(
        _contig(tags), _contig(starts), num_groups, int(ways), scratch, lines_per_group
    )
    return int(hits), lines_per_group


def lru_segment(idx, tags, stacks):
    lib = _library()
    return int(
        lib.repro_lru_segment(
            _contig(idx), _contig(tags), int(idx.size), stacks, stacks.shape[1]
        )
    )
