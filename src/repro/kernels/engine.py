"""The ``compiled`` engine: fast-engine semantics on compiled kernels.

Registered unconditionally so the name always resolves; its ``auto``
priority depends on whether a compiled backend (numba or the on-demand
C extension) is actually loadable:

* compiled backend available → priority 20, above ``fast`` (10), so
  ``engine="auto"`` picks it up;
* numpy-only environment → priority 5, below ``fast``: the engine
  still runs (graceful fallback through the dispatch shim) but
  ``auto`` keeps selecting the plain numpy engine.

Same ``family="banked"`` as ``fast``/``reference`` — the differential
fuzz suite pins every backend bit-identical, so results share store
records.
"""

from __future__ import annotations

from repro.core.engine import register_engine
from repro.core.fastsim import FastEngine, FastSimulator, run_breakeven_group
from repro.kernels import dispatch

#: Best available compiled backend at import, or ``None``. Resolved
#: once per process; worker processes re-resolve on their own import.
BACKEND: str | None = dispatch.compiled_backend()


class CompiledEngine(FastEngine):
    """Fast-engine adapter running on the best compiled kernel backend."""

    name = "compiled"
    description = (
        f"fast-engine semantics on compiled kernels (backend: {BACKEND})"
        if BACKEND
        else "fast-engine semantics on compiled kernels (no compiled "
        "backend available; falling back to numpy)"
    )
    priority = 20 if BACKEND else 5
    family = "banked"

    def run(self, config, trace, lut=None, plan=None):
        return FastSimulator(config, lut, plan=plan, backend=BACKEND).run(trace)

    @staticmethod
    def run_group(configs, trace, lut=None, plan=None):
        """Batched evaluation of a breakeven-only config group."""
        return run_breakeven_group(
            configs, trace, lut=lut, plan=plan, backend=BACKEND
        )

    # -- streaming capabilities (see repro.core.streamsim) -------------
    @staticmethod
    def run_streaming(config, stream, lut=None, plan=None):
        """Out-of-core simulation from a chunked trace stream."""
        from repro.core.streamsim import run_streaming

        return run_streaming(config, stream, lut=lut, plan=plan, backend=BACKEND)

    @staticmethod
    def run_streaming_group(configs, stream, lut=None, plan=None):
        """One streamed pass for a whole breakeven-only group."""
        from repro.core.streamsim import run_streaming_group

        return run_streaming_group(
            configs, stream, lut=lut, plan=plan, backend=BACKEND
        )

    @staticmethod
    def open_stream_cursor(configs, plan, shard=None):
        """Carried-state cursor for single-pass multi-group evaluation."""
        from repro.core.streamsim import StreamCursor

        return StreamCursor(configs, plan, backend=BACKEND, shard=shard)


register_engine(CompiledEngine())
