/* Compiled integer-exact simulation kernels.
 *
 * C implementations of the hot inner loops behind
 * ``repro.kernels.dispatch``: the idle-gap extraction and breakeven
 * thresholding of ``repro.power.idleness``, the streaming carry-state
 * gap pass, and the LRU walks shared by ``repro.core.fastsim`` and
 * ``repro.core.streamsim``. Built on demand by ``repro.kernels._cext``
 * (cc -O2 -shared) and loaded through ctypes; every function operates
 * on int64 buffers only, so results are bit-identical to the numpy
 * backend by construction (the differential fuzz suite enforces it).
 *
 * Error contract: functions that validate their input return 0 on
 * success or a negative REPRO_ERR_* code; the ctypes wrapper maps the
 * code onto the exact SimulationError message the numpy backend
 * raises.
 */

#include <stdint.h>

#define REPRO_OK 0
#define REPRO_ERR_NONMONOTONIC (-1)
#define REPRO_ERR_WINDOW (-2)
#define REPRO_ERR_NOT_LATER (-3)

#if defined(_WIN32)
#define REPRO_EXPORT __declspec(dllexport)
#else
#define REPRO_EXPORT __attribute__((visibility("default")))
#endif

/* Idle-gap extraction over the bank-sorted access stream.
 *
 * Bank b owns cycles[splits[b]:splits[b+1]] (strictly increasing).
 * Emits every positive idle gap (value, bank) — leading, interior,
 * trailing, and the whole-window gap of a never-accessed bank — and
 * folds per-bank accesses / idle_intervals / idle_cycles counters.
 * Gap ordering is per bank (the consumers only ever reduce over the
 * multiset, which the numpy backend produces in a different but
 * equivalent order).
 *
 * Returns the number of gaps written (capacity needed: n + 3 *
 * num_banks), or a negative error code.
 */
REPRO_EXPORT int64_t repro_gap_extract(
    const int64_t *cycles, int64_t n,
    const int64_t *splits, int64_t num_banks,
    int64_t start_cycle, int64_t end_cycle,
    int64_t *gap_values, int64_t *gap_banks,
    int64_t *accesses, int64_t *idle_intervals, int64_t *idle_cycles)
{
    int64_t window = end_cycle - start_cycle;
    int64_t out = 0;
    (void)n;
    for (int64_t b = 0; b < num_banks; ++b) {
        int64_t lo = splits[b], hi = splits[b + 1];
        int64_t count = hi - lo;
        accesses[b] = count;
        idle_intervals[b] = 0;
        idle_cycles[b] = 0;
        if (count == 0) {
            if (window > 0) {
                gap_values[out] = window;
                gap_banks[out] = b;
                ++out;
                idle_intervals[b] = 1;
                idle_cycles[b] = window;
            }
            continue;
        }
        int64_t prev = start_cycle - 1;
        for (int64_t i = lo; i < hi; ++i) {
            int64_t c = cycles[i];
            if (c < start_cycle || c >= end_cycle)
                return REPRO_ERR_WINDOW;
            if (c <= prev && i > lo)
                return REPRO_ERR_NONMONOTONIC;
            int64_t gap = c - prev - 1;
            if (gap > 0) {
                gap_values[out] = gap;
                gap_banks[out] = b;
                ++out;
                idle_intervals[b] += 1;
                idle_cycles[b] += gap;
            }
            prev = c;
        }
        int64_t trailing = end_cycle - prev - 1;
        if (trailing > 0) {
            gap_values[out] = trailing;
            gap_banks[out] = b;
            ++out;
            idle_intervals[b] += 1;
            idle_cycles[b] += trailing;
        }
    }
    return out;
}

/* Threshold an extracted gap multiset at each breakeven.
 *
 * breakevens[r] < 0 means infinite (no gap ever converts — how an
 * unmanaged configuration is accounted). useful/sleep are (n_be,
 * num_banks) row-major buffers the caller zeroed.
 */
REPRO_EXPORT void repro_gap_threshold_batch(
    const int64_t *gap_values, const int64_t *gap_banks, int64_t n_gaps,
    int64_t num_banks,
    const int64_t *breakevens, int64_t n_be,
    int64_t *useful, int64_t *sleep)
{
    for (int64_t r = 0; r < n_be; ++r) {
        int64_t be = breakevens[r];
        if (be < 0)
            continue;
        int64_t *u = useful + r * num_banks;
        int64_t *s = sleep + r * num_banks;
        for (int64_t i = 0; i < n_gaps; ++i) {
            int64_t gap = gap_values[i];
            if (gap > be) {
                int64_t b = gap_banks[i];
                u[b] += 1;
                s[b] += gap - be;
            }
        }
    }
}

/* Fold one bank-sorted chunk into streaming carry-state counters.
 *
 * The fused core of StreamingGapAccumulator.update(): per-bank gaps
 * are closed against last_event (leading) and within the chunk
 * (interior), every breakeven row is thresholded in the same pass, and
 * last_event/accesses advance. Trailing gaps stay open — finalize()
 * closes them. useful/sleep are (n_be, num_banks) row-major.
 */
REPRO_EXPORT int64_t repro_stream_gap_update(
    const int64_t *cycles,
    const int64_t *splits, int64_t num_banks,
    int64_t *last_event, int64_t *accesses,
    int64_t *idle_intervals, int64_t *idle_cycles,
    const int64_t *breakevens, int64_t n_be,
    int64_t *useful, int64_t *sleep)
{
    for (int64_t b = 0; b < num_banks; ++b) {
        int64_t lo = splits[b], hi = splits[b + 1];
        if (lo == hi)
            continue;
        int64_t prev = last_event[b];
        for (int64_t i = lo; i < hi; ++i) {
            int64_t c = cycles[i];
            if (c <= prev)
                return i == lo ? REPRO_ERR_NOT_LATER : REPRO_ERR_NONMONOTONIC;
            int64_t gap = c - prev - 1;
            if (gap > 0) {
                idle_intervals[b] += 1;
                idle_cycles[b] += gap;
                for (int64_t r = 0; r < n_be; ++r) {
                    int64_t be = breakevens[r];
                    if (be >= 0 && gap > be) {
                        useful[r * num_banks + b] += 1;
                        sleep[r * num_banks + b] += gap - be;
                    }
                }
            }
            prev = c;
        }
        accesses[b] += hi - lo;
        last_event[b] = prev;
    }
    return REPRO_OK;
}

/* Cold-started LRU walk over contiguous tag groups.
 *
 * tags is sorted by (group, arrival); group g owns
 * tags[starts[g]:starts[g+1]]. Each group simulates an LRU stack of
 * ``ways`` entries from cold; scratch is a caller-provided buffer of
 * ``ways`` int64s. Writes min(distinct tags, ways) per group (the
 * lines the set retains — each miss allocates, evicting only when
 * full) and returns total hits.
 */
REPRO_EXPORT int64_t repro_lru_walk(
    const int64_t *tags, const int64_t *starts, int64_t num_groups,
    int64_t ways, int64_t *scratch, int64_t *lines_per_group)
{
    int64_t hits = 0;
    for (int64_t g = 0; g < num_groups; ++g) {
        int64_t valid = 0;
        for (int64_t i = starts[g]; i < starts[g + 1]; ++i) {
            int64_t t = tags[i];
            int64_t d = -1;
            for (int64_t w = 0; w < valid; ++w) {
                if (scratch[w] == t) {
                    d = w;
                    break;
                }
            }
            if (d >= 0) {
                ++hits;
                for (int64_t w = d; w > 0; --w)
                    scratch[w] = scratch[w - 1];
                scratch[0] = t;
            } else {
                int64_t limit = valid < ways ? valid : ways - 1;
                for (int64_t w = limit; w > 0; --w)
                    scratch[w] = scratch[w - 1];
                scratch[0] = t;
                if (valid < ways)
                    ++valid;
            }
        }
        lines_per_group[g] = valid;
    }
    return hits;
}

/* Advance carried LRU stacks through one set-sorted chunk segment.
 *
 * idx/tags are sorted by (set, arrival); stacks is the carried
 * (num_sets, ways) recency matrix with -1 marking invalid ways
 * (tags are non-negative, so -1 never aliases). A hit rotates the
 * stack above the matched way; a miss rotates the whole stack,
 * evicting the LRU way. Returns hits.
 */
REPRO_EXPORT int64_t repro_lru_segment(
    const int64_t *idx, const int64_t *tags, int64_t n,
    int64_t *stacks, int64_t ways)
{
    int64_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
        int64_t *st = stacks + idx[i] * ways;
        int64_t t = tags[i];
        int64_t d = -1;
        for (int64_t w = 0; w < ways; ++w) {
            if (st[w] == t) {
                d = w;
                break;
            }
        }
        int64_t limit;
        if (d >= 0) {
            ++hits;
            limit = d;
        } else {
            limit = ways - 1;
        }
        for (int64_t w = limit; w > 0; --w)
            st[w] = st[w - 1];
        st[0] = t;
    }
    return hits;
}
