"""Backend dispatch for the compiled simulation kernels.

Every caller outside :mod:`repro.kernels` reaches the kernels through
this module (reprolint REPRO009 enforces it), so the numpy fallback
stays load-bearing and backend selection stays a one-line concern:

- ``numba`` — JIT loops, preferred when the optional dependency is
  importable (install extra ``repro[compiled]``).
- ``cext`` — the same loops as a C shared library built on demand with
  the system compiler and loaded via ctypes; preferred when numba is
  absent but a compiler is present.
- ``numpy`` — the vectorized fallback and semantic anchor; always
  available.

The default backend is the best available, overridable globally with
the ``REPRO_KERNELS`` environment variable (read at import), with
:func:`set_backend` / :func:`use_backend`, or per call via each
kernel's ``backend=`` parameter. All counters are int64 in and out;
the differential fuzz suite pins every backend bit-identical to numpy.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from types import ModuleType

import numpy as np

from repro.errors import SimulationError

from repro.kernels import _numpy

#: Probe order doubles as preference order.
_PREFERENCE: tuple[str, ...] = ("numba", "cext", "numpy")

_modules: dict[str, ModuleType] = {"numpy": _numpy}
_failures: dict[str, str] = {}
_probed = False
_active: str | None = None


def _probe() -> None:
    """Import optional backends once, recording why each is absent."""
    global _probed
    if _probed:
        return
    _probed = True
    try:
        from repro.kernels import _numba

        _modules["numba"] = _numba
    except Exception as exc:  # numba missing or broken — fall through
        _failures["numba"] = f"{type(exc).__name__}: {exc}"
    try:
        from repro.kernels import _cext

        if _cext.available():
            _modules["cext"] = _cext
        else:
            _failures["cext"] = _cext.unavailable_reason() or "unavailable"
    except Exception as exc:
        _failures["cext"] = f"{type(exc).__name__}: {exc}"


def available_backends() -> tuple[str, ...]:
    """Importable backends, best first."""
    _probe()
    return tuple(name for name in _PREFERENCE if name in _modules)


def backend_status() -> dict[str, str | None]:
    """Map every known backend to ``None`` (available) or its failure."""
    _probe()
    return {name: _failures.get(name) for name in _PREFERENCE}


def compiled_backend() -> str | None:
    """Best available *compiled* backend name, or ``None``."""
    _probe()
    for name in _PREFERENCE[:-1]:
        if name in _modules:
            return name
    return None


def _default_backend() -> str:
    requested = os.environ.get("REPRO_KERNELS")
    if requested:
        return requested
    return available_backends()[0]


def active_backend() -> str:
    """The backend used when a kernel call does not name one."""
    global _active
    if _active is None:
        _active = _default_backend()
        _resolve(_active)  # fail fast on a bogus REPRO_KERNELS value
    return _active


def set_backend(name: str | None) -> None:
    """Pin the process-wide backend; ``None`` re-derives the default."""
    global _active
    if name is not None:
        _resolve(name)
    _active = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily pin the process-wide backend."""
    previous = _active
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _resolve(name: str | None) -> ModuleType:
    _probe()
    chosen = name if name is not None else active_backend()
    try:
        return _modules[chosen]
    except KeyError:
        reason = _failures.get(chosen)
        detail = f" ({reason})" if reason else ""
        known = ", ".join(_PREFERENCE)
        raise SimulationError(
            f"unknown or unavailable kernel backend {chosen!r}{detail}; "
            f"known backends: {known}"
        ) from None


# ----------------------------------------------------------------------
# Kernels. Callers pre-validate structure (splits partition cycles,
# window is positive); backends validate per-element invariants
# (monotonicity, window membership) identically.
# ----------------------------------------------------------------------
def gap_extract(
    cycles: np.ndarray,
    splits: np.ndarray,
    start_cycle: int,
    end_cycle: int,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extract every bank's positive idle gaps from the sorted stream.

    Bank ``b`` owns ``cycles[splits[b]:splits[b + 1]]`` (strictly
    increasing, inside ``[start_cycle, end_cycle)``). Returns
    ``(gap_values, gap_banks, accesses, idle_intervals, idle_cycles)``:
    the positive-gap multiset — leading, interior, trailing, and the
    whole-window gap of a never-accessed bank — plus per-bank int64
    counters. Gap ordering is backend-defined; consumers reduce over
    the multiset only.
    """
    impl = _resolve(backend)
    result: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    result = impl.gap_extract(cycles, splits, int(start_cycle), int(end_cycle))
    return result


def gap_threshold_batch(
    gap_values: np.ndarray,
    gap_banks: np.ndarray,
    num_banks: int,
    breakevens: np.ndarray,
    useful: np.ndarray,
    sleep: np.ndarray,
    backend: str | None = None,
) -> None:
    """Threshold a gap multiset at each breakeven row.

    For every row ``r``: a gap converts when ``gap > breakevens[r]``,
    adding 1 to ``useful[r, bank]`` and ``gap - breakeven`` to
    ``sleep[r, bank]``. ``breakevens[r] < 0`` means infinite (no gap
    ever converts). Accumulates into the caller-zeroed ``(n_be,
    num_banks)`` int64 buffers in place.
    """
    _resolve(backend).gap_threshold_batch(
        gap_values, gap_banks, int(num_banks), breakevens, useful, sleep
    )


def stream_gap_update(
    cycles: np.ndarray,
    splits: np.ndarray,
    last_event: np.ndarray,
    accesses: np.ndarray,
    idle_intervals: np.ndarray,
    idle_cycles: np.ndarray,
    breakevens: np.ndarray,
    useful: np.ndarray,
    sleep: np.ndarray,
    backend: str | None = None,
) -> None:
    """Fold one bank-sorted chunk into streaming carry-state counters.

    The fused core of ``StreamingGapAccumulator.update``: per-bank gaps
    close against ``last_event`` (leading) and within the chunk
    (interior), every breakeven row is thresholded in the same pass,
    and ``last_event``/``accesses`` advance. Trailing gaps stay open
    for ``finalize``. All arrays are mutated in place.
    """
    _resolve(backend).stream_gap_update(
        cycles,
        splits,
        last_event,
        accesses,
        idle_intervals,
        idle_cycles,
        breakevens,
        useful,
        sleep,
    )


def lru_walk(
    tags: np.ndarray,
    starts: np.ndarray,
    ways: int,
    backend: str | None = None,
) -> tuple[int, np.ndarray]:
    """Cold-started LRU over contiguous tag groups.

    ``tags`` is sorted by (group, arrival); group ``g`` owns
    ``tags[starts[g]:starts[g + 1]]``. Returns ``(hits,
    lines_per_group)`` where ``lines_per_group[g]`` is the lines the
    set retains: ``min(distinct tags, ways)``.
    """
    hits, lines = _resolve(backend).lru_walk(tags, starts, int(ways))
    return int(hits), np.asarray(lines, dtype=np.int64)


def lru_segment(
    idx: np.ndarray,
    tags: np.ndarray,
    stacks: np.ndarray,
    backend: str | None = None,
) -> int:
    """Advance carried LRU stacks through one set-sorted segment.

    ``idx``/``tags`` are sorted by (set, arrival); ``stacks`` is the
    carried ``(num_sets, ways)`` int64 recency matrix (``-1`` invalid),
    mutated in place. Returns the segment's hits.
    """
    return int(_resolve(backend).lru_segment(idx, tags, stacks))
