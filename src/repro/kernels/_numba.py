"""Numba kernel backend — JIT mirrors of the C loops.

Importing this module requires numba (install the ``repro[compiled]``
extra); :mod:`repro.kernels.dispatch` probes it lazily and falls back
to the cext/numpy backends when the import fails, so numba stays an
optional accelerator. The jitted loops are line-for-line the same
int64 walks as ``_ckernels.c`` — the differential fuzz suite pins all
backends bit-identical to the numpy anchor.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # gated import: dispatch probes availability

from repro.errors import SimulationError

NAME = "numba"

_ERR_NONMONOTONIC = -1
_ERR_WINDOW = -2
_ERR_NOT_LATER = -3

_ERRORS = {
    _ERR_NONMONOTONIC: "access cycles must be strictly increasing",
    _ERR_WINDOW: "access cycles outside the observation window",
    _ERR_NOT_LATER: "chunk accesses must be later than every prior access",
}


def _raise_code(code: int) -> None:
    raise SimulationError(_ERRORS.get(code, f"kernel error {code}"))


@njit(cache=True)
def _gap_extract(cycles, splits, start_cycle, end_cycle,
                 gap_values, gap_banks, accesses, idle_intervals, idle_cycles):
    num_banks = splits.size - 1
    window = end_cycle - start_cycle
    out = 0
    for b in range(num_banks):
        lo = splits[b]
        hi = splits[b + 1]
        count = hi - lo
        accesses[b] = count
        idle_intervals[b] = 0
        idle_cycles[b] = 0
        if count == 0:
            if window > 0:
                gap_values[out] = window
                gap_banks[out] = b
                out += 1
                idle_intervals[b] = 1
                idle_cycles[b] = window
            continue
        prev = start_cycle - 1
        for i in range(lo, hi):
            c = cycles[i]
            if c < start_cycle or c >= end_cycle:
                return _ERR_WINDOW
            if c <= prev and i > lo:
                return _ERR_NONMONOTONIC
            gap = c - prev - 1
            if gap > 0:
                gap_values[out] = gap
                gap_banks[out] = b
                out += 1
                idle_intervals[b] += 1
                idle_cycles[b] += gap
            prev = c
        trailing = end_cycle - prev - 1
        if trailing > 0:
            gap_values[out] = trailing
            gap_banks[out] = b
            out += 1
            idle_intervals[b] += 1
            idle_cycles[b] += trailing
    return out


@njit(cache=True)
def _gap_threshold_batch(gap_values, gap_banks, num_banks, breakevens, useful, sleep):
    for r in range(breakevens.size):
        be = breakevens[r]
        if be < 0:
            continue
        for i in range(gap_values.size):
            gap = gap_values[i]
            if gap > be:
                b = gap_banks[i]
                useful[r, b] += 1
                sleep[r, b] += gap - be


@njit(cache=True)
def _stream_gap_update(cycles, splits, last_event, accesses,
                       idle_intervals, idle_cycles, breakevens, useful, sleep):
    num_banks = last_event.size
    for b in range(num_banks):
        lo = splits[b]
        hi = splits[b + 1]
        if lo == hi:
            continue
        prev = last_event[b]
        for i in range(lo, hi):
            c = cycles[i]
            if c <= prev:
                return _ERR_NOT_LATER if i == lo else _ERR_NONMONOTONIC
            gap = c - prev - 1
            if gap > 0:
                idle_intervals[b] += 1
                idle_cycles[b] += gap
                for r in range(breakevens.size):
                    be = breakevens[r]
                    if be >= 0 and gap > be:
                        useful[r, b] += 1
                        sleep[r, b] += gap - be
            prev = c
        accesses[b] += hi - lo
        last_event[b] = prev
    return 0


@njit(cache=True)
def _lru_walk(tags, starts, ways, scratch, lines_per_group):
    hits = 0
    for g in range(starts.size - 1):
        valid = 0
        for i in range(starts[g], starts[g + 1]):
            t = tags[i]
            d = -1
            for w in range(valid):
                if scratch[w] == t:
                    d = w
                    break
            if d >= 0:
                hits += 1
                for w in range(d, 0, -1):
                    scratch[w] = scratch[w - 1]
                scratch[0] = t
            else:
                limit = valid if valid < ways else ways - 1
                for w in range(limit, 0, -1):
                    scratch[w] = scratch[w - 1]
                scratch[0] = t
                if valid < ways:
                    valid += 1
        lines_per_group[g] = valid
    return hits


@njit(cache=True)
def _lru_segment(idx, tags, stacks):
    ways = stacks.shape[1]
    hits = 0
    for i in range(idx.size):
        row = idx[i]
        t = tags[i]
        d = -1
        for w in range(ways):
            if stacks[row, w] == t:
                d = w
                break
        if d >= 0:
            hits += 1
            limit = d
        else:
            limit = ways - 1
        for w in range(limit, 0, -1):
            stacks[row, w] = stacks[row, w - 1]
        stacks[row, 0] = t
    return hits


# ----------------------------------------------------------------------
# Backend contract (see repro.kernels.dispatch for semantics)
# ----------------------------------------------------------------------
def gap_extract(cycles, splits, start_cycle, end_cycle):
    cycles = np.ascontiguousarray(cycles, dtype=np.int64)
    splits = np.ascontiguousarray(splits, dtype=np.int64)
    num_banks = splits.size - 1
    capacity = cycles.size + 3 * num_banks
    gap_values = np.empty(capacity, dtype=np.int64)
    gap_banks = np.empty(capacity, dtype=np.int64)
    accesses = np.empty(num_banks, dtype=np.int64)
    idle_intervals = np.empty(num_banks, dtype=np.int64)
    idle_cycles = np.empty(num_banks, dtype=np.int64)
    count = _gap_extract(
        cycles, splits, start_cycle, end_cycle,
        gap_values, gap_banks, accesses, idle_intervals, idle_cycles,
    )
    if count < 0:
        _raise_code(count)
    return (
        gap_values[:count].copy(),
        gap_banks[:count].copy(),
        accesses,
        idle_intervals,
        idle_cycles,
    )


def gap_threshold_batch(gap_values, gap_banks, num_banks, breakevens, useful, sleep):
    _gap_threshold_batch(
        np.ascontiguousarray(gap_values, dtype=np.int64),
        np.ascontiguousarray(gap_banks, dtype=np.int64),
        int(num_banks),
        np.ascontiguousarray(breakevens, dtype=np.int64),
        useful,
        sleep,
    )


def stream_gap_update(cycles, splits, last_event, accesses,
                      idle_intervals, idle_cycles, breakevens, useful, sleep):
    code = _stream_gap_update(
        np.ascontiguousarray(cycles, dtype=np.int64),
        np.ascontiguousarray(splits, dtype=np.int64),
        last_event,
        accesses,
        idle_intervals,
        idle_cycles,
        np.ascontiguousarray(breakevens, dtype=np.int64),
        useful,
        sleep,
    )
    if code < 0:
        _raise_code(code)


def lru_walk(tags, starts, ways):
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    num_groups = starts.size - 1
    scratch = np.empty(int(ways), dtype=np.int64)
    lines_per_group = np.zeros(num_groups, dtype=np.int64)
    hits = _lru_walk(
        np.ascontiguousarray(tags, dtype=np.int64),
        starts, int(ways), scratch, lines_per_group,
    )
    return int(hits), lines_per_group


def lru_segment(idx, tags, stacks):
    return int(
        _lru_segment(
            np.ascontiguousarray(idx, dtype=np.int64),
            np.ascontiguousarray(tags, dtype=np.int64),
            stacks,
        )
    )
