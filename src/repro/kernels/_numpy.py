"""Pure-numpy kernel backend — the always-available fallback.

These are the vectorized implementations the library shipped before the
compiled backends existed, extracted behind the
:mod:`repro.kernels.dispatch` contract so every caller reaches them
through the same shim as the numba/C variants. They are the *semantic
anchor*: the differential fuzz suite pins every other backend
bit-identical to this one, and this one is pinned (transitively,
through :mod:`repro.power.idleness` and the engine tests) to the
reference simulator.

All functions operate on int64 arrays and produce int64 counters —
REPRO001 (integer-counter purity) applies here exactly as it does in
``power/idleness.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

#: Dispatch-level backend identity (``repro engines`` and the bench
#: report read it off the module).
NAME = "numpy"


def gap_extract(
    cycles: np.ndarray,
    splits: np.ndarray,
    start_cycle: int,
    end_cycle: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extract every bank's positive idle gaps from the sorted stream.

    Returns ``(gap_values, gap_banks, accesses, idle_intervals,
    idle_cycles)``; see :func:`repro.kernels.dispatch.gap_extract` for
    the contract (the caller has already validated the splits
    partition and the window sign).
    """
    num_banks = splits.size - 1
    window = int(end_cycle - start_cycle)
    accesses = np.diff(splits)
    occupied_ids = np.flatnonzero(accesses > 0)
    empty_ids = np.flatnonzero(accesses == 0)
    if cycles.size:
        if cycles.min() < start_cycle or cycles.max() >= end_cycle:
            raise SimulationError("access cycles outside the observation window")
        bank_of = np.repeat(np.arange(num_banks), accesses)
        same_bank = bank_of[1:] == bank_of[:-1]
        deltas = np.diff(cycles)
        if np.any(deltas[same_bank] <= 0):
            raise SimulationError("access cycles must be strictly increasing")
        interior = deltas[same_bank] - 1
        interior_banks = bank_of[1:][same_bank]
        leading = cycles[splits[occupied_ids]] - start_cycle
        trailing = end_cycle - cycles[splits[occupied_ids + 1] - 1] - 1
    else:
        interior = np.empty(0, dtype=np.int64)
        interior_banks = np.empty(0, dtype=np.int64)
        leading = trailing = np.empty(0, dtype=np.int64)

    # A never-accessed bank idles the whole window in one gap.
    gap_values = np.concatenate(
        [interior, leading, trailing, np.full(empty_ids.size, window, dtype=np.int64)]
    )
    gap_banks = np.concatenate([interior_banks, occupied_ids, occupied_ids, empty_ids])
    positive = gap_values > 0
    gap_values = gap_values[positive]
    gap_banks = gap_banks[positive]

    idle_intervals = np.bincount(gap_banks, minlength=num_banks)
    idle_cycles = np.zeros(num_banks, dtype=np.int64)
    np.add.at(idle_cycles, gap_banks, gap_values)
    return gap_values, gap_banks, accesses, idle_intervals, idle_cycles


def gap_threshold_batch(
    gap_values: np.ndarray,
    gap_banks: np.ndarray,
    num_banks: int,
    breakevens: np.ndarray,
    useful: np.ndarray,
    sleep: np.ndarray,
) -> None:
    """Threshold the gap multiset at each breakeven row (``-1`` = infinite).

    Accumulates into the caller-zeroed ``(n_be, num_banks)`` int64
    buffers ``useful``/``sleep``.
    """
    for row in range(breakevens.size):
        breakeven = int(breakevens[row])
        if breakeven < 0:
            continue
        mask = gap_values > breakeven
        banks = gap_banks[mask]
        useful[row] += np.bincount(banks, minlength=num_banks)
        np.add.at(sleep[row], banks, gap_values[mask] - breakeven)


def stream_gap_update(
    cycles: np.ndarray,
    splits: np.ndarray,
    last_event: np.ndarray,
    accesses: np.ndarray,
    idle_intervals: np.ndarray,
    idle_cycles: np.ndarray,
    breakevens: np.ndarray,
    useful: np.ndarray,
    sleep: np.ndarray,
) -> None:
    """Fold one bank-sorted chunk into streaming carry-state counters.

    Mutates every counter array in place; ``last_event`` advances to
    each occupied bank's final cycle. Trailing gaps stay open.
    """
    num_banks = last_event.size
    counts = np.diff(splits)
    occupied = np.flatnonzero(counts > 0)
    firsts = cycles[splits[occupied]]
    lasts = cycles[splits[occupied + 1] - 1]
    if np.any(firsts <= last_event[occupied]):
        raise SimulationError("chunk accesses must be later than every prior access")
    bank_of = np.repeat(np.arange(num_banks), counts)
    same_bank = bank_of[1:] == bank_of[:-1]
    deltas = np.diff(cycles)
    if np.any(deltas[same_bank] <= 0):
        raise SimulationError("access cycles must be strictly increasing")
    interior = deltas[same_bank] - 1
    interior_banks = bank_of[1:][same_bank]
    leading = firsts - last_event[occupied] - 1
    gap_values = np.concatenate([interior, leading])
    gap_banks = np.concatenate([interior_banks, occupied])
    positive = gap_values > 0
    gap_values = gap_values[positive]
    gap_banks = gap_banks[positive]
    if gap_values.size:
        idle_intervals += np.bincount(gap_banks, minlength=num_banks)
        np.add.at(idle_cycles, gap_banks, gap_values)
        gap_threshold_batch(
            gap_values, gap_banks, num_banks, breakevens, useful, sleep
        )
    accesses[occupied] += counts[occupied]
    last_event[occupied] = lasts


def lru_walk(
    tags: np.ndarray, starts: np.ndarray, ways: int
) -> tuple[int, np.ndarray]:
    """Cold-started lockstep LRU over contiguous tag groups.

    ``tags`` is sorted by (group, arrival); group ``g`` owns
    ``tags[starts[g]:starts[g + 1]]``. The LRU stacks of all groups
    advance in lockstep, one within-group access *rank* per Python
    iteration, with the compare/shift work vectorized across every
    group still active at that rank. Exact because an LRU set's
    contents are history-independent: after any prefix the set holds
    precisely its ``ways`` most recently accessed distinct tags.

    Returns ``(hits, lines_per_group)`` with
    ``lines_per_group[g] = min(distinct tags, ways)`` — each miss
    allocates one line and evicts only when the set is already full.
    """
    num_groups = starts.size - 1
    if num_groups == 0 or starts[-1] == 0:
        return 0, np.zeros(num_groups, dtype=np.int64)
    lengths = np.diff(starts)

    # Surviving lines: distinct tags per group, capped at the ways.
    group_of = np.repeat(np.arange(num_groups), lengths)
    pair_order = np.lexsort((tags, group_of))
    pair_group = group_of[pair_order]
    pair_tag = tags[pair_order]
    n = tags.size
    first_pair = np.empty(n, dtype=bool)
    first_pair[0] = True
    first_pair[1:] = (pair_group[1:] != pair_group[:-1]) | (pair_tag[1:] != pair_tag[:-1])
    distinct_tags = np.bincount(pair_group[first_pair], minlength=num_groups)
    lines_per_group = np.minimum(distinct_tags, ways).astype(np.int64)

    # Longest groups first, so the groups active at rank r are always a
    # leading slice of the stack matrix.
    by_length = np.argsort(-lengths, kind="stable")
    starts_by_length = starts[by_length]
    lengths_by_length = lengths[by_length]
    stacks = np.full((num_groups, ways), -1, dtype=np.int64)  # -1 = invalid
    hits = 0
    for rank in range(int(lengths_by_length[0])):
        active = int(np.searchsorted(-lengths_by_length, -rank, side="left"))
        current = tags[starts_by_length[:active] + rank]
        live = stacks[:active]
        matches = live == current[:, None]
        hit_mask = matches.any(axis=1)
        hits += int(np.count_nonzero(hit_mask))
        # A hit rotates the stack above the matched way; a miss rotates
        # the whole stack, evicting the LRU way.
        depth = np.where(hit_mask, matches.argmax(axis=1), ways - 1)
        for way in range(ways - 1, 0, -1):
            rotate = depth >= way
            live[rotate, way] = live[rotate, way - 1]
        live[:, 0] = current
    return hits, lines_per_group


def lru_segment(
    idx: np.ndarray, tags: np.ndarray, stacks: np.ndarray
) -> int:
    """Advance carried LRU stacks through one set-sorted segment.

    ``idx``/``tags`` are sorted by (set, arrival); ``stacks`` is the
    carried ``(num_sets, ways)`` recency matrix (``-1`` invalid),
    mutated in place. Returns the segment's hits.
    """
    n = idx.size
    if n == 0:
        return 0
    ways = stacks.shape[1]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = idx[1:] != idx[:-1]
    starts = np.flatnonzero(new_group)
    group_sets = idx[starts]
    lengths = np.diff(np.append(starts, n))
    by_length = np.argsort(-lengths, kind="stable")
    sets_bl = group_sets[by_length]
    starts_bl = starts[by_length]
    lengths_bl = lengths[by_length]
    hits = 0
    for rank in range(int(lengths_bl[0])):
        active = int(np.searchsorted(-lengths_bl, -rank, side="left"))
        current = tags[starts_bl[:active] + rank]
        rows = sets_bl[:active]
        live = stacks[rows]
        matches = live == current[:, None]
        hit_mask = matches.any(axis=1)
        hits += int(np.count_nonzero(hit_mask))
        depth = np.where(hit_mask, matches.argmax(axis=1), ways - 1)
        for way in range(ways - 1, 0, -1):
            rotate = depth >= way
            live[rotate, way] = live[rotate, way - 1]
        live[:, 0] = current
        stacks[rows] = live
    return hits
