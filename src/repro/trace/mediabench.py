"""Calibrated profiles for the paper's 18 MediaBench/MiBench benchmarks.

Real MediaBench address traces are not redistributable; each profile
below parameterizes the synthetic workload model so the generated trace
reproduces the benchmark's published idleness signature: the per-bank
useful idleness of a 4-bank cache (the paper's Table I), which is the
workload property every result in the paper derives from.

The ``bank_idleness`` tuples are exactly the Table I rows (as fractions).
``half_activity`` / ``quarter_activity`` control how concentrated the
activity is *within* a group, which governs the extra idleness finer
partitions discover (Table IV); benchmarks whose Table I rows are very
unbalanced get slightly more concentrated defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.trace.schedule import NUM_GROUPS, ScheduleParams


@dataclass(frozen=True)
class BenchmarkProfile:
    """Workload-model parameters for one benchmark.

    Attributes
    ----------
    name:
        Benchmark name as printed in the paper's tables.
    bank_idleness:
        Target useful idleness of banks 0..3 of a 4-bank cache
        (fractions; Table I of the paper).
    half_activity, quarter_activity:
        Concentration of activity inside an active group (see
        :class:`repro.trace.schedule.ScheduleParams`).
    working_fraction:
        Loop footprint as a fraction of each region.
    tag_turnover:
        Probability per busy window that a region moves to a fresh
        buffer (drives the compulsory-miss rate).
    access_stride_cycles:
        Cycles between consecutive accesses of one busy region within a
        window (must stay below the breakeven time).
    """

    name: str
    bank_idleness: tuple[float, float, float, float]
    half_activity: float = 0.55
    quarter_activity: float = 0.60
    working_fraction: float = 0.75
    tag_turnover: float = 0.04
    access_stride_cycles: int = 8

    def __post_init__(self) -> None:
        if len(self.bank_idleness) != NUM_GROUPS:
            raise ConfigurationError("bank_idleness needs 4 entries")
        for value in self.bank_idleness:
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError("bank_idleness entries must be in [0,1]")
        if not 0.0 <= self.tag_turnover <= 1.0:
            raise ConfigurationError("tag_turnover must be in [0,1]")
        if self.access_stride_cycles < 1:
            raise ConfigurationError("access stride must be >= 1 cycle")

    @property
    def average_idleness(self) -> float:
        """Mean of the four bank targets (Table I's Average column)."""
        return sum(self.bank_idleness) / len(self.bank_idleness)

    def schedule_params(self) -> ScheduleParams:
        """Build the stochastic schedule parameters for this benchmark."""
        return ScheduleParams(
            group_idleness=self.bank_idleness,
            half_activity=self.half_activity,
            quarter_activity=self.quarter_activity,
        )


def _profile(
    name: str,
    i0: float,
    i1: float,
    i2: float,
    i3: float,
    **overrides,
) -> BenchmarkProfile:
    """Helper: build a profile from Table I percentages."""
    return BenchmarkProfile(
        name=name,
        bank_idleness=(i0 / 100.0, i1 / 100.0, i2 / 100.0, i3 / 100.0),
        **overrides,
    )


#: Per-benchmark profiles; idleness columns are Table I of the paper.
PROFILES: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        _profile("adpcm.dec", 2.46, 99.98, 99.98, 3.75, half_activity=0.50),
        _profile("cjpeg", 22.64, 53.24, 59.37, 9.51),
        _profile("CRC32", 18.54, 2.19, 44.38, 2.88, half_activity=0.60),
        _profile("dijkstra", 12.06, 18.55, 50.65, 56.28),
        _profile("djpeg", 67.66, 29.23, 27.89, 24.97),
        _profile("fft_1", 49.35, 48.34, 61.32, 9.12),
        _profile("fft_2", 54.78, 51.82, 58.03, 6.96),
        _profile("gsmd", 6.92, 90.81, 92.82, 0.40, half_activity=0.50),
        _profile("gsme", 49.17, 72.88, 89.34, 0.37, half_activity=0.50),
        _profile("ispell", 66.36, 55.63, 44.82, 21.04),
        _profile("lame", 58.78, 32.94, 38.62, 13.74),
        _profile("mad", 37.25, 48.74, 34.00, 28.10),
        _profile("rijndael_i", 82.35, 31.72, 22.61, 3.71, half_activity=0.60),
        _profile("rijndael_o", 20.59, 19.45, 91.78, 3.63, half_activity=0.60),
        _profile("say", 88.53, 85.51, 26.59, 12.42),
        _profile("search", 66.57, 23.43, 48.00, 57.78),
        _profile("sha", 4.91, 98.62, 94.09, 3.13, half_activity=0.50),
        _profile("tiff2bw", 33.88, 17.43, 67.38, 70.49),
    ]
}

#: Benchmark names in the paper's table order.
BENCHMARK_NAMES: tuple[str, ...] = tuple(PROFILES)


def profile_for(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name.

    Raises
    ------
    ConfigurationError
        For unknown names, listing the valid ones.
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES)
        raise ConfigurationError(f"unknown benchmark {name!r}; known: {known}") from None
