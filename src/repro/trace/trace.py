"""The :class:`Trace` container: a timed stream of memory accesses.

A trace is two parallel numpy arrays — strictly increasing cycle stamps
and byte addresses — plus an explicit ``horizon`` (the total number of
simulated cycles, which may extend past the last access: trailing
idleness is real idleness and must be accounted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class Trace:
    """An immutable, validated memory-access trace.

    Attributes
    ----------
    cycles:
        int64 array of access times, strictly increasing (the modelled
        cache is single-ported).
    addresses:
        int64 array of byte addresses, same length.
    horizon:
        Total simulated cycles; ``None`` (the default) derives it as
        ``cycles[-1] + 1`` (``0`` for an empty trace). An explicit
        ``horizon=0`` is accepted for an empty trace and means a
        genuine zero-cycle observation window, not "derive it".
    name:
        Optional label (benchmark name) carried into reports.
    """

    cycles: np.ndarray
    addresses: np.ndarray
    horizon: int | None = None
    name: str = ""
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        cycles = np.ascontiguousarray(self.cycles, dtype=np.int64)
        addresses = np.ascontiguousarray(self.addresses, dtype=np.int64)
        object.__setattr__(self, "cycles", cycles)
        object.__setattr__(self, "addresses", addresses)
        if cycles.shape != addresses.shape or cycles.ndim != 1:
            raise TraceError("cycles and addresses must be equal-length 1-D arrays")
        if cycles.size:
            if cycles[0] < 0:
                raise TraceError("cycle stamps must be non-negative")
            if np.any(np.diff(cycles) <= 0):
                raise TraceError("cycle stamps must be strictly increasing")
            if np.any(addresses < 0):
                raise TraceError("addresses must be non-negative")
        default_horizon = int(cycles[-1]) + 1 if cycles.size else 0
        horizon = default_horizon if self.horizon is None else int(self.horizon)
        if horizon < 0:
            raise TraceError("horizon must be non-negative")
        if horizon < default_horizon:
            raise TraceError(
                f"horizon {horizon} shorter than the last access "
                f"({default_horizon - 1})"
            )
        object.__setattr__(self, "horizon", horizon)
        object.__setattr__(self, "_validated", True)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.cycles.size)

    def __iter__(self):
        """Iterate ``(cycle, address)`` pairs as Python ints."""
        for c, a in zip(self.cycles.tolist(), self.addresses.tolist()):
            yield c, a

    @property
    def duration(self) -> int:
        """Simulated cycles (alias of :attr:`horizon`)."""
        return self.horizon

    @property
    def access_density(self) -> float:
        """Accesses per cycle over the horizon."""
        if self.horizon == 0:
            return 0.0
        return len(self) / self.horizon

    def slice(self, start_cycle: int, end_cycle: int) -> "Trace":
        """Return the sub-trace with cycles in ``[start_cycle, end_cycle)``.

        Cycle stamps are kept absolute; the horizon becomes
        ``end_cycle``. Bounds must satisfy
        ``0 <= start_cycle <= end_cycle <= horizon`` — a child trace may
        not claim more simulated cycles than its parent had.
        """
        if start_cycle < 0 or end_cycle < start_cycle:
            raise TraceError("invalid slice bounds")
        if end_cycle > self.horizon:
            raise TraceError(
                f"slice end {end_cycle} exceeds the trace horizon {self.horizon}"
            )
        lo = int(np.searchsorted(self.cycles, start_cycle, side="left"))
        hi = int(np.searchsorted(self.cycles, end_cycle, side="left"))
        return Trace(
            cycles=self.cycles[lo:hi],
            addresses=self.addresses[lo:hi],
            horizon=end_cycle,
            name=self.name,
        )

    def with_name(self, name: str) -> "Trace":
        """Return a renamed copy (arrays shared)."""
        return Trace(self.cycles, self.addresses, self.horizon, name)

    @classmethod
    def from_pairs(cls, pairs, horizon: int | None = None, name: str = "") -> "Trace":
        """Build a trace from an iterable of ``(cycle, address)`` pairs."""
        pairs = list(pairs)
        if pairs:
            cycles, addresses = zip(*pairs)
        else:
            cycles, addresses = (), ()
        return cls(
            cycles=np.asarray(cycles, dtype=np.int64),
            addresses=np.asarray(addresses, dtype=np.int64),
            horizon=horizon,
            name=name,
        )
