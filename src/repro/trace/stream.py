"""Streaming, out-of-core trace access: the :class:`TraceChunk` pipeline.

Everything above this module historically assumed a whole
:class:`~repro.trace.trace.Trace` resident in RAM, which caps the
reproduction at traces that fit in memory. This module defines the
chunked alternative: a *trace stream* is any object that yields
:class:`TraceChunk`\\ s — consecutive, cycle-aligned windows of the
access stream — so a consumer that carries its state across chunk
boundaries (see :class:`repro.power.idleness.StreamingGapAccumulator`
and :mod:`repro.core.streamsim`) can simulate a trace of any length in
``O(chunk)`` memory.

Stream contract
---------------
* ``chunks()`` yields :class:`TraceChunk`\\ s in cycle order; each chunk
  covers a half-open window ``[start_cycle, end_cycle)`` aligned to
  multiples of ``chunk_cycles``, holds every access of that window, and
  windows with no accesses are skipped (they carry no information —
  idle time is implicit in the cycle gaps).
* cycle stamps are strictly increasing across the whole stream (each
  chunk is validated locally; consumers validate across boundaries).
* ``horizon`` is the total simulated cycle count. It may be ``None``
  before the stream has been exhausted when the backing format does not
  declare it up front (a ``.trc`` file without a ``# horizon:`` header);
  it is always set once ``chunks()`` has run to completion.
* ``chunks()`` may be called repeatedly; every pass yields the
  identical chunk sequence (readers re-open their file, the synthetic
  stream re-derives its RNG streams).

Sources
-------
* :func:`chunk_trace` / :class:`InMemoryTraceStream` — chunked view of
  an in-memory trace (the equivalence oracle for everything else);
* :class:`TextTraceStream` — line-by-line reader of the ``.trc``
  format; never holds more than one chunk of parsed accesses;
* :class:`NpzTraceStream` — chunked view of an ``.npz`` archive (zip
  members decompress whole, so this bounds *working-set* memory of the
  simulation, not of the load itself);
* :class:`MmapTraceStream` + :func:`save_trace_mmap` — a directory
  format (``cycles.npy`` + ``addresses.npy`` + ``meta.json``) opened
  with ``numpy.load(mmap_mode="r")``: chunk slices touch only their own
  pages, so the load itself is out-of-core;
* :meth:`repro.trace.generator.WorkloadGenerator.stream` — the chunked
  synthetic generator (bit-identical to ``generate()``).

:func:`open_trace_stream` dispatches on path shape, mirroring
:func:`repro.trace.io.load_trace`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import TraceError
from repro.trace.io import _escape_name, _unescape_name
from repro.trace.trace import Trace

#: File names of the memory-mapped directory format.
MMAP_META = "meta.json"
MMAP_CYCLES = "cycles.npy"
MMAP_ADDRESSES = "addresses.npy"
MMAP_FORMAT = "repro-trace-mmap-v1"


@dataclass(frozen=True)
class TraceChunk:
    """One cycle-window of a streamed trace.

    Attributes
    ----------
    cycles, addresses:
        The accesses whose stamps fall in ``[start_cycle, end_cycle)``,
        in cycle order (same layout as :class:`~repro.trace.trace.Trace`
        arrays, but only this window's slice).
    start_cycle, end_cycle:
        The half-open window the chunk covers. Windows are aligned to
        multiples of the stream's ``chunk_cycles``; consecutive chunks
        of a stream never overlap.
    """

    cycles: np.ndarray
    addresses: np.ndarray
    start_cycle: int
    end_cycle: int

    def __len__(self) -> int:
        return int(self.cycles.size)


def _validated_chunk(
    cycles: np.ndarray, addresses: np.ndarray, start_cycle: int, end_cycle: int
) -> TraceChunk:
    """Build a chunk, enforcing the local half of the stream contract."""
    cycles = np.ascontiguousarray(cycles, dtype=np.int64)
    addresses = np.ascontiguousarray(addresses, dtype=np.int64)
    if cycles.shape != addresses.shape or cycles.ndim != 1:
        raise TraceError("chunk cycles and addresses must be equal-length 1-D arrays")
    if cycles.size:
        if int(cycles[0]) < start_cycle or int(cycles[-1]) >= end_cycle:
            raise TraceError("chunk accesses outside the chunk window")
        if np.any(np.diff(cycles) <= 0):
            raise TraceError("chunk cycle stamps must be strictly increasing")
        if np.any(addresses < 0):
            raise TraceError("chunk addresses must be non-negative")
    return TraceChunk(cycles, addresses, int(start_cycle), int(end_cycle))


class TraceStream:
    """Base class carrying the stream contract (see module docstring)."""

    name: str = ""
    chunk_cycles: int = 0
    #: Total simulated cycles; may be ``None`` until ``chunks()`` has
    #: been exhausted once (formats that do not declare it up front).
    horizon: int | None = None

    def chunks(self) -> Iterator[TraceChunk]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[TraceChunk]:
        return self.chunks()


def _check_chunk_cycles(chunk_cycles: int) -> int:
    if chunk_cycles < 1:
        raise TraceError("chunk_cycles must be >= 1")
    return int(chunk_cycles)


def _window_pieces(
    pieces: Iterable[tuple[np.ndarray, np.ndarray]], chunk_cycles: int
) -> Iterator[TraceChunk]:
    """Re-chunk a piecewise access stream into aligned cycle windows.

    ``pieces`` yields ``(cycles, addresses)`` array pairs in cycle order
    with arbitrary piece boundaries (per generator window, per file read
    buffer, ...); the output is the canonical chunk sequence: one chunk
    per ``chunk_cycles``-aligned window that contains at least one
    access. Only the current window's accesses are buffered.
    """
    buf_cycles: list[np.ndarray] = []
    buf_addresses: list[np.ndarray] = []
    window = -1

    def flush() -> TraceChunk:
        cycles = np.concatenate(buf_cycles)
        addresses = np.concatenate(buf_addresses)
        buf_cycles.clear()
        buf_addresses.clear()
        return _validated_chunk(
            cycles, addresses, window * chunk_cycles, (window + 1) * chunk_cycles
        )

    for cycles, addresses in pieces:
        cycles = np.ascontiguousarray(cycles, dtype=np.int64)
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        pos = 0
        n = cycles.size
        while pos < n:
            w = int(cycles[pos]) // chunk_cycles
            if w != window and buf_cycles:
                yield flush()
            window = w
            hi = pos + int(
                np.searchsorted(cycles[pos:], (w + 1) * chunk_cycles, side="left")
            )
            buf_cycles.append(cycles[pos:hi])
            buf_addresses.append(addresses[pos:hi])
            pos = hi
    if buf_cycles:
        yield flush()


def chunk_trace(trace: Trace, chunk_cycles: int) -> Iterator[TraceChunk]:
    """Iterate an in-memory trace as aligned cycle-window chunks."""
    chunk_cycles = _check_chunk_cycles(chunk_cycles)
    yield from _window_pieces([(trace.cycles, trace.addresses)], chunk_cycles)


class InMemoryTraceStream(TraceStream):
    """Chunked view of a resident trace — the streaming oracle.

    Useful for testing streaming consumers against the one-shot path,
    and as the adapter that lets any in-memory trace flow through the
    chunked machinery.
    """

    def __init__(self, trace: Trace, chunk_cycles: int) -> None:
        self.trace = trace
        self.chunk_cycles = _check_chunk_cycles(chunk_cycles)
        self.horizon = trace.horizon
        self.name = trace.name

    def chunks(self) -> Iterator[TraceChunk]:
        yield from chunk_trace(self.trace, self.chunk_cycles)


class TextTraceStream(TraceStream):
    """Streaming reader of the ``.trc`` text format.

    Lines are parsed one at a time and buffered per read block; peak
    memory is one chunk window plus one parse buffer, independent of
    file length. The header is pre-scanned at construction so ``name``
    (and ``horizon``, when the header declares it) are known up front;
    a headerless file's horizon becomes known once ``chunks()`` is
    exhausted (last access + 1, the :class:`Trace` default), as do
    headers oddly placed after data lines (which ``load_trace``
    honors, so a full pass always agrees with it).
    """

    #: Accesses parsed per numpy conversion batch.
    _BATCH = 8192

    def __init__(self, path: str | os.PathLike, chunk_cycles: int) -> None:
        self.path = os.fspath(path)
        self.chunk_cycles = _check_chunk_cycles(chunk_cycles)
        self.name = ""
        self._header_horizon: int | None = None
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if not line.startswith("#"):
                    break
                body = line[1:].strip()
                if body.startswith("horizon:"):
                    self._header_horizon = int(body.split(":", 1)[1])
                elif body.startswith("name:"):
                    self.name = _unescape_name(body.split(":", 1)[1].strip())
        self.horizon = self._header_horizon

    def _pieces(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        cycles: list[int] = []
        addresses: list[int] = []
        last_cycle = -1
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    # Headers may appear anywhere (load_trace honors
                    # them on any line); re-capture both so streamed
                    # and one-shot loads agree even on odd files. The
                    # constructor pre-scan only covers leading headers.
                    body = line[1:].strip()
                    if body.startswith("horizon:"):
                        self._header_horizon = int(body.split(":", 1)[1])
                    elif body.startswith("name:"):
                        self.name = _unescape_name(body.split(":", 1)[1].strip())
                    continue
                parts = line.split()
                if len(parts) != 2:
                    raise TraceError(
                        f"{self.path}:{lineno}: expected '<cycle> <address>'"
                    )
                try:
                    cycle = int(parts[0])
                    address = int(parts[1], 0)
                except ValueError as exc:
                    raise TraceError(f"{self.path}:{lineno}: {exc}") from exc
                if cycle <= last_cycle:
                    raise TraceError(
                        f"{self.path}:{lineno}: cycle stamps must be "
                        f"strictly increasing ({cycle} after {last_cycle})"
                    )
                last_cycle = cycle
                cycles.append(cycle)
                addresses.append(address)
                if len(cycles) >= self._BATCH:
                    yield (
                        np.asarray(cycles, dtype=np.int64),
                        np.asarray(addresses, dtype=np.int64),
                    )
                    cycles.clear()
                    addresses.clear()
        if cycles:
            yield (
                np.asarray(cycles, dtype=np.int64),
                np.asarray(addresses, dtype=np.int64),
            )
        derived = last_cycle + 1
        header = self._header_horizon
        if header is not None and header < derived:
            raise TraceError(
                f"{self.path}: horizon {header} shorter than the last access "
                f"({last_cycle})"
            )
        self.horizon = derived if header is None else header

    def chunks(self) -> Iterator[TraceChunk]:
        yield from _window_pieces(self._pieces(), self.chunk_cycles)


class NpzTraceStream(TraceStream):
    """Chunked view of an ``.npz`` trace archive.

    Compressed zip members decompress as whole arrays, so the *load* is
    not out-of-core; what this bounds is the simulation working set
    (decode, sort, gap arrays all become per-chunk). For a load that is
    itself memory-mapped, use the directory format
    (:func:`save_trace_mmap` / :class:`MmapTraceStream`).
    """

    def __init__(self, path: str | os.PathLike, chunk_cycles: int) -> None:
        self.path = os.fspath(path)
        self.chunk_cycles = _check_chunk_cycles(chunk_cycles)
        with np.load(self.path, allow_pickle=False) as data:
            self.horizon = int(data["horizon"][0])
            self.name = _unescape_name(str(data["name"][0]))

    def chunks(self) -> Iterator[TraceChunk]:
        from repro.trace.io import load_trace

        yield from chunk_trace(load_trace(self.path), self.chunk_cycles)


def save_trace_mmap(trace: Trace, directory: str | os.PathLike) -> None:
    """Write ``trace`` in the memory-mappable directory format.

    The directory holds raw ``cycles.npy``/``addresses.npy`` arrays
    (loadable with ``numpy.load(mmap_mode="r")``) plus a ``meta.json``
    with the horizon and the (escaped) name — the format of choice for
    traces meant to be streamed, since readers touch only the pages of
    the chunks they visit.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    np.save(os.path.join(directory, MMAP_CYCLES), trace.cycles)
    np.save(os.path.join(directory, MMAP_ADDRESSES), trace.addresses)
    meta = {
        "format": MMAP_FORMAT,
        "horizon": trace.horizon,
        "name": _escape_name(trace.name),
        "accesses": len(trace),
    }
    # Atomic: a crash mid-write must leave either the old meta.json or
    # the complete new one, never a truncated file that poisons every
    # later open of the directory (REPRO003). Imported lazily, as in
    # campaign/spec.py — trace modules stay importable on their own.
    from repro.core.serialize import write_json_atomic

    write_json_atomic(os.path.join(directory, MMAP_META), meta)


def load_trace_mmap(directory: str | os.PathLike) -> Trace:
    """Materialize a :func:`save_trace_mmap` directory as a full trace.

    The in-memory counterpart of :class:`MmapTraceStream` (and what
    :func:`repro.trace.io.load_trace` dispatches to for directories) —
    use the stream when the trace does not fit in RAM.
    """
    directory = os.fspath(directory)
    if not is_mmap_trace_dir(directory):
        raise TraceError(f"{directory}: directory is not a {MMAP_FORMAT} trace")
    stream = MmapTraceStream(directory, chunk_cycles=max(1, int(1e18)))
    return stream_to_trace(stream)


def is_mmap_trace_dir(path: str | os.PathLike) -> bool:
    """Whether ``path`` is a :func:`save_trace_mmap` directory."""
    return os.path.isdir(os.fspath(path)) and os.path.exists(
        os.path.join(os.fspath(path), MMAP_META)
    )


class MmapTraceStream(TraceStream):
    """Memory-mapped reader of the :func:`save_trace_mmap` directory format.

    Arrays are opened with ``numpy.load(mmap_mode="r")``; each chunk
    copies only its own window's slice, so resident memory stays
    ``O(chunk)`` regardless of trace length.
    """

    def __init__(self, directory: str | os.PathLike, chunk_cycles: int) -> None:
        self.directory = os.fspath(directory)
        self.chunk_cycles = _check_chunk_cycles(chunk_cycles)
        meta_path = os.path.join(self.directory, MMAP_META)
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != MMAP_FORMAT:
            raise TraceError(
                f"{meta_path}: not a {MMAP_FORMAT} trace (format="
                f"{meta.get('format')!r})"
            )
        self.horizon = int(meta["horizon"])
        self.name = _unescape_name(str(meta.get("name", "")))
        self.accesses = int(meta.get("accesses", -1))

    def chunks(self) -> Iterator[TraceChunk]:
        cycles = np.load(
            os.path.join(self.directory, MMAP_CYCLES), mmap_mode="r"
        )
        addresses = np.load(
            os.path.join(self.directory, MMAP_ADDRESSES), mmap_mode="r"
        )
        if cycles.shape != addresses.shape or cycles.ndim != 1:
            raise TraceError(f"{self.directory}: malformed trace arrays")
        chunk_cycles = self.chunk_cycles
        pos = 0
        n = int(cycles.size)
        while pos < n:
            window = int(cycles[pos]) // chunk_cycles
            end_cycle = (window + 1) * chunk_cycles
            hi = int(np.searchsorted(cycles, end_cycle, side="left"))
            # np.array copies the slice out of the mmap, so the yielded
            # chunk is independent of the open file.
            yield _validated_chunk(
                np.array(cycles[pos:hi]),
                np.array(addresses[pos:hi]),
                window * chunk_cycles,
                end_cycle,
            )
            pos = hi


class SyntheticTraceStream(TraceStream):
    """Chunked synthetic workload — the generator without the concatenate.

    Built by :meth:`repro.trace.generator.WorkloadGenerator.stream`;
    every pass re-derives the generator's named RNG streams, so repeated
    ``chunks()`` iterations (one per simulated configuration, say) are
    bit-identical to each other and to ``generate(profile)``.
    """

    def __init__(self, generator, profile, chunk_cycles: int) -> None:
        self.generator = generator
        self.profile = profile
        self.chunk_cycles = _check_chunk_cycles(chunk_cycles)
        self.horizon = int(generator.horizon)
        self.name = profile.name

    def chunks(self) -> Iterator[TraceChunk]:
        yield from _window_pieces(
            self.generator._window_arrays(self.profile), self.chunk_cycles
        )


def open_trace_stream(path: str | os.PathLike, chunk_cycles: int) -> TraceStream:
    """Open a trace file or directory as a chunked stream.

    Dispatch mirrors :func:`repro.trace.io.load_trace`, plus the
    memory-mapped directory format: ``.npz`` archives, ``mmap``
    directories (any directory holding a ``meta.json``), and text
    ``.trc`` files (the fallback, like ``load_trace``).
    """
    path = os.fspath(path)
    if is_mmap_trace_dir(path):
        return MmapTraceStream(path, chunk_cycles)
    if os.path.isdir(path):
        raise TraceError(f"{path}: directory is not a {MMAP_FORMAT} trace")
    if path.endswith(".npz"):
        return NpzTraceStream(path, chunk_cycles)
    return TextTraceStream(path, chunk_cycles)


def stream_to_trace(stream: TraceStream) -> Trace:
    """Materialize a stream into an in-memory :class:`Trace`.

    Mostly for tests and small streams — the equivalence bridge between
    the chunked and one-shot worlds.
    """
    cycle_parts: list[np.ndarray] = []
    address_parts: list[np.ndarray] = []
    last_end = None
    for chunk in stream.chunks():
        if last_end is not None and chunk.start_cycle < last_end:
            raise TraceError("stream chunks overlap")
        last_end = chunk.end_cycle
        cycle_parts.append(chunk.cycles)
        address_parts.append(chunk.addresses)
    if stream.horizon is None:
        raise TraceError("stream did not resolve its horizon")
    if cycle_parts:
        cycles = np.concatenate(cycle_parts)
        addresses = np.concatenate(address_parts)
    else:
        cycles = np.empty(0, dtype=np.int64)
        addresses = np.empty(0, dtype=np.int64)
    return Trace(cycles, addresses, horizon=stream.horizon, name=stream.name)
