"""Workload characterization.

Given any trace and a cache geometry, compute the quantities that
determine how the architecture will behave: access density, footprint,
per-bank access shares, inter-access gap statistics, and the scheduled
idleness signature. Used to sanity-check bring-your-own traces before a
simulation campaign (and by the workload tests to validate the
generator's output).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.errors import TraceError
from repro.trace.trace import Trace
from repro.utils.bitops import log2_exact, mask


@dataclass(frozen=True)
class TraceProfile:
    """Characterization summary of one trace on one geometry.

    Attributes
    ----------
    accesses:
        Total accesses.
    horizon:
        Simulated cycles.
    access_density:
        Accesses per cycle.
    distinct_lines:
        Cache lines touched at least once.
    footprint_bytes:
        Distinct line-addresses touched times the line size (the true
        memory footprint, tags included).
    bank_shares:
        Fraction of accesses landing in each bank of an M-way split.
    gap_percentiles:
        {50, 90, 99} percentiles of the global inter-access gap.
    reuse_distance_median:
        Median number of accesses between consecutive touches of the
        same line (a cheap locality proxy).
    bank_gap_histograms:
        Per-bank idle-gap summary: for each bank, a tuple of
        ``(log2_bucket, count, total_cycles)`` triples — ``count`` gaps
        with ``2**log2_bucket <= gap < 2**(log2_bucket + 1)`` summing to
        ``total_cycles``. Gap semantics mirror the idleness accountant
        (leading, inner and trailing gaps; access cycles are busy), so
        thresholding the histogram at a breakeven time closely predicts
        the measured sleepable idleness — the statistic the ``estimate``
        fidelity tier is built on.
    """

    accesses: int
    horizon: int
    access_density: float
    distinct_lines: int
    footprint_bytes: int
    bank_shares: tuple[float, ...]
    gap_percentiles: dict[int, float]
    reuse_distance_median: float
    bank_gap_histograms: tuple[tuple[tuple[int, int, int], ...], ...] = ()


def _gap_histogram(gaps: np.ndarray) -> tuple[tuple[int, int, int], ...]:
    """Bucket positive ``gaps`` by ``floor(log2(gap))``.

    Returns sorted ``(log2_bucket, count, total_cycles)`` triples; the
    count and the exact cycle mass per bucket together let downstream
    models evaluate ``sum(max(0, gap - T))`` for any threshold ``T``
    without keeping the gaps themselves.
    """
    gaps = gaps[gaps > 0]
    if not gaps.size:
        return ()
    buckets = np.floor(np.log2(gaps.astype(np.float64))).astype(np.int64)
    triples = []
    for bucket in np.unique(buckets):
        members = buckets == bucket
        triples.append(
            (int(bucket), int(members.sum()), int(gaps[members].sum()))
        )
    return tuple(triples)


def _bank_gap_histograms(
    cycles: np.ndarray, bank: np.ndarray, horizon: int, num_banks: int
) -> tuple[tuple[tuple[int, int, int], ...], ...]:
    """Per-bank idle-gap histograms, mirroring the accountant's gaps.

    Every bank is busy at cycle -1 (warm start, like the accountant) and
    idle between its own accesses; the window closes at ``horizon``. A
    bank with no accesses therefore contributes one gap of ``horizon``.
    """
    order = np.argsort(bank, kind="stable")
    sorted_cycles = cycles[order]
    counts = np.bincount(bank, minlength=num_banks)
    splits = np.concatenate(([0], np.cumsum(counts)))
    histograms = []
    for b in range(num_banks):
        segment = sorted_cycles[splits[b] : splits[b + 1]]
        if segment.size == 0:
            gaps = np.asarray([horizon], dtype=np.int64)
        else:
            gaps = np.concatenate(
                (
                    np.asarray([int(segment[0])], dtype=np.int64),
                    np.diff(segment) - 1,
                    np.asarray([horizon - int(segment[-1]) - 1], dtype=np.int64),
                )
            )
        histograms.append(_gap_histogram(gaps))
    return tuple(histograms)


def profile_trace(trace: Trace, geometry: CacheGeometry, num_banks: int = 4) -> TraceProfile:
    """Characterize ``trace`` as seen by ``geometry`` split into banks."""
    if num_banks < 1 or geometry.num_sets % num_banks:
        raise TraceError(f"cannot split {geometry.num_sets} sets into {num_banks} banks")
    if len(trace) == 0:
        empty = np.empty(0, dtype=np.int64)
        return TraceProfile(
            accesses=0,
            horizon=trace.horizon,
            access_density=0.0,
            distinct_lines=0,
            footprint_bytes=0,
            bank_shares=tuple(0.0 for _ in range(num_banks)),
            gap_percentiles={50: 0.0, 90: 0.0, 99: 0.0},
            reuse_distance_median=0.0,
            bank_gap_histograms=_bank_gap_histograms(
                empty, empty, trace.horizon, num_banks
            ),
        )

    index = (trace.addresses >> geometry.offset_bits) & mask(geometry.index_bits)
    line_bits = geometry.index_bits - log2_exact(num_banks)
    bank = index >> line_bits
    counts = np.bincount(bank, minlength=num_banks)
    shares = tuple(float(c) / len(trace) for c in counts)

    line_addresses = trace.addresses >> geometry.offset_bits
    distinct_line_addresses = int(np.unique(line_addresses).size)
    distinct_lines = int(np.unique(index).size)

    gaps = np.diff(trace.cycles)
    percentiles = {
        q: float(np.percentile(gaps, q)) if gaps.size else 0.0 for q in (50, 90, 99)
    }

    # Reuse distance (in accesses) per line address: sort by (line, pos).
    order = np.lexsort((np.arange(len(trace)), line_addresses))
    sorted_lines = line_addresses[order]
    positions = np.asarray(order, dtype=np.int64)
    same = sorted_lines[1:] == sorted_lines[:-1]
    reuse = (positions[1:] - positions[:-1])[same]
    reuse_median = float(np.median(reuse)) if reuse.size else float("inf")

    return TraceProfile(
        accesses=len(trace),
        horizon=trace.horizon,
        access_density=trace.access_density,
        distinct_lines=distinct_lines,
        footprint_bytes=distinct_line_addresses * geometry.line_size,
        bank_shares=shares,
        gap_percentiles=percentiles,
        reuse_distance_median=reuse_median,
        bank_gap_histograms=_bank_gap_histograms(
            trace.cycles, bank, trace.horizon, num_banks
        ),
    )


def describe_profile(profile: TraceProfile) -> str:
    """Render a profile as a short human-readable report."""
    shares = ", ".join(f"{s:.1%}" for s in profile.bank_shares)
    return (
        f"accesses={profile.accesses:,} over {profile.horizon:,} cycles "
        f"({profile.access_density:.2f}/cycle)\n"
        f"footprint={profile.footprint_bytes / 1024:.1f} kB "
        f"({profile.distinct_lines} cache lines touched)\n"
        f"bank shares: [{shares}]\n"
        f"inter-access gaps: p50={profile.gap_percentiles[50]:.0f} "
        f"p90={profile.gap_percentiles[90]:.0f} "
        f"p99={profile.gap_percentiles[99]:.0f} cycles\n"
        f"median reuse distance: {profile.reuse_distance_median:.0f} accesses"
    )
