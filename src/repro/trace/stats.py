"""Workload characterization.

Given any trace and a cache geometry, compute the quantities that
determine how the architecture will behave: access density, footprint,
per-bank access shares, inter-access gap statistics, and the scheduled
idleness signature. Used to sanity-check bring-your-own traces before a
simulation campaign (and by the workload tests to validate the
generator's output).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.errors import TraceError
from repro.trace.trace import Trace
from repro.utils.bitops import log2_exact, mask


@dataclass(frozen=True)
class TraceProfile:
    """Characterization summary of one trace on one geometry.

    Attributes
    ----------
    accesses:
        Total accesses.
    horizon:
        Simulated cycles.
    access_density:
        Accesses per cycle.
    distinct_lines:
        Cache lines touched at least once.
    footprint_bytes:
        Distinct line-addresses touched times the line size (the true
        memory footprint, tags included).
    bank_shares:
        Fraction of accesses landing in each bank of an M-way split.
    gap_percentiles:
        {50, 90, 99} percentiles of the global inter-access gap.
    reuse_distance_median:
        Median number of accesses between consecutive touches of the
        same line (a cheap locality proxy).
    """

    accesses: int
    horizon: int
    access_density: float
    distinct_lines: int
    footprint_bytes: int
    bank_shares: tuple[float, ...]
    gap_percentiles: dict[int, float]
    reuse_distance_median: float


def profile_trace(trace: Trace, geometry: CacheGeometry, num_banks: int = 4) -> TraceProfile:
    """Characterize ``trace`` as seen by ``geometry`` split into banks."""
    if num_banks < 1 or geometry.num_sets % num_banks:
        raise TraceError(f"cannot split {geometry.num_sets} sets into {num_banks} banks")
    if len(trace) == 0:
        return TraceProfile(
            accesses=0,
            horizon=trace.horizon,
            access_density=0.0,
            distinct_lines=0,
            footprint_bytes=0,
            bank_shares=tuple(0.0 for _ in range(num_banks)),
            gap_percentiles={50: 0.0, 90: 0.0, 99: 0.0},
            reuse_distance_median=0.0,
        )

    index = (trace.addresses >> geometry.offset_bits) & mask(geometry.index_bits)
    line_bits = geometry.index_bits - log2_exact(num_banks)
    bank = index >> line_bits
    counts = np.bincount(bank, minlength=num_banks)
    shares = tuple(float(c) / len(trace) for c in counts)

    line_addresses = trace.addresses >> geometry.offset_bits
    distinct_line_addresses = int(np.unique(line_addresses).size)
    distinct_lines = int(np.unique(index).size)

    gaps = np.diff(trace.cycles)
    percentiles = {
        q: float(np.percentile(gaps, q)) if gaps.size else 0.0 for q in (50, 90, 99)
    }

    # Reuse distance (in accesses) per line address: sort by (line, pos).
    order = np.lexsort((np.arange(len(trace)), line_addresses))
    sorted_lines = line_addresses[order]
    positions = np.asarray(order, dtype=np.int64)
    same = sorted_lines[1:] == sorted_lines[:-1]
    reuse = (positions[1:] - positions[:-1])[same]
    reuse_median = float(np.median(reuse)) if reuse.size else float("inf")

    return TraceProfile(
        accesses=len(trace),
        horizon=trace.horizon,
        access_density=trace.access_density,
        distinct_lines=distinct_lines,
        footprint_bytes=distinct_line_addresses * geometry.line_size,
        bank_shares=shares,
        gap_percentiles=percentiles,
        reuse_distance_median=reuse_median,
    )


def describe_profile(profile: TraceProfile) -> str:
    """Render a profile as a short human-readable report."""
    shares = ", ".join(f"{s:.1%}" for s in profile.bank_shares)
    return (
        f"accesses={profile.accesses:,} over {profile.horizon:,} cycles "
        f"({profile.access_density:.2f}/cycle)\n"
        f"footprint={profile.footprint_bytes / 1024:.1f} kB "
        f"({profile.distinct_lines} cache lines touched)\n"
        f"bank shares: [{shares}]\n"
        f"inter-access gaps: p50={profile.gap_percentiles[50]:.0f} "
        f"p90={profile.gap_percentiles[90]:.0f} "
        f"p99={profile.gap_percentiles[99]:.0f} cycles\n"
        f"median reuse distance: {profile.reuse_distance_median:.0f} accesses"
    )
