"""Windowed ON/OFF activity schedules.

The workload model divides time into fixed-size windows and the cache
index space into ``NUM_REGIONS = 16`` equal sub-regions, organized as 4
*groups* (the banks of the paper's reference 4-bank partition) of 2
halves of 2 quarters each. For every window the schedule decides which
sub-regions are busy:

* a whole group is **idle** with its calibrated Table-I probability
  (this pins the 4-bank idleness of the generated trace to the paper's
  measured value for the benchmark);
* when a group is active, activity is *concentrated*: each half is busy
  with probability ``half_activity`` and each quarter of a busy half
  with probability ``quarter_activity`` (at least one half/quarter is
  forced). This hierarchical concentration is what makes finer
  partitions (M = 8, 16) find extra idleness, reproducing the paper's
  Table IV trend, without disturbing the M = 4 calibration.

Windows are drawn independently; with ~1 kcycle windows every idle
window is far longer than the breakeven time (a few tens of cycles), so
the scheduled idleness converts almost entirely into *useful* idleness,
as in the paper's traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Address sub-regions (finest supported banking granularity, M = 16).
NUM_REGIONS: int = 16
#: Groups = banks of the reference M = 4 partition used for calibration.
NUM_GROUPS: int = 4
REGIONS_PER_GROUP: int = NUM_REGIONS // NUM_GROUPS


@dataclass(frozen=True)
class ScheduleParams:
    """Knobs of the activity process.

    Attributes
    ----------
    group_idleness:
        Per-group probability that the group is fully idle in a window —
        the Table I calibration targets.
    half_activity:
        P(half busy | group active); at least one half is forced busy.
    quarter_activity:
        P(quarter busy | its half busy); at least one quarter forced.
    """

    group_idleness: tuple[float, float, float, float]
    half_activity: float = 0.55
    quarter_activity: float = 0.60

    def __post_init__(self) -> None:
        if len(self.group_idleness) != NUM_GROUPS:
            raise ConfigurationError(
                f"need {NUM_GROUPS} group idleness values"
            )
        for value in self.group_idleness:
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError("idleness values must be in [0,1]")
        for name, value in (
            ("half_activity", self.half_activity),
            ("quarter_activity", self.quarter_activity),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0,1]")


class ActivitySchedule:
    """A realized busy/idle matrix: ``busy[window, region]``.

    Parameters
    ----------
    params:
        Stochastic process parameters.
    num_windows:
        Number of time windows.
    rng:
        Source of randomness (a seeded :class:`numpy.random.Generator`).
    """

    def __init__(
        self,
        params: ScheduleParams,
        num_windows: int,
        rng: np.random.Generator,
    ) -> None:
        if num_windows < 1:
            raise ConfigurationError("need at least one window")
        self.params = params
        self.num_windows = num_windows
        self.busy = self._realize(rng)

    def _realize(self, rng: np.random.Generator) -> np.ndarray:
        """Sample the busy matrix (bool, windows x regions)."""
        p = self.params
        w = self.num_windows
        busy = np.zeros((w, NUM_REGIONS), dtype=bool)
        for group, idleness in enumerate(p.group_idleness):
            active = rng.random(w) >= idleness
            halves = rng.random((w, 2)) < p.half_activity
            # Force at least one half busy in active windows.
            none_busy = ~halves.any(axis=1)
            forced = rng.integers(0, 2, size=w)
            halves[none_busy, forced[none_busy]] = True
            quarters = rng.random((w, 2, 2)) < p.quarter_activity
            # Force at least one quarter busy in each busy half.
            q_none = ~quarters.any(axis=2)
            q_forced = rng.integers(0, 2, size=(w, 2))
            for h in range(2):
                rows = q_none[:, h]
                quarters[rows, h, q_forced[rows, h]] = True
            base = group * REGIONS_PER_GROUP
            for h in range(2):
                for q in range(2):
                    region = base + 2 * h + q
                    busy[:, region] = active & halves[:, h] & quarters[:, h, q]
        return busy

    # ------------------------------------------------------------------
    # Aggregated views
    # ------------------------------------------------------------------
    def bank_idle_fraction(self, num_banks: int) -> np.ndarray:
        """Scheduled idle-window fraction of each bank of an M-way split.

        A bank is idle in a window when *all* its constituent regions
        are. This is the analytical counterpart of the idleness the
        simulator will measure (minus breakeven overhead).
        """
        if NUM_REGIONS % num_banks:
            raise ConfigurationError(
                f"num_banks must divide {NUM_REGIONS}, got {num_banks}"
            )
        regions_per_bank = NUM_REGIONS // num_banks
        grouped = self.busy.reshape(self.num_windows, num_banks, regions_per_bank)
        bank_busy = grouped.any(axis=2)
        return 1.0 - bank_busy.mean(axis=0)

    def busy_pairs(self) -> np.ndarray:
        """Return an array of ``(window, region)`` indices that are busy."""
        windows, regions = np.nonzero(self.busy)
        return np.column_stack([windows, regions])
