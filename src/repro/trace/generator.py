"""Materialize a benchmark profile into a concrete address trace.

The generator composes three layers:

1. the **activity schedule** (which regions are busy in which windows,
   :mod:`repro.trace.schedule`) — geometry-independent;
2. the **region walkers** (which lines a busy region touches,
   :mod:`repro.trace.synthetic`) — instantiated per cache geometry, with
   each region covering ``num_sets / 16`` consecutive sets;
3. the **intra-window timing**: a busy region is accessed every
   ``access_stride_cycles`` cycles, with a per-region phase so streams
   from simultaneously busy regions interleave instead of colliding
   (the cache is single-ported). The stride is far below the breakeven
   time, so busy windows contribute no useful idleness — all useful
   idleness comes from scheduled idle windows, which is what the
   calibration relies on.

The index space is normalized: the same schedule drives any cache size
or line size, with the region boundaries scaling along. This mirrors the
paper's observation that idleness "is not directly impacted by the cache
size, since it depends on the idleness distribution over the cache
lines" (Section IV-B1).
"""

from __future__ import annotations

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.trace.mediabench import BenchmarkProfile
from repro.trace.schedule import NUM_REGIONS, ActivitySchedule
from repro.trace.synthetic import make_walkers
from repro.trace.trace import Trace
from repro.utils.rng import RandomStreams


class WorkloadGenerator:
    """Generate traces for benchmark profiles on a given cache geometry.

    Parameters
    ----------
    geometry:
        Target cache geometry (regions are sized from its set count).
    num_windows:
        Schedule length; more windows tighten the idleness calibration.
    window_cycles:
        Cycles per window; must comfortably exceed the breakeven time so
        idle windows convert to sleep.
    master_seed:
        Seed of the deterministic stream family; the same seed yields
        bit-identical traces.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        num_windows: int = 1500,
        window_cycles: int = 1024,
        master_seed: int = 2011,
    ) -> None:
        if geometry.num_sets < NUM_REGIONS:
            raise ConfigurationError(
                f"geometry has {geometry.num_sets} sets; the workload model "
                f"needs at least {NUM_REGIONS}"
            )
        if num_windows < 10:
            raise ConfigurationError("need at least 10 windows")
        if window_cycles < 64:
            raise ConfigurationError("windows must be at least 64 cycles")
        self.geometry = geometry
        self.num_windows = num_windows
        self.window_cycles = window_cycles
        self.streams = RandomStreams(master_seed)

    @property
    def region_sets(self) -> int:
        """Consecutive sets per region."""
        return self.geometry.num_sets // NUM_REGIONS

    @property
    def horizon(self) -> int:
        """Total simulated cycles of any generated trace."""
        return self.num_windows * self.window_cycles

    def _window_arrays(self, profile: BenchmarkProfile):
        """Yield one ``(cycles, addresses)`` pair per busy window.

        The single source of the generated access stream:
        :meth:`generate` concatenates it, :meth:`stream` re-chunks it
        without ever materializing the whole trace. RNG stream
        consumption order is identical on every call (schedule, walkers,
        then the turnover draws), so both paths — and repeated passes
        over a :meth:`stream` — are bit-identical.
        """
        rng_schedule = self.streams.get(f"schedule/{profile.name}")
        rng_walk = self.streams.get(f"walk/{profile.name}")
        schedule = ActivitySchedule(
            profile.schedule_params(), self.num_windows, rng_schedule
        )
        walkers = make_walkers(
            NUM_REGIONS, self.region_sets, profile.working_fraction, rng_walk
        )

        stride = profile.access_stride_cycles
        offset_bits = self.geometry.offset_bits
        index_bits = self.geometry.index_bits

        turnover = rng_walk.random(int(schedule.busy.sum())) < profile.tag_turnover
        pair_counter = 0

        for window in range(self.num_windows):
            busy_regions = np.nonzero(schedule.busy[window])[0]
            n_busy = int(busy_regions.size)
            if n_busy == 0:
                continue
            window_start = window * self.window_cycles
            # One merged single-ported stream: accesses every eff_stride
            # cycles, handed to the busy regions round-robin, so each
            # region sees a gap of ~`stride` cycles (always below the
            # breakeven time) and no two accesses share a cycle.
            eff_stride = max(1, stride // n_busy)
            cycles = window_start + np.arange(
                0, self.window_cycles, eff_stride, dtype=np.int64
            )
            slots = np.arange(cycles.size) % n_busy
            addresses = np.empty(cycles.size, dtype=np.int64)
            for j, region in enumerate(busy_regions):
                walker = walkers[int(region)]
                if turnover[pair_counter]:
                    walker.advance_generation()
                pair_counter += 1
                positions = np.nonzero(slots == j)[0]
                offsets = walker.walk(positions.size)
                sets = int(region) * self.region_sets + offsets
                addresses[positions] = (
                    np.int64(walker.tag_generation) << (offset_bits + index_bits)
                ) | (sets << offset_bits)
            yield cycles, addresses

    def generate(self, profile: BenchmarkProfile) -> Trace:
        """Produce the trace for ``profile`` on this generator's geometry."""
        cycle_chunks: list[np.ndarray] = []
        address_chunks: list[np.ndarray] = []
        for cycles, addresses in self._window_arrays(profile):
            cycle_chunks.append(cycles)
            address_chunks.append(addresses)

        horizon = self.horizon
        if not cycle_chunks:
            return Trace(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                horizon=horizon,
                name=profile.name,
            )

        return Trace(
            cycles=np.concatenate(cycle_chunks),
            addresses=np.concatenate(address_chunks),
            horizon=horizon,
            name=profile.name,
        )

    def stream(self, profile: BenchmarkProfile, chunk_cycles: int):
        """Chunked, out-of-core view of :meth:`generate`.

        Returns a :class:`~repro.trace.stream.TraceStream` that
        re-derives its windows on every pass; peak memory is one chunk
        window plus the schedule/walker state, independent of
        ``num_windows``. Concatenating the stream reproduces
        ``generate(profile)`` bit-identically (tests enforce it).
        """
        from repro.trace.stream import SyntheticTraceStream

        return SyntheticTraceStream(self, profile, chunk_cycles)
