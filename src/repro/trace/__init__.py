"""Trace infrastructure and synthetic MediaBench-like workloads.

The paper drives its cache simulator with address traces from the
MediaBench suite. Those traces are not redistributable, so this package
provides (see DESIGN.md, substitution S1):

* :mod:`repro.trace.trace` — the numpy-backed :class:`Trace` container
  (strictly increasing cycle stamps + byte addresses);
* :mod:`repro.trace.io` — text and binary trace file formats;
* :mod:`repro.trace.stream` — chunked, out-of-core trace access
  (:class:`TraceChunk` iterators over files, archives, memory-mapped
  directories and the synthetic generator);
* :mod:`repro.trace.schedule` — windowed ON/OFF activity schedules over
  16 address sub-regions (4 bank groups × 4 quarters);
* :mod:`repro.trace.synthetic` — low-level address-pattern walkers
  (strided loops over working sets with slowly-cycling tags);
* :mod:`repro.trace.mediabench` — one calibrated profile per paper
  benchmark, anchored to Table I's published per-bank idleness;
* :mod:`repro.trace.generator` — materializes a schedule + profile into
  a concrete :class:`Trace` for a given cache geometry.
"""

from repro.trace.generator import WorkloadGenerator
from repro.trace.io import load_trace, save_trace
from repro.trace.mediabench import (
    BENCHMARK_NAMES,
    BenchmarkProfile,
    PROFILES,
    profile_for,
)
from repro.trace.schedule import ActivitySchedule, ScheduleParams
from repro.trace.stream import (
    InMemoryTraceStream,
    MmapTraceStream,
    NpzTraceStream,
    SyntheticTraceStream,
    TextTraceStream,
    TraceChunk,
    TraceStream,
    chunk_trace,
    open_trace_stream,
    save_trace_mmap,
    stream_to_trace,
)
from repro.trace.trace import Trace

__all__ = [
    "Trace",
    "save_trace",
    "load_trace",
    "TraceChunk",
    "TraceStream",
    "InMemoryTraceStream",
    "TextTraceStream",
    "NpzTraceStream",
    "MmapTraceStream",
    "SyntheticTraceStream",
    "chunk_trace",
    "open_trace_stream",
    "save_trace_mmap",
    "stream_to_trace",
    "ActivitySchedule",
    "ScheduleParams",
    "BenchmarkProfile",
    "PROFILES",
    "BENCHMARK_NAMES",
    "profile_for",
    "WorkloadGenerator",
]
