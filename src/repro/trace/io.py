"""Trace file I/O.

Two formats:

* **Text** (``.trc``) — one ``<cycle> <hex-address>`` pair per line,
  ``#`` comments, a ``# horizon: N`` header. Human-readable, diff-able,
  the format examples and tests use.
* **Binary** (``.npz``) — compressed numpy archive for long traces.

Both round-trip exactly (tests enforce it).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TraceError
from repro.trace.trace import Trace


def save_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write ``trace`` to ``path``; format chosen by extension."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        np.savez_compressed(
            path,
            cycles=trace.cycles,
            addresses=trace.addresses,
            horizon=np.asarray([trace.horizon], dtype=np.int64),
            name=np.asarray([trace.name]),
        )
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# repro trace v1\n")
        if trace.name:
            handle.write(f"# name: {trace.name}\n")
        handle.write(f"# horizon: {trace.horizon}\n")
        for cycle, address in trace:
            handle.write(f"{cycle} 0x{address:x}\n")


def load_trace(path: str | os.PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        with np.load(path, allow_pickle=False) as data:
            return Trace(
                cycles=data["cycles"],
                addresses=data["addresses"],
                horizon=int(data["horizon"][0]),
                name=str(data["name"][0]),
            )
    cycles: list[int] = []
    addresses: list[int] = []
    horizon = 0
    name = ""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("horizon:"):
                    horizon = int(body.split(":", 1)[1])
                elif body.startswith("name:"):
                    name = body.split(":", 1)[1].strip()
                continue
            parts = line.split()
            if len(parts) != 2:
                raise TraceError(f"{path}:{lineno}: expected '<cycle> <address>'")
            try:
                cycles.append(int(parts[0]))
                addresses.append(int(parts[1], 0))
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from exc
    return Trace(
        cycles=np.asarray(cycles, dtype=np.int64),
        addresses=np.asarray(addresses, dtype=np.int64),
        horizon=horizon,
        name=name,
    )
