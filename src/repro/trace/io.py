"""Trace file I/O.

Two formats:

* **Text** (``.trc``) — one ``<cycle> <hex-address>`` pair per line,
  ``#`` comments, a ``# horizon: N`` header. Human-readable, diff-able,
  the format examples and tests use.
* **Binary** (``.npz``) — compressed numpy archive for long traces.

Both round-trip exactly (tests enforce it). For traces larger than RAM,
:mod:`repro.trace.stream` adds a chunked reader over both formats plus a
memory-mappable directory format (:func:`~repro.trace.stream.save_trace_mmap`).

Name escaping
-------------
``trace.name`` is free-form text, so the ``# name:`` header must be
robust against names that would corrupt the line-oriented format — a
newline (which would inject arbitrary data or header lines), a carriage
return, leading/trailing whitespace (which the parser strips), or a
leading double quote. Such names are written JSON-encoded (ASCII-safe,
one line); any stored name starting with ``"`` is decoded with
``json.loads`` on read, falling back to the raw text when it is not
valid JSON (a file written by an older version). Benign names are
stored verbatim, so files written before this rule read back unchanged
and unchanged traces produce byte-identical files. The same rule covers
the ``name`` entry of the ``.npz`` format (where it additionally keeps
NUL characters out of numpy's fixed-width unicode storage).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import TraceError
from repro.trace.trace import Trace


def _escape_name(name: str) -> str:
    """The on-disk form of ``name`` (see module docstring)."""
    if (
        name != name.strip()
        or name.startswith('"')
        or any(ch in name for ch in ("\n", "\r", "\x00"))
    ):
        return json.dumps(name)
    return name


def _unescape_name(stored: str) -> str:
    """Invert :func:`_escape_name`; tolerate pre-escaping raw names."""
    if stored.startswith('"'):
        try:
            decoded = json.loads(stored)
        except ValueError:
            return stored
        if isinstance(decoded, str):
            return decoded
    return stored


def save_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write ``trace`` to ``path``; format chosen by extension."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        np.savez_compressed(
            path,
            cycles=trace.cycles,
            addresses=trace.addresses,
            horizon=np.asarray([trace.horizon], dtype=np.int64),
            name=np.asarray([_escape_name(trace.name)]),
        )
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro trace v1\n")
        if trace.name:
            handle.write(f"# name: {_escape_name(trace.name)}\n")
        handle.write(f"# horizon: {trace.horizon}\n")
        for cycle, address in trace:
            handle.write(f"{cycle} 0x{address:x}\n")


def load_trace(path: str | os.PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`.

    A text trace without a ``# horizon:`` header derives its horizon
    from the last access (the :class:`Trace` default); an explicit
    header always wins. Names are unescaped per the module docstring.
    Directories written by :func:`repro.trace.stream.save_trace_mmap`
    load too (materialized in full — stream them with
    :func:`repro.trace.stream.open_trace_stream` instead when they do
    not fit in memory).
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        # Lazy import: stream.py imports this module's name-escaping
        # helpers at module level.
        from repro.trace.stream import load_trace_mmap

        return load_trace_mmap(path)
    if path.endswith(".npz"):
        with np.load(path, allow_pickle=False) as data:
            return Trace(
                cycles=data["cycles"],
                addresses=data["addresses"],
                horizon=int(data["horizon"][0]),
                name=_unescape_name(str(data["name"][0])),
            )
    cycles: list[int] = []
    addresses: list[int] = []
    horizon: int | None = None
    name = ""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("horizon:"):
                    horizon = int(body.split(":", 1)[1])
                elif body.startswith("name:"):
                    name = _unescape_name(body.split(":", 1)[1].strip())
                continue
            parts = line.split()
            if len(parts) != 2:
                raise TraceError(f"{path}:{lineno}: expected '<cycle> <address>'")
            try:
                cycles.append(int(parts[0]))
                addresses.append(int(parts[1], 0))
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from exc
    return Trace(
        cycles=np.asarray(cycles, dtype=np.int64),
        addresses=np.asarray(addresses, dtype=np.int64),
        horizon=horizon,
        name=name,
    )
