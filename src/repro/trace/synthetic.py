"""Low-level address-pattern walkers.

Each busy (window, region) pair of a schedule is filled with a concrete
access pattern. MediaBench kernels are loop-dominated, so the default
walker is a strided loop over a working subset of the region's lines,
with a per-region *tag generation* that advances slowly — modelling a
program moving to a fresh buffer and producing realistic compulsory
misses while keeping hit rates high.

All walkers return numpy arrays of cache-line indices local to the
region; the generator turns them into byte addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class RegionWalker:
    """Per-region walker state.

    Attributes
    ----------
    region_lines:
        Lines in the region for the current cache geometry.
    working_lines:
        Lines the loop actually touches (``<= region_lines``).
    stride:
        Loop stride in lines (coprime with the working set so the walk
        visits every line).
    position:
        Current position within the working set.
    tag_generation:
        Current tag counter for the region.
    """

    region_lines: int
    working_lines: int
    stride: int = 1
    position: int = 0
    tag_generation: int = 0

    def __post_init__(self) -> None:
        if self.region_lines < 1:
            raise ConfigurationError("region must contain at least one line")
        if not 1 <= self.working_lines <= self.region_lines:
            raise ConfigurationError(
                f"working set {self.working_lines} outside [1, {self.region_lines}]"
            )
        if self.stride < 1:
            raise ConfigurationError("stride must be >= 1")

    def walk(self, count: int) -> np.ndarray:
        """Return the next ``count`` line offsets of the strided loop."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        steps = self.position + self.stride * np.arange(count, dtype=np.int64)
        self.position = int((self.position + self.stride * count) % self.working_lines)
        return steps % self.working_lines

    def advance_generation(self) -> None:
        """Move to a fresh buffer: subsequent accesses get a new tag."""
        self.tag_generation += 1


def make_walkers(
    num_regions: int,
    region_lines: int,
    working_fraction: float,
    rng: np.random.Generator,
) -> list[RegionWalker]:
    """Create one walker per region with randomized phase and stride.

    ``working_fraction`` sets the loop footprint as a share of the
    region; strides are drawn from small odd values (odd strides are
    coprime with any power-of-two working set, guaranteeing full
    coverage).
    """
    if not 0.0 < working_fraction <= 1.0:
        raise ConfigurationError("working_fraction must be in (0, 1]")
    working = max(1, int(round(region_lines * working_fraction)))
    walkers = []
    for _ in range(num_regions):
        stride = int(rng.choice([1, 1, 3, 5]))
        walkers.append(
            RegionWalker(
                region_lines=region_lines,
                working_lines=working,
                stride=stride,
                position=int(rng.integers(0, working)),
            )
        )
    return walkers
