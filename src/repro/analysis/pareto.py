"""Pareto-front extraction for multi-objective design points.

The paper's closing argument is a two-objective story (energy saving
and lifetime are *jointly* improved by partitioned drowsy caches with
dynamic indexing). This helper extracts the non-dominated subset of any
sweep so examples and benches can print the actual frontier.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import ConfigurationError


def pareto_front(
    items: Sequence,
    objectives: Sequence[Callable[[object], float]],
    maximize: Sequence[bool] | None = None,
) -> list:
    """Return the non-dominated items under the given objectives.

    Parameters
    ----------
    items:
        Candidate design points (any objects).
    objectives:
        Callables mapping an item to a score.
    maximize:
        Per-objective direction; defaults to maximizing all.

    An item is dominated when another item is at least as good on every
    objective and strictly better on at least one. Ties survive (both
    points are kept), so the front is never empty for non-empty input.

    >>> points = [(1, 5), (2, 4), (2, 5), (0, 0)]
    >>> pareto_front(points, [lambda p: p[0], lambda p: p[1]])
    [(2, 5)]
    """
    if not objectives:
        raise ConfigurationError("need at least one objective")
    directions = list(maximize) if maximize is not None else [True] * len(objectives)
    if len(directions) != len(objectives):
        raise ConfigurationError("maximize flags must match objectives")

    def scores(item) -> list[float]:
        return [
            obj(item) if up else -obj(item)
            for obj, up in zip(objectives, directions)
        ]

    scored = [(item, scores(item)) for item in items]
    front = []
    for item, s in scored:
        dominated = False
        for _, other in scored:
            if other is s:
                continue
            if all(o >= v for o, v in zip(other, s)) and any(
                o > v for o, v in zip(other, s)
            ):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front
