"""Execution planning: grid enumeration and pluggable search strategies.

Every run pipeline — :func:`repro.analysis.sweep.sweep`, the streaming
sweep, :func:`repro.campaign.run.run_campaign` — evaluates a cartesian
product of named axes over a base config. This module is the single
place that product is *planned*: :func:`plan_grid` validates the axes,
enumerates the combos and derives the breakeven group ids every
execution path batches on.

On top of the grid sits the **search strategy** layer. A strategy
decides *which* grid points deserve full simulation, optionally guided
by the closed-form ``estimate`` fidelity tier (:mod:`repro.estimate`):

``exhaustive``
    Simulate every point — today's behavior, bit-identical.
``estimator-pruned``
    Estimate every point, then simulate only the survivors: the top-k
    per objective plus everything within ε of the estimated Pareto
    front.
``pareto-active``
    Iteratively simulate the estimated non-dominated set, refit a
    per-workload additive calibration offset from the simulated points,
    and repeat until the frontier is confirmed (every front member
    simulated) or ``max_rounds`` is exhausted.

Strategies are registered by name (:func:`register_strategy`) and
selected per run through a :class:`SearchSpec` — the parsed form of a
campaign spec file's ``"search"`` block and the CLI ``--strategy``
flag. The planner is deliberately campaign-agnostic: strategies see
only grid indices and two callables (``estimate``, ``simulate``), so
the campaign layer owns persistence and the sweep layer owns batching.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.pareto import pareto_front
from repro.core.config import ArchitectureConfig
from repro.errors import ConfigurationError

__all__ = [
    "PlannedGrid",
    "PlanContext",
    "SearchOutcome",
    "SearchSpec",
    "SearchStrategy",
    "breakeven_group_ids",
    "cartesian",
    "get_strategy",
    "plan_grid",
    "register_strategy",
    "strategy_names",
]


# ----------------------------------------------------------------------
# Grid enumeration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlannedGrid:
    """A validated, enumerated parameter grid.

    ``group_ids`` is the breakeven batching signature: equal ids mark
    points differing only in ``breakeven_override`` (``None`` when the
    grid has no breakeven axis). Execution paths with a grouped fast
    path (``run_group`` engines) batch on it.
    """

    names: tuple[str, ...]
    combos: tuple[tuple[Any, ...], ...]
    group_ids: tuple[int, ...] | None

    def __len__(self) -> int:
        return len(self.combos)

    def parameters(self, index: int) -> dict[str, Any]:
        """The named parameter assignment of grid point ``index``."""
        return dict(zip(self.names, self.combos[index]))

    def subset_group_ids(self, indices: Sequence[int]) -> list[int] | None:
        """Group ids for a subset of points, in ``indices`` order."""
        if self.group_ids is None:
            return None
        return [self.group_ids[i] for i in indices]


def cartesian(
    axes: Mapping[str, Sequence[Any]], names: Sequence[str] | None = None
) -> list[tuple[Any, ...]]:
    """Cartesian product of the axes (one empty combo when no axes)."""
    ordered = list(axes) if names is None else list(names)
    return list(itertools.product(*(tuple(axes[name]) for name in ordered)))


def breakeven_group_ids(
    names: Sequence[str], axes: Mapping[str, Sequence[Any]]
) -> list[int] | None:
    """Group id per grid point; equal ids differ only in breakeven.

    ``None`` when the grid has no ``breakeven_override`` axis (each
    point is then its own group). Ids are the point's flat grid index
    with the breakeven coordinate zeroed, so membership needs no
    hashing of axis values (which may be arbitrary objects).
    """
    if "breakeven_override" not in names:
        return None
    breakeven_axis = list(names).index("breakeven_override")
    sizes = [len(axes[name]) for name in names]
    ids = []
    for coords in itertools.product(*(range(size) for size in sizes)):
        flat = 0
        for axis, coord in enumerate(coords):
            flat = flat * sizes[axis] + (0 if axis == breakeven_axis else coord)
        ids.append(flat)
    return ids


def plan_grid(
    axes: Mapping[str, Sequence[Any]], allow_empty: bool = False
) -> PlannedGrid:
    """Validate ``axes`` against the config schema and enumerate the grid.

    Raises
    ------
    ConfigurationError
        For an axis name that is not an :class:`ArchitectureConfig`
        field, or an empty axes mapping unless ``allow_empty`` (a
        campaign with no axes runs exactly its base config; a sweep of
        nothing is a mistake).
    """
    if not axes and not allow_empty:
        raise ConfigurationError("sweep needs at least one axis")
    field_names = set(ArchitectureConfig.__dataclass_fields__)
    for name in axes:
        if name not in field_names:
            raise ConfigurationError(f"{name!r} is not an ArchitectureConfig field")
    names = list(axes)
    combos = cartesian(axes, names)
    ids = breakeven_group_ids(names, axes)
    return PlannedGrid(
        names=tuple(names),
        combos=tuple(combos),
        group_ids=tuple(ids) if ids is not None else None,
    )


# ----------------------------------------------------------------------
# Search specification
# ----------------------------------------------------------------------
_SEARCH_KEYS = frozenset(
    {"strategy", "objectives", "maximize", "top_k", "top_fraction", "epsilon",
     "max_rounds"}
)


@dataclass(frozen=True)
class SearchSpec:
    """Parsed search configuration (spec ``"search"`` block, CLI flag).

    Attributes
    ----------
    strategy:
        Registered strategy name (see :func:`strategy_names`).
    objectives:
        Result metric names the search optimizes (attributes of
        :class:`~repro.core.results.SimulationResult`).
    maximize:
        Per-objective direction; empty means maximize all.
    top_k:
        Survivors per objective for ``estimator-pruned``; ``None``
        derives it from ``top_fraction``.
    top_fraction:
        Fraction of the grid kept per objective when ``top_k`` is
        ``None``.
    epsilon:
        Relative ε (fraction of each objective's estimated range) for
        the near-frontier expansion of ``estimator-pruned``.
    max_rounds:
        Iteration cap for ``pareto-active``.
    """

    strategy: str = "exhaustive"
    objectives: tuple[str, ...] = ("energy_savings", "lifetime_years")
    maximize: tuple[bool, ...] = ()
    top_k: int | None = None
    top_fraction: float = 0.05
    epsilon: float = 0.05
    max_rounds: int = 8

    def __post_init__(self) -> None:
        get_strategy(self.strategy)  # unknown names fail with the list
        objectives = tuple(str(o) for o in self.objectives)
        if not objectives:
            raise ConfigurationError("search needs at least one objective")
        object.__setattr__(self, "objectives", objectives)
        maximize = tuple(bool(m) for m in self.maximize)
        if not maximize:
            maximize = tuple(True for _ in objectives)
        if len(maximize) != len(objectives):
            raise ConfigurationError(
                "search 'maximize' flags must match 'objectives' "
                f"({len(maximize)} flags for {len(objectives)} objectives)"
            )
        object.__setattr__(self, "maximize", maximize)
        if self.top_k is not None and int(self.top_k) < 1:
            raise ConfigurationError("search 'top_k' must be a positive integer")
        if not 0.0 < float(self.top_fraction) <= 1.0:
            raise ConfigurationError("search 'top_fraction' must be in (0, 1]")
        if float(self.epsilon) < 0.0:
            raise ConfigurationError("search 'epsilon' must be non-negative")
        if int(self.max_rounds) < 1:
            raise ConfigurationError("search 'max_rounds' must be positive")

    def survivors_per_objective(self, total: int) -> int:
        """Top-k survivor count for a grid of ``total`` points."""
        if self.top_k is not None:
            return int(self.top_k)
        return max(1, math.ceil(total * self.top_fraction))

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-shaped form (defaults explicit)."""
        return {
            "strategy": self.strategy,
            "objectives": list(self.objectives),
            "maximize": list(self.maximize),
            "top_k": self.top_k,
            "top_fraction": self.top_fraction,
            "epsilon": self.epsilon,
            "max_rounds": self.max_rounds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchSpec":
        """Decode a ``"search"`` block; unknown keys fail loudly."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"'search' must be a mapping, got {type(payload).__name__}"
            )
        unknown = set(payload) - _SEARCH_KEYS
        if unknown:
            raise ConfigurationError(f"unknown search fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        if "strategy" in payload:
            kwargs["strategy"] = str(payload["strategy"])
        if "objectives" in payload:
            objectives = payload["objectives"]
            if not isinstance(objectives, (list, tuple)):
                raise ConfigurationError("search 'objectives' must be a list")
            kwargs["objectives"] = tuple(str(o) for o in objectives)
        if "maximize" in payload:
            maximize = payload["maximize"]
            if not isinstance(maximize, (list, tuple)):
                raise ConfigurationError("search 'maximize' must be a list")
            kwargs["maximize"] = tuple(bool(m) for m in maximize)
        if "top_k" in payload and payload["top_k"] is not None:
            kwargs["top_k"] = int(payload["top_k"])
        if "top_fraction" in payload:
            kwargs["top_fraction"] = float(payload["top_fraction"])
        if "epsilon" in payload:
            kwargs["epsilon"] = float(payload["epsilon"])
        if "max_rounds" in payload:
            kwargs["max_rounds"] = int(payload["max_rounds"])
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Strategy protocol
# ----------------------------------------------------------------------
def result_metric(result: Any, name: str) -> float:
    """Default metric reader: result attribute by name, as float."""
    return float(getattr(result, name))


@dataclass
class PlanContext:
    """Everything a strategy sees: the grid and two evaluation callables.

    ``simulate(indices)`` and ``estimate(indices)`` evaluate grid
    points (by index) at full and estimate fidelity respectively,
    returning results in ``indices`` order; the caller owns batching,
    reuse of already-stored results and persistence. ``estimate`` is
    ``None`` when the run pipeline has no estimator available —
    strategies that need one fail loudly.
    """

    grid: PlannedGrid
    search: SearchSpec
    simulate: Callable[[Sequence[int]], Sequence[Any]]
    estimate: Callable[[Sequence[int]], Sequence[Any]] | None = None
    metric: Callable[[Any, str], float] = field(default=result_metric)


@dataclass(frozen=True)
class SearchOutcome:
    """What a strategy evaluated: grid indices per fidelity tier."""

    simulated: tuple[int, ...]
    estimated: tuple[int, ...]
    rounds: int = 1


class SearchStrategy:
    """Protocol (and base class) for search strategies.

    ``select`` drives the evaluation callables and reports which grid
    indices ended up at which fidelity. Strategy objects are stateless;
    all tuning lives in the :class:`SearchSpec` on the context.
    """

    name: str = ""
    description: str = ""
    #: Whether this strategy needs an ``estimate`` callable.
    requires_estimates: bool = True

    def select(self, context: PlanContext) -> SearchOutcome:
        raise NotImplementedError


def _require_estimates(context: PlanContext) -> list[Any]:
    """All-point estimates, or a loud failure when there is no estimator."""
    if context.estimate is None:
        raise ConfigurationError(
            f"strategy {context.search.strategy!r} needs the estimate "
            "fidelity tier, but this run pipeline provides no estimator"
        )
    indices = list(range(len(context.grid)))
    estimates = list(context.estimate(indices))
    if len(estimates) != len(indices):
        raise ConfigurationError(
            f"estimator returned {len(estimates)} results for "
            f"{len(indices)} grid points"
        )
    return estimates


def _direction_scores(
    context: PlanContext, results: Sequence[Any]
) -> list[list[float]]:
    """Per-result objective scores, negated for minimized objectives."""
    scores: list[list[float]] = []
    for result in results:
        row: list[float] = []
        for objective, up in zip(context.search.objectives, context.search.maximize):
            value = context.metric(result, objective)
            row.append(value if up else -value)
        scores.append(row)
    return scores


def _epsilon_front(scores: Sequence[Sequence[float]], epsilon: float) -> list[int]:
    """Indices not ε-dominated: the Pareto front plus its ε-margin.

    ``epsilon`` is relative to each objective's observed range. A point
    is dropped only when some other point beats it by more than the
    margin on *every* objective — with ``epsilon=0`` this is strict
    dominance on all objectives, so ties and the exact front always
    survive.
    """
    if not scores:
        return []
    dims = len(scores[0])
    margins: list[float] = []
    for j in range(dims):
        column = [row[j] for row in scores]
        margins.append(epsilon * (max(column) - min(column)))
    keep: list[int] = []
    for i, row in enumerate(scores):
        dominated = False
        for k, other in enumerate(scores):
            if k == i:
                continue
            if all(
                other[j] >= row[j] + margins[j] for j in range(dims)
            ) and any(other[j] > row[j] for j in range(dims)):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return keep


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------
class ExhaustiveStrategy(SearchStrategy):
    """Simulate every grid point — bit-identical to the classic paths."""

    name = "exhaustive"
    description = "simulate every grid point (the classic full sweep)"
    requires_estimates = False

    def select(self, context: PlanContext) -> SearchOutcome:
        indices = list(range(len(context.grid)))
        context.simulate(indices)
        return SearchOutcome(
            simulated=tuple(indices), estimated=(), rounds=1
        )


class EstimatorPrunedStrategy(SearchStrategy):
    """Estimate everything, simulate only the promising survivors.

    Survivors are the union of the top-k points per objective (by
    estimated value) and every point within ε of the estimated Pareto
    front — so a point only has to look good *somewhere* to earn a
    simulation.
    """

    name = "estimator-pruned"
    description = "estimate all points, simulate top-k/near-frontier survivors"

    def select(self, context: PlanContext) -> SearchOutcome:
        estimates = _require_estimates(context)
        indices = list(range(len(context.grid)))
        search = context.search
        survivors: set[int] = set()
        k = search.survivors_per_objective(len(indices))
        for objective, up in zip(search.objectives, search.maximize):
            ranked = sorted(
                indices,
                key=lambda i: context.metric(estimates[i], objective),
                reverse=up,
            )
            survivors.update(ranked[:k])
        scores = _direction_scores(context, estimates)
        survivors.update(_epsilon_front(scores, search.epsilon))
        chosen = sorted(survivors)
        context.simulate(chosen)
        return SearchOutcome(
            simulated=tuple(chosen), estimated=tuple(indices), rounds=1
        )


class ParetoActiveStrategy(SearchStrategy):
    """Active frontier confirmation with per-workload calibration.

    Each round extracts the non-dominated set under *calibrated*
    estimates (simulated values where known, estimate + additive offset
    elsewhere), simulates the unconfirmed front members, then refits
    the per-objective offset as the mean simulate-minus-estimate delta
    over everything simulated so far. Converged when a round's front is
    fully simulated.
    """

    name = "pareto-active"
    description = "iteratively simulate the estimated Pareto front until confirmed"

    def select(self, context: PlanContext) -> SearchOutcome:
        estimates = _require_estimates(context)
        indices = list(range(len(context.grid)))
        search = context.search
        offsets: dict[str, float] = {name: 0.0 for name in search.objectives}
        simulated: dict[int, Any] = {}

        def calibrated(index: int, objective: str) -> float:
            if index in simulated:
                return context.metric(simulated[index], objective)
            return context.metric(estimates[index], objective) + offsets[objective]

        def objective_fn(objective: str) -> Callable[[Any], float]:
            return lambda index: calibrated(int(index), objective)

        rounds = 0
        for _ in range(search.max_rounds):
            rounds += 1
            front = pareto_front(
                indices,
                [objective_fn(objective) for objective in search.objectives],
                maximize=list(search.maximize),
            )
            fresh = sorted(int(i) for i in front if int(i) not in simulated)
            if not fresh:
                break
            results = context.simulate(fresh)
            for index, result in zip(fresh, results):
                simulated[index] = result
            for objective in search.objectives:
                deltas = [
                    context.metric(simulated[i], objective)
                    - context.metric(estimates[i], objective)
                    for i in simulated
                ]
                offsets[objective] = sum(deltas) / len(deltas)
        return SearchOutcome(
            simulated=tuple(sorted(simulated)),
            estimated=tuple(indices),
            rounds=rounds,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_STRATEGIES: dict[str, SearchStrategy] = {}


def register_strategy(strategy: SearchStrategy, replace: bool = False) -> None:
    """Add ``strategy`` to the registry under ``strategy.name``."""
    name = getattr(strategy, "name", "")
    if not name or not isinstance(name, str):
        raise ConfigurationError("a search strategy must carry a non-empty name")
    if not replace and name in _STRATEGIES:
        raise ConfigurationError(
            f"search strategy {name!r} is already registered; "
            "pass replace=True to override"
        )
    _STRATEGIES[name] = strategy


def get_strategy(name: str) -> SearchStrategy:
    """Look up a registered strategy by name (loud on typos)."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown search strategy {name!r}; known: "
            f"{', '.join(strategy_names())}"
        ) from None


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted (the CLI/validation view)."""
    return tuple(sorted(_STRATEGIES))


register_strategy(ExhaustiveStrategy())
register_strategy(EstimatorPrunedStrategy())
register_strategy(ParetoActiveStrategy())
