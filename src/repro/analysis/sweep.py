"""Declarative parameter sweeps over the simulator.

A sweep is a cartesian product of named parameter axes applied to a
base :class:`~repro.core.config.ArchitectureConfig` via
``dataclasses.replace``, each point simulated on a shared trace through
the :func:`~repro.core.simulator.simulate` dispatcher (so any engine —
and any geometry, including set-associative ones — works). Results come
back as :class:`SweepResult`, a small query-friendly container used by
the ablation benches and the exploration example.

The grid does not pay the full per-point cost: a shared
:class:`~repro.core.plan.TracePlan` memoizes the address decode, epoch
boundaries and bank-sorted access stream across points, and points that
differ only in ``breakeven_override`` are simulated as one
:func:`~repro.core.fastsim.run_breakeven_group` — one gap computation
for the whole breakeven axis. Every result stays bit-identical to an
independent per-point simulation (the tests hold the two together).

Large grids can be fanned out over processes with ``parallel=N``: the
cartesian product is split into contiguous chunks, simulated by a
:class:`~concurrent.futures.ProcessPoolExecutor`, and reassembled in
the exact order the serial path would have produced. The trace and LUT
travel to each worker once, through the pool initializer; chunk payloads
carry only the parameter combinations, so fanning out a big trace no
longer re-pickles it per chunk.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.aging.lut import LifetimeLUT
from repro.analysis.planner import (
    PlanContext,
    PlannedGrid,
    SearchOutcome,
    SearchSpec,
    breakeven_group_ids,
    get_strategy,
    plan_grid,
)
from repro.core.config import ArchitectureConfig
from repro.core.engine import resolve_engine, validate_engine
from repro.core.plan import TracePlan
from repro.core.results import SimulationResult
from repro.core.simulator import simulate
from repro.errors import ConfigurationError
from repro.trace.trace import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One simulated point: the parameter assignment and its result."""

    parameters: dict
    result: SimulationResult

    def value(self, metric: str):
        """Read a metric off the result by attribute name."""
        return getattr(self.result, metric)


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep."""

    points: tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def where(self, **constraints) -> "SweepResult":
        """Filter points whose parameters match all ``constraints``."""
        kept = tuple(
            p
            for p in self.points
            if all(p.parameters.get(k) == v for k, v in constraints.items())
        )
        return SweepResult(points=kept)

    def series(self, axis: str, metric: str) -> list[tuple[object, float]]:
        """(axis value, metric) pairs sorted by axis value.

        Axes may mix ``None`` with other values (e.g. the natural
        static-vs-dynamic sweep ``update_period_cycles: [None, 50000]``);
        ``None`` sorts first, numbers numerically, anything else by type
        then repr, so the key is total without comparing across types.
        """
        pairs = [(p.parameters[axis], p.value(metric)) for p in self.points]
        return sorted(pairs, key=lambda pair: _axis_sort_key(pair[0]))

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        """The point optimizing ``metric``."""
        if not self.points:
            raise ConfigurationError("empty sweep has no best point")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.value(metric))


def _axis_sort_key(value) -> tuple:
    """None-first, type-stable total ordering key for axis values."""
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (2, float(value), "")
    return (3, 0.0, f"{type(value).__name__}:{value!r}")


#: Per-worker shared state, installed once by :func:`_init_worker` so
#: chunk payloads never carry the trace or the LUT.
_worker_trace: Trace | None = None
_worker_lut: LifetimeLUT | None = None
_worker_plan: TracePlan | None = None


def _init_worker(
    trace: Trace,
    lut: LifetimeLUT,
    engines: tuple = (),
    metrics: tuple = (),
    templates: tuple = (),
) -> None:
    """Pool initializer: shared trace/LUT plus the parent's plugins.

    Built-in engines/metrics/templates re-register themselves in every
    process via imports, but plugin registrations only exist in the
    parent — under a ``spawn``/``forkserver`` start method a worker
    would otherwise not know a custom engine name (crash) or silently
    drop a custom metric's values. The parent's custom registry entries
    therefore travel here, once per worker (they must pickle).
    """
    from repro.core.engine import install_engines
    from repro.core.metrics import install_metrics, install_templates

    install_templates(templates)
    install_metrics(metrics)
    install_engines(engines)
    global _worker_trace, _worker_lut, _worker_plan
    _worker_trace = trace
    _worker_lut = lut
    _worker_plan = TracePlan(trace)


def _simulate_chunk(payload) -> list[SimulationResult]:
    """Worker for the parallel sweep: simulate one chunk of the grid.

    Module-level (not a closure) so it pickles into pool workers; the
    trace, LUT and plan come from :func:`_init_worker`, not the payload.
    """
    base, names, combos, group_ids, engine = payload
    return _simulate_combos(
        base, _worker_trace, names, combos, group_ids, _worker_lut, engine, _worker_plan
    )


#: Historical alias: the group-id derivation moved to the planner layer
#: (:func:`repro.analysis.planner.breakeven_group_ids`) so campaigns and
#: sweeps can never disagree about batching; existing imports keep
#: working.
_breakeven_group_ids = breakeven_group_ids


def _simulate_combos(
    base: ArchitectureConfig,
    trace: Trace,
    names: list[str],
    combos: list[tuple],
    group_ids: list[int] | None,
    lut: LifetimeLUT | None,
    engine: str,
    plan: TracePlan | None,
    on_result=None,
) -> list[SimulationResult]:
    """Simulate combos in order, batching breakeven-only groups.

    The breakeven-group fast path is an engine *capability*: it is
    taken only when the engine resolved for this grid exposes a
    ``run_group`` method (the fast engine does, and ``auto`` resolves
    to it for every banked configuration). Engines without one — the
    reference oracle, the fine-grain template, any registered custom
    engine — and grids without a breakeven axis fall back to per-point
    dispatch. ``on_result(position, result)`` is invoked as soon as
    each point's result exists (per point, or per breakeven group),
    which is what lets a campaign persist finished work before the
    batch completes.
    """
    if group_ids is None:
        results = []
        for position, combo in enumerate(combos):
            result = simulate(
                replace(base, **dict(zip(names, combo))),
                trace,
                lut,
                engine=engine,
                plan=plan,
            )
            results.append(result)
            if on_result is not None:
                on_result(position, result)
        return results
    groups: dict[int, list[int]] = {}
    for position, group_id in enumerate(group_ids):
        groups.setdefault(group_id, []).append(position)
    results: list[SimulationResult | None] = [None] * len(combos)
    for members in groups.values():
        configs = [
            replace(base, **dict(zip(names, combos[position])))
            for position in members
        ]
        # Resolve per group, not per grid: other axes (geometry, bank
        # count, ...) vary across groups and may resolve "auto" — or an
        # explicit engine's supports() — differently; within a group,
        # configs differ only in breakeven_override.
        run_group = getattr(resolve_engine(engine, configs[0]), "run_group", None)
        if run_group is None:
            for position, config in zip(members, configs):
                result = simulate(config, trace, lut, engine=engine, plan=plan)
                results[position] = result
                if on_result is not None:
                    on_result(position, result)
            continue
        for position, result in zip(
            members, run_group(configs, trace, lut=lut, plan=plan)
        ):
            results[position] = result
            if on_result is not None:
                on_result(position, result)
    return results


def _chunk_payloads(
    base: ArchitectureConfig,
    names: list[str],
    combos: list[tuple],
    group_ids: list[int] | None,
    engine: str,
    workers: int,
) -> list[tuple]:
    """Contiguous chunk payloads for the worker pool.

    Deliberately trace-free: a payload is (base config, axis names, the
    chunk's combos and group ids, engine) — a few hundred bytes no
    matter how long the trace is. Tests pin this with a pickle-size
    assertion.
    """
    chunk_size = -(-len(combos) // workers)  # ceil division
    payloads = []
    for start in range(0, len(combos), chunk_size):
        chunk = combos[start : start + chunk_size]
        ids = (
            group_ids[start : start + chunk_size] if group_ids is not None else None
        )
        payloads.append((base, names, chunk, ids, engine))
    return payloads


def simulate_selected(
    base: ArchitectureConfig,
    trace: Trace,
    names: list[str],
    combos: list[tuple],
    group_ids: list[int] | None = None,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    parallel: int | None = None,
    plan: TracePlan | None = None,
    on_result=None,
) -> list[SimulationResult]:
    """Simulate an explicit list of grid points on one trace.

    The reusable core of :func:`sweep`: ``combos`` need not be a full
    cartesian product — the campaign layer passes only the points its
    store is missing — yet every batching lever still applies: a shared
    :class:`TracePlan`, the breakeven-group fast path (points sharing a
    ``group_ids`` entry differ only in ``breakeven_override`` and are
    evaluated from one gap computation), and the ``parallel`` process
    fan-out with trace-free chunk payloads. Results come back in
    ``combos`` order, bit-identical to per-point :func:`simulate` calls.

    ``on_result(position, result)`` fires as results become available —
    per point or breakeven group serially, per finished chunk in
    parallel mode — so callers can persist progress incrementally
    instead of waiting for the whole batch.
    """
    # Validate up front: the breakeven-grouped path never reaches
    # simulate()'s own engine check, and a typo'd engine must not
    # silently fall through to the fast engine.
    validate_engine(engine)
    if parallel is not None and parallel < 1:
        raise ConfigurationError("parallel must be a positive worker count")
    if not combos:
        return []
    shared_lut = lut if lut is not None else LifetimeLUT.default()
    workers = min(parallel or 1, len(combos))
    if workers > 1:
        from repro.core.engine import custom_engines
        from repro.core.metrics import custom_metrics, custom_templates

        payloads = _chunk_payloads(base, names, combos, group_ids, engine, workers)
        with ProcessPoolExecutor(
            max_workers=len(payloads),
            initializer=_init_worker,
            initargs=(
                trace,
                shared_lut,
                custom_engines(),
                custom_metrics(),
                custom_templates(),
            ),
        ) as pool:
            results: list[SimulationResult] = []
            # pool.map yields chunks in submission order as they
            # finish; reporting per chunk keeps progress durable even
            # if a later chunk (or the caller) dies.
            for chunk in pool.map(_simulate_chunk, payloads):
                if on_result is not None:
                    for offset, result in enumerate(chunk):
                        on_result(len(results) + offset, result)
                results.extend(chunk)
            return results
    if plan is None:
        plan = TracePlan(trace)
    return _simulate_combos(
        base, trace, names, combos, group_ids, shared_lut, engine, plan, on_result
    )


def _grid(axes: dict[str, list]) -> tuple[list[str], list[tuple]]:
    """Validated axis names and their cartesian product (planner-backed)."""
    grid = plan_grid(axes)
    return list(grid.names), list(grid.combos)


def stream_sweep(
    base: ArchitectureConfig,
    stream,
    axes: dict[str, list],
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    parallel: int | None = None,
) -> SweepResult:
    """Out-of-core :func:`sweep`: the whole grid in one pass over a stream.

    ``stream`` is a :class:`~repro.trace.stream.TraceStream` — or a
    zero-argument callable producing one, which is what ``parallel=N``
    wants: each worker re-opens its own stream. Every grid point's
    carried state (one cursor per breakeven group) advances chunk by
    chunk through a shared :class:`~repro.core.plan.StreamingPlan`, so
    peak memory is bounded by the chunk size plus per-point state —
    never the trace length — and every result is bit-identical to
    :func:`sweep` on the materialized trace (the streaming fuzz suite
    holds the two together). Engines join via the streaming
    capabilities documented on :class:`~repro.core.engine.Engine`.

    ``parallel=N`` shards the single pass across ``N`` worker
    processes by set/bank partition (see
    :func:`repro.core.streamsim.stream_selected`); results stay
    bit-identical to the serial pass. When the pass cannot be sharded
    (engine without shard support, or a stream that neither pickles
    nor came from a factory) a :class:`~repro.errors.ReproWarning` is
    emitted and the serial single pass runs instead.
    """
    from repro.core.streamsim import stream_selected

    names, combos = _grid(axes)
    results = stream_selected(
        base,
        stream,
        names,
        combos,
        group_ids=_breakeven_group_ids(names, axes),
        lut=lut,
        engine=engine,
        parallel=parallel,
    )
    points = tuple(
        SweepPoint(parameters=dict(zip(names, combo)), result=result)
        for combo, result in zip(combos, results)
    )
    return SweepResult(points=points)


def sweep(
    base: ArchitectureConfig,
    trace: Trace,
    axes: dict[str, list],
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    parallel: int | None = None,
) -> SweepResult:
    """Simulate the cartesian product of ``axes`` over ``base``.

    Parameters
    ----------
    base:
        Configuration template; each axis name must be a field of
        :class:`ArchitectureConfig` (e.g. ``num_banks``, ``policy``,
        ``breakeven_override``, ``update_period_cycles``, ``geometry``).
    trace:
        Shared workload.
    axes:
        Mapping of field name to the values to explore.
    engine:
        Engine selector forwarded to
        :func:`~repro.core.simulator.simulate` for every point.
    parallel:
        Fan the grid out over up to this many worker processes
        (contiguous chunks, results reassembled in deterministic grid
        order). ``None`` or ``1`` runs serially. The trace and LUT are
        shipped once per worker via the pool initializer; chunk
        payloads carry only parameter combinations.

    >>> # doctest-style sketch (not executed here):
    >>> # result = sweep(cfg, trace, {"num_banks": [2, 4, 8]}, parallel=4)
    """
    names, combos = _grid(axes)
    results = simulate_selected(
        base,
        trace,
        names,
        combos,
        group_ids=_breakeven_group_ids(names, axes),
        lut=lut,
        engine=engine,
        parallel=parallel,
    )
    points = tuple(
        SweepPoint(parameters=dict(zip(names, combo)), result=result)
        for combo, result in zip(combos, results)
    )
    return SweepResult(points=points)


@dataclass(frozen=True)
class SearchSweepResult:
    """Outcome of a strategy-guided sweep (see :func:`search_sweep`).

    ``simulated`` holds the full-fidelity points the strategy chose (a
    subset of the grid, in grid order); ``estimates`` holds every
    estimate-fidelity point the strategy consulted (empty for
    ``exhaustive``). ``outcome`` records the raw grid indices per tier.
    """

    search: SearchSpec
    simulated: SweepResult
    estimates: SweepResult
    outcome: SearchOutcome

    @property
    def simulations_avoided(self) -> int:
        """Grid points that never paid full simulation."""
        return len(set(self.outcome.estimated) - set(self.outcome.simulated))


def search_sweep(
    base: ArchitectureConfig,
    trace: Trace,
    axes: dict[str, list],
    search: SearchSpec | str | None = None,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    parallel: int | None = None,
) -> SearchSweepResult:
    """Strategy-guided :func:`sweep`: simulate only what the search asks.

    ``search`` selects and tunes the strategy (a
    :class:`~repro.analysis.planner.SearchSpec`, a bare strategy name,
    or ``None`` for exhaustive). Estimates come from the ``"estimate"``
    fidelity tier (:mod:`repro.estimate`); simulations run through
    :func:`simulate_selected` with the usual plan sharing, breakeven
    batching over the surviving subset, and ``parallel`` fan-out.
    Simulated points are bit-identical to a full :func:`sweep`'s points
    at the same grid positions.
    """
    if search is None:
        spec = SearchSpec()
    elif isinstance(search, str):
        spec = SearchSpec(strategy=search)
    else:
        spec = search
    validate_engine(engine)
    grid: PlannedGrid = plan_grid(axes)
    shared_lut = lut if lut is not None else LifetimeLUT.default()
    plan = TracePlan(trace)
    simulated: dict[int, SimulationResult] = {}
    estimated: dict[int, SimulationResult] = {}

    def run_simulate(indices):
        chosen = [int(i) for i in indices]
        results = simulate_selected(
            base,
            trace,
            list(grid.names),
            [grid.combos[i] for i in chosen],
            group_ids=grid.subset_group_ids(chosen),
            lut=shared_lut,
            engine=engine,
            parallel=parallel,
            plan=plan,
        )
        for index, result in zip(chosen, results):
            simulated[index] = result
        return results

    def run_estimate(indices):
        from repro.core.engine import get_engine

        estimator = get_engine("estimate")
        results = []
        for index in (int(i) for i in indices):
            config = replace(base, **grid.parameters(index))
            result = estimator.run(config, trace, lut=shared_lut, plan=plan)
            estimated[index] = result
            results.append(result)
        return results

    context = PlanContext(
        grid=grid, search=spec, simulate=run_simulate, estimate=run_estimate
    )
    outcome = get_strategy(spec.strategy).select(context)
    return SearchSweepResult(
        search=spec,
        simulated=SweepResult(
            points=tuple(
                SweepPoint(parameters=grid.parameters(i), result=simulated[i])
                for i in outcome.simulated
            )
        ),
        estimates=SweepResult(
            points=tuple(
                SweepPoint(parameters=grid.parameters(i), result=estimated[i])
                for i in outcome.estimated
            )
        ),
        outcome=outcome,
    )
