"""Declarative parameter sweeps over the simulator.

A sweep is a cartesian product of named parameter axes applied to a
base :class:`~repro.core.config.ArchitectureConfig` via
``dataclasses.replace``, each point simulated on a shared trace through
the :func:`~repro.core.simulator.simulate` dispatcher (so any engine —
and any geometry, including set-associative ones — works). Results come
back as :class:`SweepResult`, a small query-friendly container used by
the ablation benches and the exploration example.

Large grids can be fanned out over processes with ``parallel=N``: the
cartesian product is split into contiguous chunks, simulated by a
:class:`~concurrent.futures.ProcessPoolExecutor`, and reassembled in
the exact order the serial path would have produced.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.aging.lut import LifetimeLUT
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.core.simulator import simulate
from repro.errors import ConfigurationError
from repro.trace.trace import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One simulated point: the parameter assignment and its result."""

    parameters: dict
    result: SimulationResult

    def value(self, metric: str):
        """Read a metric off the result by attribute name."""
        return getattr(self.result, metric)


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep."""

    points: tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def where(self, **constraints) -> "SweepResult":
        """Filter points whose parameters match all ``constraints``."""
        kept = tuple(
            p
            for p in self.points
            if all(p.parameters.get(k) == v for k, v in constraints.items())
        )
        return SweepResult(points=kept)

    def series(self, axis: str, metric: str) -> list[tuple[object, float]]:
        """(axis value, metric) pairs sorted by axis value.

        Axes may mix ``None`` with other values (e.g. the natural
        static-vs-dynamic sweep ``update_period_cycles: [None, 50000]``);
        ``None`` sorts first, numbers numerically, anything else by type
        then repr, so the key is total without comparing across types.
        """
        pairs = [(p.parameters[axis], p.value(metric)) for p in self.points]
        return sorted(pairs, key=lambda pair: _axis_sort_key(pair[0]))

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        """The point optimizing ``metric``."""
        if not self.points:
            raise ConfigurationError("empty sweep has no best point")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.value(metric))


def _axis_sort_key(value) -> tuple:
    """None-first, type-stable total ordering key for axis values."""
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (2, float(value), "")
    return (3, 0.0, f"{type(value).__name__}:{value!r}")


def _simulate_chunk(payload) -> list[SimulationResult]:
    """Worker for the parallel sweep: simulate one chunk of the grid.

    Module-level (not a closure) so it pickles into pool workers.
    """
    base, trace, names, combos, lut, engine = payload
    results = []
    for combo in combos:
        config = replace(base, **dict(zip(names, combo)))
        results.append(simulate(config, trace, lut, engine=engine))
    return results


def sweep(
    base: ArchitectureConfig,
    trace: Trace,
    axes: dict[str, list],
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    parallel: int | None = None,
) -> SweepResult:
    """Simulate the cartesian product of ``axes`` over ``base``.

    Parameters
    ----------
    base:
        Configuration template; each axis name must be a field of
        :class:`ArchitectureConfig` (e.g. ``num_banks``, ``policy``,
        ``breakeven_override``, ``update_period_cycles``, ``geometry``).
    trace:
        Shared workload.
    axes:
        Mapping of field name to the values to explore.
    engine:
        Engine selector forwarded to
        :func:`~repro.core.simulator.simulate` for every point.
    parallel:
        Fan the grid out over up to this many worker processes
        (contiguous chunks, results reassembled in deterministic grid
        order). ``None`` or ``1`` runs serially.

    >>> # doctest-style sketch (not executed here):
    >>> # result = sweep(cfg, trace, {"num_banks": [2, 4, 8]}, parallel=4)
    """
    if not axes:
        raise ConfigurationError("sweep needs at least one axis")
    field_names = {f for f in ArchitectureConfig.__dataclass_fields__}
    for name in axes:
        if name not in field_names:
            raise ConfigurationError(
                f"{name!r} is not an ArchitectureConfig field"
            )
    if parallel is not None and parallel < 1:
        raise ConfigurationError("parallel must be a positive worker count")
    shared_lut = lut if lut is not None else LifetimeLUT.default()

    names = list(axes)
    combos = list(itertools.product(*(axes[name] for name in names)))
    workers = min(parallel or 1, len(combos))
    if workers > 1:
        chunk_size = -(-len(combos) // workers)  # ceil division
        chunks = [
            combos[start : start + chunk_size]
            for start in range(0, len(combos), chunk_size)
        ]
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            chunked = pool.map(
                _simulate_chunk,
                [(base, trace, names, chunk, shared_lut, engine) for chunk in chunks],
            )
            results = [result for chunk in chunked for result in chunk]
    else:
        results = _simulate_chunk((base, trace, names, combos, shared_lut, engine))
    points = tuple(
        SweepPoint(parameters=dict(zip(names, combo)), result=result)
        for combo, result in zip(combos, results)
    )
    return SweepResult(points=points)
