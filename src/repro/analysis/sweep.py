"""Declarative parameter sweeps over the simulator.

A sweep is a cartesian product of named parameter axes applied to a
base :class:`~repro.core.config.ArchitectureConfig` via
``dataclasses.replace``, each point simulated on a shared trace with the
fast engine. Results come back as :class:`SweepResult`, a small
query-friendly container used by the ablation benches and the
exploration example.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.aging.lut import LifetimeLUT
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.results import SimulationResult
from repro.errors import ConfigurationError
from repro.trace.trace import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One simulated point: the parameter assignment and its result."""

    parameters: dict
    result: SimulationResult

    def value(self, metric: str):
        """Read a metric off the result by attribute name."""
        return getattr(self.result, metric)


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep."""

    points: tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def where(self, **constraints) -> "SweepResult":
        """Filter points whose parameters match all ``constraints``."""
        kept = tuple(
            p
            for p in self.points
            if all(p.parameters.get(k) == v for k, v in constraints.items())
        )
        return SweepResult(points=kept)

    def series(self, axis: str, metric: str) -> list[tuple[object, float]]:
        """(axis value, metric) pairs sorted by axis value."""
        pairs = [(p.parameters[axis], p.value(metric)) for p in self.points]
        return sorted(pairs, key=lambda pair: pair[0])

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        """The point optimizing ``metric``."""
        if not self.points:
            raise ConfigurationError("empty sweep has no best point")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.value(metric))


def sweep(
    base: ArchitectureConfig,
    trace: Trace,
    axes: dict[str, list],
    lut: LifetimeLUT | None = None,
) -> SweepResult:
    """Simulate the cartesian product of ``axes`` over ``base``.

    Parameters
    ----------
    base:
        Configuration template; each axis name must be a field of
        :class:`ArchitectureConfig` (e.g. ``num_banks``, ``policy``,
        ``breakeven_override``, ``update_period_cycles``).
    trace:
        Shared workload.
    axes:
        Mapping of field name to the values to explore.

    >>> # doctest-style sketch (not executed here):
    >>> # result = sweep(cfg, trace, {"num_banks": [2, 4, 8]})
    """
    if not axes:
        raise ConfigurationError("sweep needs at least one axis")
    field_names = {f for f in ArchitectureConfig.__dataclass_fields__}
    for name in axes:
        if name not in field_names:
            raise ConfigurationError(
                f"{name!r} is not an ArchitectureConfig field"
            )
    shared_lut = lut if lut is not None else LifetimeLUT.default()

    names = list(axes)
    points = []
    for combo in itertools.product(*(axes[name] for name in names)):
        assignment = dict(zip(names, combo))
        config = replace(base, **assignment)
        result = FastSimulator(config, shared_lut).run(trace)
        points.append(SweepPoint(parameters=assignment, result=result))
    return SweepResult(points=tuple(points))
