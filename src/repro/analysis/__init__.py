"""Design-space analysis utilities.

* :mod:`repro.analysis.sweep` — declarative parameter sweeps over the
  simulator with structured, filterable results, plus strategy-guided
  sweeps that let the analytical estimator prune the grid;
* :mod:`repro.analysis.planner` — the fidelity-tiered execution
  planner: grid planning, :class:`SearchSpec` parsing and the pluggable
  search-strategy registry;
* :mod:`repro.analysis.pareto` — Pareto-front extraction for the
  energy/lifetime trade-off space the paper's Section V frames.
"""

from repro.analysis.pareto import pareto_front
from repro.analysis.planner import (
    PlanContext,
    PlannedGrid,
    SearchOutcome,
    SearchSpec,
    SearchStrategy,
    get_strategy,
    plan_grid,
    register_strategy,
    strategy_names,
)
from repro.analysis.sweep import (
    SearchSweepResult,
    SweepPoint,
    SweepResult,
    search_sweep,
    stream_sweep,
    sweep,
)

__all__ = [
    "sweep",
    "stream_sweep",
    "search_sweep",
    "SweepPoint",
    "SweepResult",
    "SearchSweepResult",
    "pareto_front",
    "PlanContext",
    "PlannedGrid",
    "SearchOutcome",
    "SearchSpec",
    "SearchStrategy",
    "plan_grid",
    "get_strategy",
    "register_strategy",
    "strategy_names",
]
