"""Design-space analysis utilities.

* :mod:`repro.analysis.sweep` — declarative parameter sweeps over the
  simulator with structured, filterable results;
* :mod:`repro.analysis.pareto` — Pareto-front extraction for the
  energy/lifetime trade-off space the paper's Section V frames.
"""

from repro.analysis.pareto import pareto_front
from repro.analysis.sweep import SweepPoint, SweepResult, stream_sweep, sweep

__all__ = ["sweep", "stream_sweep", "SweepPoint", "SweepResult", "pareto_front"]
