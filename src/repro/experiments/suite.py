"""Shared experiment settings and the trace cache.

All tables run the same 18 synthetic benchmarks; traces depend only on
(benchmark, geometry, seed, schedule length), so they are generated once
and shared across tables and benches through :class:`TraceCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import BENCHMARK_NAMES, profile_for
from repro.trace.trace import Trace

#: The paper's cache-size sweep (Table II / IV).
CACHE_SIZES_BYTES: tuple[int, ...] = (8 * 1024, 16 * 1024, 32 * 1024)
#: The paper's line-size sweep (Table III).
LINE_SIZES_BYTES: tuple[int, ...] = (16, 32)
#: The paper's bank-count sweep (Table IV).
BANK_COUNTS: tuple[int, ...] = (2, 4, 8)
#: The paper's reference configuration (Tables I-III).
DEFAULT_SIZE_BYTES: int = 16 * 1024
DEFAULT_LINE_BYTES: int = 16
DEFAULT_BANKS: int = 4


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment.

    Attributes
    ----------
    master_seed:
        Seed of the workload generator's stream family.
    num_windows, window_cycles:
        Schedule dimensions (trace horizon = product).
    num_updates:
        Re-indexing updates over the trace (>= the largest M so probing
        reaches its provably uniform regime).
    policy:
        Dynamic-indexing policy used for the LT columns.
    benchmarks:
        Benchmark subset (defaults to all 18); trimming it makes smoke
        runs fast.
    engine:
        Simulation engine name forwarded to
        :func:`~repro.core.simulator.simulate`: ``auto`` or any name in
        the engine registry (``fast``, ``reference``, ``finegrain``, or
        a registered custom engine).
    """

    master_seed: int = 2011
    num_windows: int = 1500
    window_cycles: int = 1024
    num_updates: int = 16
    policy: str = "probing"
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.num_updates < max(BANK_COUNTS):
            raise ConfigurationError(
                f"num_updates must be >= {max(BANK_COUNTS)} so probing "
                "reaches uniform coverage"
            )
        for name in self.benchmarks:
            profile_for(name)  # raises on unknown names
        from repro.core.engine import validate_engine
        from repro.errors import UnknownEngineError

        try:
            validate_engine(self.engine)
        except UnknownEngineError as exc:
            raise ConfigurationError(str(exc)) from None

    @property
    def horizon(self) -> int:
        """Trace length in cycles."""
        return self.num_windows * self.window_cycles

    @property
    def update_period(self) -> int:
        """Cycles between re-indexing updates."""
        return self.horizon // self.num_updates

    def quick(self) -> "ExperimentSettings":
        """A fast variant for smoke tests (6 benchmarks, short traces)."""
        return ExperimentSettings(
            master_seed=self.master_seed,
            num_windows=400,
            window_cycles=self.window_cycles,
            num_updates=self.num_updates,
            policy=self.policy,
            benchmarks=self.benchmarks[::3],
            engine=self.engine,
        )


@dataclass
class TraceCache:
    """Memoized trace generation keyed by (benchmark, geometry)."""

    settings: ExperimentSettings
    _traces: dict[tuple[str, CacheGeometry], Trace] = field(default_factory=dict)

    def get(self, benchmark: str, geometry: CacheGeometry) -> Trace:
        """Return (generating on first use) the benchmark's trace."""
        key = (benchmark, geometry)
        if key not in self._traces:
            generator = WorkloadGenerator(
                geometry,
                num_windows=self.settings.num_windows,
                window_cycles=self.settings.window_cycles,
                master_seed=self.settings.master_seed,
            )
            self._traces[key] = generator.generate(profile_for(benchmark))
        return self._traces[key]

    def spec_for(self, benchmark: str, geometry: CacheGeometry):
        """The declarative :class:`~repro.campaign.tracespec.TraceSpec`
        naming exactly the trace :meth:`get` would generate.

        Kept next to :meth:`get` so the two can never drift: both read
        the same settings fields, and the spec's content hash therefore
        identifies this cache's traces in a
        :class:`~repro.campaign.store.CampaignStore`.
        """
        from repro.campaign.tracespec import TraceSpec

        return TraceSpec.synthetic(
            benchmark,
            size_bytes=geometry.size_bytes,
            line_size=geometry.line_size,
            ways=geometry.ways,
            num_windows=self.settings.num_windows,
            window_cycles=self.settings.window_cycles,
            master_seed=self.settings.master_seed,
        )

    def clear(self) -> None:
        """Drop all cached traces."""
        self._traces.clear()
