"""Reproduction of the paper's Tables I-IV and headline claims.

Every function returns a :class:`TableResult` whose rows mirror the
paper's layout (one row per benchmark plus an Average row) with measured
values; ``render`` produces the ASCII table the CLI and benches print.
Comparisons against the published numbers live in
:mod:`repro.experiments.compare`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper_data
from repro.experiments.runner import ExperimentRunner
from repro.experiments.suite import (
    BANK_COUNTS,
    CACHE_SIZES_BYTES,
    DEFAULT_BANKS,
    DEFAULT_LINE_BYTES,
    DEFAULT_SIZE_BYTES,
    LINE_SIZES_BYTES,
)


@dataclass(frozen=True)
class TableResult:
    """A reproduced table: layout metadata plus the measured rows."""

    name: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]

    def render(self, float_fmt: str = ".2f") -> str:
        """Format as an ASCII table."""
        from repro.utils.tables import format_table

        return format_table(
            list(self.headers), [list(r) for r in self.rows],
            float_fmt=float_fmt, title=self.title,
        )

    def row_for(self, label: str) -> tuple:
        """Return the row whose first cell equals ``label``."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(label)


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


# ----------------------------------------------------------------------
# Table I — idleness distribution in a 4-bank cache
# ----------------------------------------------------------------------
def table1(runner: ExperimentRunner) -> TableResult:
    """Useful idleness [%] of each bank, 4-bank 16kB cache, 16B lines."""
    rows = []
    for bench in runner.settings.benchmarks:
        result = runner.static_run(
            bench, DEFAULT_SIZE_BYTES, DEFAULT_LINE_BYTES, DEFAULT_BANKS
        )
        idleness = [100.0 * v for v in result.bank_idleness]
        rows.append((bench, *idleness, _mean(idleness)))
    overall = _mean(row[5] for row in rows)
    rows.append(("Average", None, None, None, None, overall))
    return TableResult(
        name="table1",
        title="Table I: distribution of idleness in a 4-bank cache [%]",
        headers=("benchmark", "I0", "I1", "I2", "I3", "Average"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Table II — energy saving and lifetime vs cache size
# ----------------------------------------------------------------------
def table2(runner: ExperimentRunner) -> TableResult:
    """Esav [%], LT0 and LT [yrs] for 8/16/32kB caches (16B lines, M=4)."""
    rows = []
    for bench in runner.settings.benchmarks:
        cells: list = [bench]
        for size in CACHE_SIZES_BYTES:
            static = runner.static_run(bench, size, DEFAULT_LINE_BYTES, DEFAULT_BANKS)
            dynamic = runner.reindexed_run(bench, size, DEFAULT_LINE_BYTES, DEFAULT_BANKS)
            cells.extend(
                [
                    100.0 * static.energy_savings,
                    static.lifetime_years,
                    dynamic.lifetime_years,
                ]
            )
        rows.append(tuple(cells))
    averages: list = ["Average"]
    for column in range(1, 10):
        averages.append(_mean(row[column] for row in rows))
    rows.append(tuple(averages))
    return TableResult(
        name="table2",
        title="Table II: energy savings and lifetime vs cache size (16B lines)",
        headers=(
            "benchmark",
            "Esav8k[%]", "LT0_8k", "LT_8k",
            "Esav16k[%]", "LT0_16k", "LT_16k",
            "Esav32k[%]", "LT0_32k", "LT_32k",
        ),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Table III — energy saving and lifetime vs line size
# ----------------------------------------------------------------------
def table3(runner: ExperimentRunner) -> TableResult:
    """Esav [%] and LT [yrs] for 16B vs 32B lines (16kB cache, M=4)."""
    rows = []
    for bench in runner.settings.benchmarks:
        cells: list = [bench]
        for line_size in LINE_SIZES_BYTES:
            static = runner.static_run(bench, DEFAULT_SIZE_BYTES, line_size, DEFAULT_BANKS)
            dynamic = runner.reindexed_run(bench, DEFAULT_SIZE_BYTES, line_size, DEFAULT_BANKS)
            cells.extend([100.0 * static.energy_savings, dynamic.lifetime_years])
        rows.append(tuple(cells))
    averages: list = ["Average"]
    for column in range(1, 5):
        averages.append(_mean(row[column] for row in rows))
    rows.append(tuple(averages))
    return TableResult(
        name="table3",
        title="Table III: energy savings and lifetime vs line size (16kB cache)",
        headers=("benchmark", "Esav16B[%]", "LT_16B", "Esav32B[%]", "LT_32B"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Table IV — idleness and lifetime vs number of banks
# ----------------------------------------------------------------------
def table4(runner: ExperimentRunner) -> TableResult:
    """Average idleness [%] and lifetime [yrs] vs (cache size, M)."""
    rows = []
    for size in CACHE_SIZES_BYTES:
        cells: list = [f"{size // 1024}kB"]
        for banks in BANK_COUNTS:
            idleness = _mean(
                runner.static_run(bench, size, DEFAULT_LINE_BYTES, banks).average_idleness
                for bench in runner.settings.benchmarks
            )
            lifetime = _mean(
                runner.reindexed_run(bench, size, DEFAULT_LINE_BYTES, banks).lifetime_years
                for bench in runner.settings.benchmarks
            )
            cells.extend([100.0 * idleness, lifetime])
        rows.append(tuple(cells))
    return TableResult(
        name="table4",
        title="Table IV: average idleness and lifetime vs cache size and banks",
        headers=(
            "size",
            "Idle_M2[%]", "LT_M2",
            "Idle_M4[%]", "LT_M4",
            "Idle_M8[%]", "LT_M8",
        ),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Headline claims (Sections I and V)
# ----------------------------------------------------------------------
def headline(runner: ExperimentRunner) -> TableResult:
    """The paper's summary claims, measured.

    * conventional power management alone buys ~9% lifetime;
    * re-indexing buys 22%..2x across configurations (vs monolithic).
    """
    base = paper_data.CELL_LIFETIME_YEARS
    lt0 = _mean(
        runner.static_run(b, DEFAULT_SIZE_BYTES, DEFAULT_LINE_BYTES, DEFAULT_BANKS).lifetime_years
        for b in runner.settings.benchmarks
    )
    improvements = []
    for size in CACHE_SIZES_BYTES:
        for banks in BANK_COUNTS:
            lt = _mean(
                runner.reindexed_run(b, size, DEFAULT_LINE_BYTES, banks).lifetime_years
                for b in runner.settings.benchmarks
            )
            improvements.append((size, banks, lt / base - 1.0))
    worst = min(improvements, key=lambda t: t[2])
    best = max(improvements, key=lambda t: t[2])
    rows = (
        ("power management only (avg LT0 / monolithic - 1)", 100.0 * (lt0 / base - 1.0), "paper: ~9%"),
        (
            f"worst configuration ({worst[0] // 1024}kB, M={worst[1]})",
            100.0 * worst[2],
            "paper: ~22%",
        ),
        (
            f"best configuration ({best[0] // 1024}kB, M={best[1]})",
            100.0 * best[2],
            "paper: ~100% (2x)",
        ),
    )
    return TableResult(
        name="headline",
        title="Headline aging improvements vs the monolithic cache",
        headers=("quantity", "measured [%]", "reference"),
        rows=rows,
    )
