"""Simulation driver with memoization.

Tables II-IV share many (benchmark, configuration) runs — e.g. the
static M=4 runs appear in Tables I, II and III — so the runner caches
:class:`~repro.core.results.SimulationResult` objects keyed by the full
configuration. Everything funnels through :meth:`ExperimentRunner.run`,
which dispatches through :func:`~repro.core.simulator.simulate` with
the engine named by :attr:`ExperimentSettings.engine` (``auto`` by
default), so any geometry — including set-associative ones — works.
Each cached trace also carries a shared
:class:`~repro.core.plan.TracePlan`, so the many configurations run on
one benchmark reuse its decode/sort state instead of recomputing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aging.lut import LifetimeLUT
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.plan import TracePlan
from repro.core.results import SimulationResult
from repro.core.simulator import simulate
from repro.experiments.suite import ExperimentSettings, TraceCache


@dataclass
class ExperimentRunner:
    """Runs (benchmark, configuration) pairs with caching.

    Parameters
    ----------
    settings:
        Shared experiment settings.
    lut:
        Lifetime LUT; defaults to the calibrated shared instance.
    """

    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    lut: LifetimeLUT | None = None
    _traces: TraceCache = field(default=None)  # type: ignore[assignment]
    _results: dict = field(default_factory=dict)
    # One TracePlan per cached trace, keyed like the TraceCache itself
    # (benchmark, geometry) — a stale plan can then never outlive its
    # trace unnoticed: a regenerated trace gets a fresh plan via the
    # matches() check below.
    _plans: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self._traces is None:
            self._traces = TraceCache(self.settings)
        if self.lut is None:
            self.lut = LifetimeLUT.default()

    # ------------------------------------------------------------------
    def config(
        self,
        size_bytes: int,
        line_bytes: int,
        num_banks: int,
        policy: str,
        power_managed: bool = True,
    ) -> ArchitectureConfig:
        """Build the architecture config for one experiment point."""
        return ArchitectureConfig(
            geometry=CacheGeometry(size_bytes, line_bytes),
            num_banks=num_banks,
            policy=policy,
            power_managed=power_managed,
            update_period_cycles=(
                self.settings.update_period if policy != "static" else None
            ),
        )

    def run(
        self,
        benchmark: str,
        size_bytes: int,
        line_bytes: int,
        num_banks: int,
        policy: str,
        power_managed: bool = True,
    ) -> SimulationResult:
        """Run (memoized) one benchmark on one configuration."""
        key = (benchmark, size_bytes, line_bytes, num_banks, policy, power_managed)
        if key not in self._results:
            config = self.config(
                size_bytes, line_bytes, num_banks, policy, power_managed
            )
            trace = self._traces.get(benchmark, config.geometry)
            plan_key = (benchmark, config.geometry)
            plan = self._plans.get(plan_key)
            if plan is None or not plan.matches(trace):
                plan = self._plans[plan_key] = TracePlan(trace)
            self._results[key] = simulate(
                config, trace, self.lut, engine=self.settings.engine, plan=plan
            )
        return self._results[key]

    # ------------------------------------------------------------------
    # The three standard views used by the tables
    # ------------------------------------------------------------------
    def static_run(
        self, benchmark: str, size_bytes: int, line_bytes: int, num_banks: int
    ) -> SimulationResult:
        """Conventional power-managed partition (LT0 and Esav columns)."""
        return self.run(benchmark, size_bytes, line_bytes, num_banks, "static")

    def reindexed_run(
        self, benchmark: str, size_bytes: int, line_bytes: int, num_banks: int
    ) -> SimulationResult:
        """Dynamic-indexing partition (the LT column)."""
        return self.run(
            benchmark, size_bytes, line_bytes, num_banks, self.settings.policy
        )

    def clear(self) -> None:
        """Drop cached traces, plans and results."""
        self._traces.clear()
        self._results.clear()
        self._plans.clear()
