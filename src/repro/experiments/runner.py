"""Simulation driver on top of the campaign store.

Tables II-IV share many (benchmark, configuration) runs — e.g. the
static M=4 runs appear in Tables I, II and III — so the runner caches
:class:`~repro.core.results.SimulationResult` objects. Since the
campaign redesign the cache *is* a
:class:`~repro.campaign.store.CampaignStore`: every run is keyed by the
content hashes of its declarative trace spec and its **full**
:class:`~repro.core.config.ArchitectureConfig` (so ``ways``,
``update_events``, ``breakeven_override`` and a custom
:class:`~repro.power.energy.TechnologyParams` all participate — the old
positional-tuple memo key could not even express them). The store's
in-memory tier preserves the classic memo-dict contract (repeated runs
return the *same* object); pointing the runner at a directory-backed
store makes every table run resumable across processes, with persisted
records rebuilt into bit-identical results.

Everything funnels through :func:`~repro.core.simulator.simulate` with
the engine named by :attr:`ExperimentSettings.engine` (``auto`` by
default), so any geometry — including set-associative ones — works.
Each cached trace also carries a shared
:class:`~repro.core.plan.TracePlan`, so the many configurations run on
one benchmark reuse its decode/sort state instead of recomputing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aging.lut import LifetimeLUT
from repro.cache.geometry import CacheGeometry
from repro.campaign.codec import config_result_hash
from repro.campaign.store import CampaignStore
from repro.core.engine import result_family
from repro.core.config import ArchitectureConfig
from repro.core.plan import TracePlan
from repro.core.results import SimulationResult
from repro.core.simulator import simulate
from repro.experiments.suite import ExperimentSettings, TraceCache


@dataclass
class ExperimentRunner:
    """Runs (benchmark, configuration) pairs with content-hash caching.

    Parameters
    ----------
    settings:
        Shared experiment settings.
    lut:
        Lifetime LUT; defaults to the calibrated shared instance.
    store:
        Result store; defaults to a fresh memory-only
        :class:`CampaignStore`. Pass a directory-backed store to
        persist every run and to resume from earlier processes.
    """

    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    lut: LifetimeLUT | None = None
    store: CampaignStore = field(default=None)  # type: ignore[assignment]
    _traces: TraceCache = field(default=None)  # type: ignore[assignment]
    # One TracePlan per cached trace, keyed like the TraceCache itself
    # (benchmark, geometry) — a stale plan can then never outlive its
    # trace unnoticed: a regenerated trace gets a fresh plan via the
    # matches() check below.
    _plans: dict = field(default_factory=dict)
    # Trace-spec hashes are pure functions of (benchmark, geometry,
    # settings); memoized so the hot run() path hashes each trace once.
    _trace_hashes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self._traces is None:
            self._traces = TraceCache(self.settings)
        if self.store is None:
            self.store = CampaignStore()
        if self.lut is None:
            self.lut = LifetimeLUT.default()

    # ------------------------------------------------------------------
    def config(
        self,
        size_bytes: int,
        line_bytes: int,
        num_banks: int,
        policy: str,
        power_managed: bool = True,
    ) -> ArchitectureConfig:
        """Build the architecture config for one experiment point."""
        return ArchitectureConfig(
            geometry=CacheGeometry(size_bytes, line_bytes),
            num_banks=num_banks,
            policy=policy,
            power_managed=power_managed,
            update_period_cycles=(
                self.settings.update_period if policy != "static" else None
            ),
        )

    def _trace_hash(self, benchmark: str, geometry: CacheGeometry) -> str:
        key = (benchmark, geometry)
        cached = self._trace_hashes.get(key)
        if cached is None:
            cached = self._trace_hashes[key] = self._traces.spec_for(
                benchmark, geometry
            ).trace_hash()
        return cached

    def run_config(
        self, benchmark: str, config: ArchitectureConfig
    ) -> SimulationResult:
        """Run (memoized) one benchmark on one *full* configuration.

        The store key is ``(trace_hash, result hash)``, so every config
        field participates — two configs differing only in e.g.
        ``update_events`` or technology coefficients never alias — and
        the engine's result family does too, so pointing the runner at
        the ``finegrain`` engine never reuses a banked record. Results
        already in the store (from this process, or from its directory)
        are returned without simulating.
        """
        key = (
            self._trace_hash(benchmark, config.geometry),
            config_result_hash(config, result_family(self.settings.engine)),
        )
        result = self.store.get_result(key, lut=self.lut)
        if result is None:
            trace = self._traces.get(benchmark, config.geometry)
            plan_key = (benchmark, config.geometry)
            plan = self._plans.get(plan_key)
            if plan is None or not plan.matches(trace):
                plan = self._plans[plan_key] = TracePlan(trace)
            result = simulate(
                config, trace, self.lut, engine=self.settings.engine, plan=plan
            )
            self.store.put(key, result)
        return result

    def run(
        self,
        benchmark: str,
        size_bytes: int,
        line_bytes: int,
        num_banks: int,
        policy: str,
        power_managed: bool = True,
    ) -> SimulationResult:
        """Classic positional entry point (thin wrapper over
        :meth:`run_config` with the settings-derived update period)."""
        return self.run_config(
            benchmark,
            self.config(size_bytes, line_bytes, num_banks, policy, power_managed),
        )

    # ------------------------------------------------------------------
    # The three standard views used by the tables
    # ------------------------------------------------------------------
    def static_run(
        self, benchmark: str, size_bytes: int, line_bytes: int, num_banks: int
    ) -> SimulationResult:
        """Conventional power-managed partition (LT0 and Esav columns)."""
        return self.run(benchmark, size_bytes, line_bytes, num_banks, "static")

    def reindexed_run(
        self, benchmark: str, size_bytes: int, line_bytes: int, num_banks: int
    ) -> SimulationResult:
        """Dynamic-indexing partition (the LT column)."""
        return self.run(
            benchmark, size_bytes, line_bytes, num_banks, self.settings.policy
        )

    def clear(self) -> None:
        """Drop cached traces, plans and in-memory results.

        A directory-backed store keeps its on-disk records; only the
        live tier is dropped, so cleared runs re-read (and re-verify)
        rather than re-simulate.
        """
        self._traces.clear()
        self._plans.clear()
        self._trace_hashes.clear()
        self.store.clear_memory()