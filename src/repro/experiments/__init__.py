"""Experiment harness: reproduce every table of the paper.

* :mod:`repro.experiments.paper_data` — the published numbers
  (Tables I-IV) for side-by-side comparison;
* :mod:`repro.experiments.suite` — shared settings and the trace cache;
* :mod:`repro.experiments.runner` — one simulation per (benchmark,
  configuration) with memoization;
* :mod:`repro.experiments.tables` — the per-table reproduction
  functions returning structured rows plus formatted text;
* :mod:`repro.experiments.compare` — paper-vs-measured deltas for
  EXPERIMENTS.md and the regression benches.
"""

from repro.experiments.runner import ExperimentRunner
from repro.experiments.suite import ExperimentSettings
from repro.experiments.tables import (
    TableResult,
    headline,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "ExperimentSettings",
    "ExperimentRunner",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "table4",
    "headline",
]
