"""Paper-vs-measured comparison.

Turns the reproduced tables into delta reports: for every cell the
paper publishes, report measured value, published value, and the
difference. The EXPERIMENTS.md generator and the regression benches are
built on these functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper_data
from repro.experiments.tables import TableResult


@dataclass(frozen=True)
class CellComparison:
    """One compared quantity."""

    row: str
    column: str
    measured: float
    published: float

    @property
    def delta(self) -> float:
        """measured - published."""
        return self.measured - self.published

    @property
    def relative(self) -> float:
        """Relative deviation (vs published; 0 when published is 0)."""
        if self.published == 0:
            return 0.0
        return self.delta / self.published


def _summary(cells: list[CellComparison]) -> dict[str, float]:
    """Aggregate absolute/relative errors."""
    if not cells:
        return {"count": 0, "mean_abs_delta": 0.0, "max_abs_delta": 0.0, "mean_abs_rel": 0.0}
    abs_deltas = [abs(c.delta) for c in cells]
    abs_rels = [abs(c.relative) for c in cells]
    return {
        "count": len(cells),
        "mean_abs_delta": sum(abs_deltas) / len(cells),
        "max_abs_delta": max(abs_deltas),
        "mean_abs_rel": sum(abs_rels) / len(cells),
    }


def compare_table1(result: TableResult) -> tuple[list[CellComparison], dict[str, float]]:
    """Compare a reproduced Table I against the published one."""
    cells = []
    for row in result.rows:
        bench = row[0]
        if bench not in paper_data.TABLE1:
            continue
        published = paper_data.TABLE1[bench]
        for bank in range(4):
            cells.append(
                CellComparison(bench, f"I{bank}", float(row[1 + bank]), published[bank])
            )
    return cells, _summary(cells)


def compare_table2(result: TableResult) -> tuple[list[CellComparison], dict[str, float]]:
    """Compare a reproduced Table II against the published one."""
    sizes = (8192, 16384, 32768)
    cells = []
    for row in result.rows:
        bench = row[0]
        if bench not in paper_data.TABLE2:
            continue
        for i, size in enumerate(sizes):
            esav, lt0, lt = paper_data.TABLE2[bench][size]
            cells.append(CellComparison(bench, f"Esav{size}", float(row[1 + 3 * i]), esav))
            cells.append(CellComparison(bench, f"LT0_{size}", float(row[2 + 3 * i]), lt0))
            cells.append(CellComparison(bench, f"LT_{size}", float(row[3 + 3 * i]), lt))
    return cells, _summary(cells)


def compare_table3(result: TableResult) -> tuple[list[CellComparison], dict[str, float]]:
    """Compare a reproduced Table III against the published one."""
    cells = []
    for row in result.rows:
        bench = row[0]
        if bench not in paper_data.TABLE3:
            continue
        for i, line_size in enumerate((16, 32)):
            esav, lt = paper_data.TABLE3[bench][line_size]
            cells.append(CellComparison(bench, f"Esav_LS{line_size}", float(row[1 + 2 * i]), esav))
            cells.append(CellComparison(bench, f"LT_LS{line_size}", float(row[2 + 2 * i]), lt))
    return cells, _summary(cells)


def compare_table4(result: TableResult) -> tuple[list[CellComparison], dict[str, float]]:
    """Compare a reproduced Table IV against the published one."""
    cells = []
    for row in result.rows:
        size = int(str(row[0]).rstrip("kB")) * 1024
        for i, banks in enumerate((2, 4, 8)):
            idleness, lifetime = paper_data.TABLE4[(size, banks)]
            cells.append(
                CellComparison(str(row[0]), f"Idle_M{banks}", float(row[1 + 2 * i]), idleness)
            )
            cells.append(
                CellComparison(str(row[0]), f"LT_M{banks}", float(row[2 + 2 * i]), lifetime)
            )
    return cells, _summary(cells)


def render_comparison(
    cells: list[CellComparison], summary: dict[str, float], title: str
) -> str:
    """Human-readable comparison report."""
    from repro.utils.tables import format_table

    rows = [
        [c.row, c.column, c.measured, c.published, c.delta]
        for c in cells
    ]
    table = format_table(
        ["row", "column", "measured", "published", "delta"], rows, title=title
    )
    footer = (
        f"\ncells={summary['count']}  mean|Δ|={summary['mean_abs_delta']:.2f}  "
        f"max|Δ|={summary['max_abs_delta']:.2f}  mean|rel|={summary['mean_abs_rel']:.1%}"
    )
    return table + footer
