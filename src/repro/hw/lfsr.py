"""Galois linear-feedback shift register.

The paper's Scrambling remapper (Figure 3b) XORs the ``p`` bank-address
bits with a value produced by an LFSR every time the ``update`` signal
fires. We model a Galois LFSR with maximal-length feedback polynomials,
which is what a synthesis flow would instantiate for a cheap on-chip
pseudo-random source.

The quality analysis of Section IV-B2 (repetition error of the RNG
``∝ 1/sqrt(N)``) is implemented on top of this model in
:mod:`repro.indexing.analysis`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.bitops import mask

#: Maximal-length tap masks for Galois LFSRs of width 2..24.
#:
#: Entry ``w`` is the feedback mask applied when the LSB shifted out is 1;
#: each yields a sequence of period ``2**w - 1`` (all non-zero states).
#: Taken from the standard table of primitive polynomials over GF(2).
MAXIMAL_TAPS: dict[int, int] = {
    2: 0b11,
    3: 0b110,
    4: 0b1100,
    5: 0b10100,
    6: 0b110000,
    7: 0b1100000,
    8: 0b10111000,
    9: 0b100010000,
    10: 0b1001000000,
    11: 0b10100000000,
    12: 0b111000001000,
    13: 0b1110010000000,
    14: 0b11100000000010,
    15: 0b110000000000000,
    16: 0b1101000000001000,
    17: 0b10010000000000000,
    18: 0b100000010000000000,
    19: 0b1110010000000000000,
    20: 0b10010000000000000000,
    21: 0b101000000000000000000,
    22: 0b1100000000000000000000,
    23: 0b10000100000000000000000,
    24: 0b111000010000000000000000,
}


class GaloisLFSR:
    """A Galois LFSR of ``width`` bits with a maximal-length polynomial.

    Parameters
    ----------
    width:
        Register width in bits (2..24).
    seed:
        Initial state; must be non-zero after masking to ``width`` bits
        (the all-zero state is the lock-up state of an XOR LFSR).

    Examples
    --------
    >>> lfsr = GaloisLFSR(4, seed=1)
    >>> states = [lfsr.step() for _ in range(15)]
    >>> len(set(states))  # maximal length: visits all 15 non-zero states
    15
    """

    def __init__(self, width: int, seed: int = 1) -> None:
        if width not in MAXIMAL_TAPS:
            raise ConfigurationError(
                f"unsupported LFSR width {width}; supported: {sorted(MAXIMAL_TAPS)}"
            )
        self.width = width
        self.taps = MAXIMAL_TAPS[width]
        self._mask = mask(width)
        state = seed & self._mask
        if state == 0:
            raise ConfigurationError("LFSR seed must be non-zero modulo 2**width")
        self.state = state

    @property
    def period(self) -> int:
        """Sequence period (``2**width - 1`` for maximal-length taps)."""
        return (1 << self.width) - 1

    def step(self) -> int:
        """Advance one clock and return the new state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self.taps
        return self.state

    def peek(self) -> int:
        """Return the current state without advancing."""
        return self.state

    def sequence(self, count: int) -> list[int]:
        """Return the next ``count`` states (advancing the register)."""
        if count < 0:
            raise ConfigurationError("sequence length must be non-negative")
        return [self.step() for _ in range(count)]

    def low_bits(self, bits: int) -> int:
        """Return the ``bits`` least-significant bits of the current state.

        This is the value routed to the Scrambling XOR when the bank
        address is narrower than the LFSR.
        """
        if bits < 0 or bits > self.width:
            raise ConfigurationError(
                f"cannot take {bits} bits from a {self.width}-bit LFSR"
            )
        return self.state & mask(bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GaloisLFSR(width={self.width}, state=0b{self.state:0{self.width}b})"
