"""The composite decoder block *D* of Figures 1(b) and 2.

``BankDecoder`` performs, for every cache access, exactly what the
paper's decoder does:

1. split the ``n``-bit cache index into ``p`` MSBs (bank address) and
   ``n - p`` LSBs (line-within-bank address);
2. pass the bank address through the remapping function f() (static,
   probing or scrambling — see :mod:`repro.hw.remap`);
3. produce the one-hot ``select`` word activating the target bank.

The per-access output is a :class:`DecodedAccess` record consumed by the
banked cache model and the Block Control logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.onehot import one_hot_encode
from repro.hw.remap import StaticRemapper
from repro.utils.bitops import bit_slice, is_power_of_two, log2_exact


@dataclass(frozen=True)
class DecodedAccess:
    """Result of routing one cache index through decoder D.

    Attributes
    ----------
    logical_bank:
        Bank address before remapping (the p MSBs of the index).
    physical_bank:
        Bank actually activated, after f().
    line_in_bank:
        The ``n - p`` LSBs of the index (row within the bank).
    select_word:
        One-hot activation word driven to the Block Selector.
    """

    logical_bank: int
    physical_bank: int
    line_in_bank: int
    select_word: int


class BankDecoder:
    """Address decoder for an M-bank uniformly partitioned cache.

    Parameters
    ----------
    num_lines:
        Total cache lines ``L = 2**n``.
    num_banks:
        Number of uniform banks ``M = 2**p`` (``p <= n``).
    remapper:
        The f() datapath; defaults to the identity (conventional
        partitioned cache).

    Examples
    --------
    The paper's Example 1 (N=256 lines, M=4 banks, address 70) under
    probing — note the example's prose uses 63/7 for the in-bank line; the
    hardware uses the 6 LSBs (70 mod 64 = 6) and the 2 MSBs (70 // 64 = 1):

    >>> from repro.hw.remap import ProbingRemapper
    >>> dec = BankDecoder(256, 4, ProbingRemapper(2))
    >>> dec.decode(70).physical_bank
    1
    >>> dec.remapper.update()
    >>> dec.decode(70).physical_bank
    2
    """

    def __init__(
        self,
        num_lines: int,
        num_banks: int,
        remapper: StaticRemapper | None = None,
    ) -> None:
        if not is_power_of_two(num_lines):
            raise ConfigurationError(f"num_lines must be a power of two, got {num_lines}")
        if not is_power_of_two(num_banks):
            raise ConfigurationError(f"num_banks must be a power of two, got {num_banks}")
        if num_banks > num_lines:
            raise ConfigurationError(
                f"cannot split {num_lines} lines into {num_banks} banks"
            )
        self.num_lines = num_lines
        self.num_banks = num_banks
        self.index_bits = log2_exact(num_lines)          # n
        self.bank_bits = log2_exact(num_banks)           # p
        self.line_bits = self.index_bits - self.bank_bits  # n - p
        self.remapper = remapper if remapper is not None else StaticRemapper(self.bank_bits)
        if self.remapper.p_bits != self.bank_bits:
            raise ConfigurationError(
                f"remapper is {self.remapper.p_bits} bits wide but the bank "
                f"address needs {self.bank_bits}"
            )

    @property
    def lines_per_bank(self) -> int:
        """Lines in each uniform bank (``2**(n-p)``)."""
        return 1 << self.line_bits

    def decode(self, index: int) -> DecodedAccess:
        """Route cache index ``index`` to a physical bank.

        Raises
        ------
        ConfigurationError
            If ``index`` is outside ``[0, num_lines)``.
        """
        if not 0 <= index < self.num_lines:
            raise ConfigurationError(
                f"index {index} out of range for {self.num_lines} lines"
            )
        logical_bank = bit_slice(index, self.line_bits, self.bank_bits)
        line_in_bank = bit_slice(index, 0, self.line_bits)
        physical_bank = self.remapper.map(logical_bank)
        return DecodedAccess(
            logical_bank=logical_bank,
            physical_bank=physical_bank,
            line_in_bank=line_in_bank,
            select_word=one_hot_encode(physical_bank, self.num_banks),
        )

    def physical_index(self, index: int) -> int:
        """Return the post-remap flat index (physical bank ++ line-in-bank)."""
        decoded = self.decode(index)
        return (decoded.physical_bank << self.line_bits) | decoded.line_in_bank
