"""Saturating idle counters of the Block Control unit.

Section III-A1: *"Block Control contains M counters which are incremented
upon a non-access (a 0 on the 1-hot encoded signal), and reset upon an
access (a 1 on the 1-hot signal). When a counter saturates, its terminal
count signal is used as the output selection signal."*

The counter width is sized from the breakeven time; the paper observes
that 5- or 6-bit counters suffice for breakeven times of a few tens of
cycles. :func:`repro.power.breakeven.breakeven_cycles` computes the
breakeven value this counter is programmed with.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.bitops import bits_required


class SaturatingCounter:
    """An up-counter that saturates at ``limit`` and exposes terminal count.

    Parameters
    ----------
    limit:
        Saturation value (the breakeven time, in cycles). Must be >= 1.

    Examples
    --------
    >>> c = SaturatingCounter(3)
    >>> [c.tick() for _ in range(5)]   # terminal count after 3 idle ticks
    [False, False, True, True, True]
    >>> c.reset(); c.terminal_count
    False
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"counter limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self.value = 0

    @property
    def width(self) -> int:
        """Hardware width in bits needed to hold ``limit``."""
        return bits_required(self.limit)

    @property
    def terminal_count(self) -> bool:
        """True when the counter has saturated (bank may be put to sleep)."""
        return self.value >= self.limit

    def tick(self) -> bool:
        """Advance one non-access cycle; return the terminal-count signal."""
        if self.value < self.limit:
            self.value += 1
        return self.terminal_count

    def advance(self, cycles: int) -> bool:
        """Advance ``cycles`` non-access cycles at once (simulation shortcut)."""
        if cycles < 0:
            raise ConfigurationError("cannot advance a counter by negative cycles")
        self.value = min(self.limit, self.value + cycles)
        return self.terminal_count

    def reset(self) -> None:
        """Reset on an access (a 1 on the bank's one-hot signal)."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SaturatingCounter(value={self.value}, limit={self.limit})"
