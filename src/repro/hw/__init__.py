"""Behavioral models of the paper's hardware blocks.

The paper's architecture (Figures 1-3) is built from a handful of small
digital blocks placed in front of standard memory-compiler banks:

* a **1-hot encoder** turning the ``p`` MSBs of the cache index into bank
  activation signals (:mod:`repro.hw.onehot`),
* **saturating idle counters** inside the Block Control unit
  (:mod:`repro.hw.counter`),
* an **LFSR** pseudo-random generator feeding the Scrambling remapper
  (:mod:`repro.hw.lfsr`),
* the **remapping datapaths** of Figure 3 — adder-based Probing and
  XOR-based Scrambling (:mod:`repro.hw.remap`),
* the composite **decoder D** of Figure 1(b)/2 that splits the index,
  applies the remap function f() and drives the bank selects
  (:mod:`repro.hw.decoder`).

These are cycle-free behavioural models: they compute exactly what the
RTL would, and the simulator uses them directly, so the architectural
experiments exercise the same bit-level transformations the hardware
would perform.
"""

from repro.hw.counter import SaturatingCounter
from repro.hw.decoder import BankDecoder, DecodedAccess
from repro.hw.lfsr import GaloisLFSR, MAXIMAL_TAPS
from repro.hw.onehot import one_hot_decode, one_hot_encode
from repro.hw.remap import ProbingRemapper, ScramblingRemapper, StaticRemapper

__all__ = [
    "SaturatingCounter",
    "BankDecoder",
    "DecodedAccess",
    "GaloisLFSR",
    "MAXIMAL_TAPS",
    "one_hot_encode",
    "one_hot_decode",
    "ProbingRemapper",
    "ScramblingRemapper",
    "StaticRemapper",
]
