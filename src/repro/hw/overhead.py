"""Area/delay overhead estimates for the added hardware.

Section III argues the architecture is nearly free:

* the 1-hot encoder's longest combinational path "goes through a single
  logic gate corresponding to the binary encoding of the corresponding
  minterm";
* f() is a p-bit adder (probing) or p XOR gates (scrambling) plus a
  small counter/LFSR;
* Block Control holds M saturating counters of 5-6 bits.

This module turns those statements into numbers: gate-equivalent (GE)
counts and critical-path depths in gate delays, using textbook
building-block costs (a GE is one 2-input NAND; a full adder ~5 GE, a
flip-flop ~6 GE). With 45nm standard cells at ~1 µm²/GE the totals come
out at a few hundred µm² — noise next to a 16kB SRAM macro — which is
the quantitative form of the paper's overhead claim, and what the
``repro arch`` CLI and the ablation bench report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ArchitectureConfig
from repro.errors import ConfigurationError
from repro.utils.bitops import bits_required, is_power_of_two, log2_exact

#: Gate-equivalents of common building blocks.
GE_FULL_ADDER: float = 5.0
GE_FLIP_FLOP: float = 6.0
GE_XOR2: float = 2.5
GE_AND_PER_INPUT: float = 0.75
GE_MUX2: float = 2.0

#: Approximate area of one gate-equivalent in a 45nm standard-cell
#: library, µm².
AREA_PER_GE_UM2: float = 1.0


@dataclass(frozen=True)
class OverheadReport:
    """Gate-level cost of the dynamic-indexing additions.

    Attributes
    ----------
    encoder_ge, remap_ge, control_ge, selector_ge:
        Gate-equivalents of the 1-hot encoder, f() datapath, Block
        Control counters, and supply selector drivers.
    critical_path_gates:
        Added combinational depth on the cache access path (the remap
        plus the encoder).
    """

    encoder_ge: float
    remap_ge: float
    control_ge: float
    selector_ge: float
    critical_path_gates: int

    @property
    def total_ge(self) -> float:
        """Total gate-equivalents added."""
        return self.encoder_ge + self.remap_ge + self.control_ge + self.selector_ge

    @property
    def area_um2(self) -> float:
        """Approximate 45nm area of the additions."""
        return self.total_ge * AREA_PER_GE_UM2


def one_hot_encoder_cost(num_banks: int) -> tuple[float, int]:
    """(gate-equivalents, depth) of a p-to-M one-hot decoder.

    One AND gate (p inputs) per minterm — depth is a single gate, the
    paper's claim.
    """
    if not is_power_of_two(num_banks):
        raise ConfigurationError("num_banks must be a power of two")
    p_bits = log2_exact(num_banks)
    if p_bits == 0:
        return 0.0, 0
    gates = num_banks * GE_AND_PER_INPUT * max(1, p_bits)
    return gates, 1


def remap_cost(policy: str, p_bits: int, lfsr_width: int = 16) -> tuple[float, int]:
    """(gate-equivalents, depth) of the f() datapath.

    Probing: a p-bit ripple adder (depth p) plus a p-bit counter.
    Scrambling: p XOR gates (depth 1) plus the LFSR register.
    Static: nothing.
    """
    if p_bits < 0:
        raise ConfigurationError("p_bits must be non-negative")
    if policy == "static" or p_bits == 0:
        return 0.0, 0
    if policy == "probing":
        adder = p_bits * GE_FULL_ADDER
        counter = p_bits * GE_FLIP_FLOP + p_bits * GE_FULL_ADDER
        return adder + counter, p_bits
    if policy == "scrambling":
        xors = p_bits * GE_XOR2
        lfsr = lfsr_width * GE_FLIP_FLOP + 4 * GE_XOR2
        return xors + lfsr, 1
    raise ConfigurationError(f"unknown policy {policy!r}")


def block_control_cost(num_banks: int, breakeven: int) -> float:
    """Gate-equivalents of M saturating idle counters."""
    if num_banks < 1 or breakeven < 1:
        raise ConfigurationError("need at least one bank and breakeven >= 1")
    width = bits_required(breakeven)
    per_counter = width * (GE_FLIP_FLOP + GE_FULL_ADDER) + width * GE_AND_PER_INPUT
    return num_banks * per_counter


def selector_cost(num_banks: int) -> float:
    """Gate-equivalents of the per-bank supply-select drivers (modelled
    as a 2:1 power mux control per bank)."""
    return num_banks * 2 * GE_MUX2


def estimate_overhead(config: ArchitectureConfig) -> OverheadReport:
    """Full overhead report for a configured architecture."""
    p_bits = log2_exact(config.num_banks)
    encoder_ge, encoder_depth = one_hot_encoder_cost(config.num_banks)
    remap_ge, remap_depth = remap_cost(config.policy, p_bits)
    control_ge = block_control_cost(config.num_banks, config.breakeven())
    return OverheadReport(
        encoder_ge=encoder_ge,
        remap_ge=remap_ge,
        control_ge=control_ge,
        selector_ge=selector_cost(config.num_banks),
        critical_path_gates=encoder_depth + remap_depth,
    )
