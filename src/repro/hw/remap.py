"""Bank-remapping datapaths f() of Figure 3.

These are the *hardware-level* models of the two dynamic-indexing
implementations the paper proposes:

* :class:`ProbingRemapper` — Figure 3(a): a ``p``-bit adder whose second
  operand is a counter incremented by the ``update`` signal. All
  arithmetic is naturally modulo ``M = 2**p`` because the datapath is
  ``p`` bits wide.
* :class:`ScramblingRemapper` — Figure 3(b): a ``p``-bit XOR whose second
  operand is (the low bits of) an LFSR stepped by the ``update`` signal.
* :class:`StaticRemapper` — the degenerate f() of a conventional
  partitioned cache (no re-indexing); used for the paper's LT0 baseline.

The higher-level policy objects in :mod:`repro.indexing` wrap these
datapaths with update scheduling and bookkeeping; keeping the pure
combinational behaviour here lets the tests check bit-exactness against
the paper's worked Example 1.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.lfsr import GaloisLFSR
from repro.utils.bitops import mask


class StaticRemapper:
    """Identity mapping: bank address passes through unchanged."""

    def __init__(self, p_bits: int) -> None:
        if p_bits < 0:
            raise ConfigurationError("p_bits must be non-negative")
        self.p_bits = p_bits

    def map(self, bank: int) -> int:
        """Return the physical bank for logical ``bank`` (identity)."""
        self._check(bank)
        return bank

    def update(self) -> None:
        """The update signal is a no-op for a static mapping."""

    def _check(self, bank: int) -> None:
        if not 0 <= bank < (1 << self.p_bits):
            raise ConfigurationError(
                f"bank {bank} out of range for p={self.p_bits}"
            )


class ProbingRemapper(StaticRemapper):
    """Adder + counter datapath (Figure 3a).

    After ``R`` updates, logical bank ``i`` maps to physical bank
    ``(i + R) mod M`` — the paper's Example 1 behaviour. With an increment
    of 1 this is proven (in the paper's reference [7]) to distribute
    accesses perfectly uniformly once at least ``M`` updates have occurred.
    """

    def __init__(self, p_bits: int, increment: int = 1) -> None:
        super().__init__(p_bits)
        if increment <= 0:
            raise ConfigurationError("probing increment must be positive")
        self.increment = increment
        self.counter = 0

    def map(self, bank: int) -> int:
        """Return ``(bank + counter) mod M``."""
        self._check(bank)
        return (bank + self.counter) & mask(self.p_bits)

    def update(self) -> None:
        """Pulse the update signal: advance the offset counter."""
        self.counter = (self.counter + self.increment) & mask(self.p_bits)


class ScramblingRemapper(StaticRemapper):
    """XOR + LFSR datapath (Figure 3b).

    Every update steps the LFSR; the bank address is XORed with the low
    ``p`` bits of its state. The XOR keeps the mapping a bijection on the
    bank set for any scrambling word, so no two logical banks collide.
    """

    def __init__(self, p_bits: int, lfsr_width: int = 16, seed: int = 0xACE1) -> None:
        super().__init__(p_bits)
        if p_bits > 0 and lfsr_width < p_bits:
            raise ConfigurationError(
                f"LFSR width {lfsr_width} narrower than bank address {p_bits}"
            )
        self.lfsr = GaloisLFSR(lfsr_width, seed=seed) if p_bits > 0 else None
        self.word = 0

    def map(self, bank: int) -> int:
        """Return ``bank XOR scrambling_word``."""
        self._check(bank)
        return bank ^ self.word

    def update(self) -> None:
        """Pulse the update signal: step the LFSR and latch a new word."""
        if self.lfsr is not None:
            self.lfsr.step()
            self.word = self.lfsr.low_bits(self.p_bits)
