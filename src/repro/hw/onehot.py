"""One-hot encoding of bank addresses.

The decoder *D* of Figure 1(b) transforms the ``p`` MSBs of the cache
index into ``M = 2**p`` activation signals: bank 0 corresponds to the
M-bit encoding ``00...01`` and bank M-1 to ``10...00``. The paper notes
the longest combinational path through this encoder is a single gate per
minterm, hence negligible overhead.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.bitops import is_power_of_two


def one_hot_encode(bank: int, num_banks: int) -> int:
    """Return the one-hot activation word for ``bank`` among ``num_banks``.

    >>> bin(one_hot_encode(0, 4))
    '0b1'
    >>> bin(one_hot_encode(3, 4))
    '0b1000'
    """
    if not is_power_of_two(num_banks):
        raise ConfigurationError(f"num_banks must be a power of two, got {num_banks}")
    if not 0 <= bank < num_banks:
        raise ConfigurationError(f"bank {bank} out of range for {num_banks} banks")
    return 1 << bank

def one_hot_decode(word: int, num_banks: int) -> int:
    """Return the bank index encoded by the one-hot ``word``.

    Raises
    ------
    ConfigurationError
        If ``word`` is not a valid one-hot encoding for ``num_banks`` banks
        (zero, multiple bits set, or a bit beyond the bank count).

    >>> one_hot_decode(0b0100, 4)
    2
    """
    if not is_power_of_two(num_banks):
        raise ConfigurationError(f"num_banks must be a power of two, got {num_banks}")
    if word <= 0 or word & (word - 1):
        raise ConfigurationError(f"{bin(word)} is not a one-hot word")
    bank = word.bit_length() - 1
    if bank >= num_banks:
        raise ConfigurationError(
            f"one-hot word {bin(word)} selects bank {bank} but only "
            f"{num_banks} banks exist"
        )
    return bank
