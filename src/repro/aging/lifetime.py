"""Bank- and cache-level lifetime computation.

The cache simulator measures, for every physical bank, the fraction of
time spent in the drowsy state (``Psleep``). This module converts those
fractions into lifetimes:

* every *cell* in a bank shares the bank's sleep profile, so the bank's
  lifetime is the cell lifetime at (p0, Psleep_bank);
* the *cache* lifetime is the minimum over banks — the paper stresses
  that power is cumulative but **aging is a worst-case quantity**
  (Section V): the first bank to become unreliable kills the cache.

:class:`LinearizedLifetimeModel` exposes the closed-form relation implied
by the drift law — ``LT = base / (1 − η · Psleep)`` — which is useful for
quick analytical studies and is what the full LUT path reduces to for a
fixed p0.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.aging.lut import LifetimeLUT
from repro.errors import ModelError


@dataclass(frozen=True)
class LinearizedLifetimeModel:
    """Closed-form lifetime model ``LT(I) = base / (1 - eta * I)``.

    Attributes
    ----------
    base_lifetime_years:
        Lifetime of an always-on cell (the paper's 2.93 years).
    eta:
        Fraction of the aging rate suppressed while asleep (~0.75 for the
        calibrated drowsy state).
    """

    base_lifetime_years: float = 2.93
    eta: float = 0.75

    def __post_init__(self) -> None:
        if self.base_lifetime_years <= 0:
            raise ModelError("base lifetime must be positive")
        if not 0.0 <= self.eta <= 1.0:
            raise ModelError("eta must be in [0,1]")

    def lifetime_years(self, psleep: float) -> float:
        """Lifetime for a sleep fraction ``psleep``."""
        if not 0.0 <= psleep <= 1.0:
            raise ModelError(f"psleep must be in [0,1], got {psleep}")
        denom = 1.0 - self.eta * psleep
        if denom <= 0.0:
            return float("inf")
        return self.base_lifetime_years / denom

    def required_sleep(self, target_years: float) -> float:
        """Sleep fraction needed to reach ``target_years`` (inverse model)."""
        if target_years < self.base_lifetime_years:
            raise ModelError(
                "target below the base lifetime needs no sleep at all"
            )
        if self.eta == 0.0:
            raise ModelError("eta = 0: sleep does not extend lifetime")
        return min(1.0, (1.0 - self.base_lifetime_years / target_years) / self.eta)


@dataclass(frozen=True)
class CacheLifetimeReport:
    """Lifetime summary of a partitioned cache.

    Attributes
    ----------
    bank_lifetimes_years:
        Per-physical-bank lifetimes.
    cache_lifetime_years:
        ``min`` over banks (worst-case metric).
    limiting_bank:
        Index of the bank that dies first.
    """

    bank_lifetimes_years: tuple[float, ...]
    cache_lifetime_years: float
    limiting_bank: int


def bank_lifetimes_years(
    sleep_fractions: Sequence[float],
    lut: LifetimeLUT | None = None,
    p0: float = 0.5,
) -> list[float]:
    """Map per-bank sleep fractions to per-bank lifetimes via the LUT."""
    table = lut if lut is not None else LifetimeLUT.default()
    return [table.lifetime_years(p0, float(ps)) for ps in sleep_fractions]


def cache_lifetime_years(
    sleep_fractions: Sequence[float],
    lut: LifetimeLUT | None = None,
    p0: float = 0.5,
) -> CacheLifetimeReport:
    """Full lifetime report for a cache with the given per-bank sleep.

    Raises
    ------
    ModelError
        If no banks are given.
    """
    if len(sleep_fractions) == 0:
        raise ModelError("cache must have at least one bank")
    lifetimes = bank_lifetimes_years(sleep_fractions, lut=lut, p0=p0)
    worst = min(range(len(lifetimes)), key=lifetimes.__getitem__)
    return CacheLifetimeReport(
        bank_lifetimes_years=tuple(lifetimes),
        cache_lifetime_years=lifetimes[worst],
        limiting_bank=worst,
    )
