"""Square-law MOSFET models.

These play the role of the HSPICE device cards in the paper's
characterization framework. A long-channel square-law model is accurate
enough for *relative* SNM degradation studies — what matters for the
reproduction is how the butterfly eye shrinks as the pull-up threshold
voltages drift, not absolute currents.

All currents are normalized: the transconductance parameter ``k`` is in
arbitrary units, since SNM is a voltage-domain quantity and scales out
any common current factor.

All functions broadcast over their voltage arguments (gate and drain may
both be numpy arrays), so the butterfly solver can bisect hundreds of
bias points at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class MOSFETParams:
    """Square-law device parameters.

    Attributes
    ----------
    k:
        Transconductance factor (``µ·Cox·W/L``), arbitrary units.
    vth:
        Threshold voltage magnitude in volts (positive for both device
        types; the PMOS equations internally negate it).
    """

    k: float
    vth: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ModelError(f"transconductance must be positive, got {self.k}")
        if self.vth < 0:
            raise ModelError(f"threshold magnitude must be >= 0, got {self.vth}")

    def with_vth_shift(self, delta: float) -> "MOSFETParams":
        """Return a copy with the threshold magnitude increased by ``delta``.

        This is the "annotation" step of the paper's flow: NBTI-induced
        degradation is written back into the netlist as an increased
        |Vth| on the stressed device.
        """
        if delta < 0:
            raise ModelError("NBTI shifts threshold magnitude upward; delta < 0")
        return MOSFETParams(k=self.k, vth=self.vth + delta)


def nmos_current(
    params: MOSFETParams,
    vgs: np.ndarray | float,
    vds: np.ndarray | float,
) -> np.ndarray:
    """Drain current of an NMOS with source grounded.

    Square-law: cut-off for ``vgs <= vth``; triode for ``vds < vgs - vth``;
    saturation otherwise. Broadcasts over both arguments.
    """
    vgs_arr, vds_arr = np.broadcast_arrays(
        np.asarray(vgs, dtype=float), np.asarray(vds, dtype=float)
    )
    vov = np.clip(vgs_arr - params.vth, 0.0, None)
    vds_c = np.clip(vds_arr, 0.0, None)
    triode = params.k * (vov * vds_c - 0.5 * vds_c**2)
    sat = 0.5 * params.k * vov**2
    return np.where(vds_c < vov, triode, sat)


def pmos_current(
    params: MOSFETParams,
    vdd: float,
    vg: np.ndarray | float,
    vd: np.ndarray | float,
) -> np.ndarray:
    """Source-to-drain current of a PMOS with source tied to ``vdd``.

    Expressed with the same square-law equations via source-referred
    voltages: ``vsg = vdd - vg`` and ``vsd = vdd - vd``. Returns the
    current flowing *into* the output node (from the supply). Broadcasts
    over both voltage arguments.
    """
    vg_arr, vd_arr = np.broadcast_arrays(
        np.asarray(vg, dtype=float), np.asarray(vd, dtype=float)
    )
    vov = np.clip((vdd - vg_arr) - params.vth, 0.0, None)
    vsd = np.clip(vdd - vd_arr, 0.0, None)
    triode = params.k * (vov * vsd - 0.5 * vsd**2)
    sat = 0.5 * params.k * vov**2
    return np.where(vsd < vov, triode, sat)


def access_nmos_current(
    params: MOSFETParams,
    vbl: float,
    vnode: np.ndarray | float,
) -> np.ndarray:
    """Current injected into the storage node by the access transistor.

    During a read the bitline is precharged to ``vbl`` and the wordline is
    at the same potential; the access NMOS conducts from the bitline into
    the node whenever the node sits below ``vbl - vth``. With gate and
    drain both at ``vbl`` the device operates in saturation (``vds = vgs``
    exceeds ``vgs - vth`` for any positive threshold), source-referenced
    at the storage node.
    """
    vnode_arr = np.asarray(vnode, dtype=float)
    vov = np.clip(vbl - vnode_arr - params.vth, 0.0, None)
    return 0.5 * params.k * vov**2
