"""Temperature dependence of NBTI aging.

NBTI is thermally activated: the interface-trap generation rate follows
an Arrhenius law, so a hotter bank ages faster. The paper characterizes
at fixed PVT ("user-defined PVT operating conditions"); this module adds
the T axis so two effects can be studied:

* global operating temperature: how the lifetime tables shift between
  ambient and hot-spot conditions;
* *activity-driven* per-bank temperature: a bank that serves most of
  the accesses is also the hottest, which **compounds** the idleness
  imbalance the paper fights — and dynamic indexing balances both at
  once, since rotating the hot set also rotates the heat.

Model: the drift prefactor scales as ``exp(-Ea/kT)`` with an activation
energy of ~0.1 eV for the long-term drift component, referenced to the
characterization temperature (80°C, a typical embedded hot-spot spec).
With ``ΔVth = b(T)·(α·t)^n`` and a fixed critical shift, lifetime
scales as ``(b(Tref)/b(T)) ** (1/n)`` — the 1/n exponent makes
temperature a very strong lever, matching the experimentally observed
sensitivity of NBTI lifetimes to operating temperature.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.aging.nbti import NBTIModel
from repro.errors import ModelError

#: Boltzmann constant, eV/K.
BOLTZMANN_EV: float = 8.617333e-5

#: Characterization reference temperature (°C).
REFERENCE_CELSIUS: float = 80.0

#: Activation energy of the long-term NBTI drift prefactor (eV).
DEFAULT_ACTIVATION_EV: float = 0.08


def _kelvin(celsius: float) -> float:
    if celsius < -273.15:
        raise ModelError(f"temperature below absolute zero: {celsius}°C")
    return celsius + 273.15


@dataclass(frozen=True)
class ThermalModel:
    """Arrhenius scaling of the NBTI prefactor.

    Attributes
    ----------
    activation_ev:
        Activation energy of the drift prefactor, eV.
    reference_celsius:
        Temperature at which the base model was calibrated.
    """

    activation_ev: float = DEFAULT_ACTIVATION_EV
    reference_celsius: float = REFERENCE_CELSIUS

    def __post_init__(self) -> None:
        if self.activation_ev <= 0:
            raise ModelError("activation energy must be positive")
        _kelvin(self.reference_celsius)

    def prefactor_scale(self, celsius: float) -> float:
        """``b(T) / b(Tref)`` — the drift-rate multiplier at ``celsius``."""
        t = _kelvin(celsius)
        t_ref = _kelvin(self.reference_celsius)
        return float(
            np.exp(-(self.activation_ev / BOLTZMANN_EV) * (1.0 / t - 1.0 / t_ref))
        )

    def lifetime_scale(self, celsius: float, time_exponent: float = 1.0 / 6.0) -> float:
        """Lifetime multiplier at ``celsius`` relative to the reference.

        With ``ΔVth = b(T)·(α·t)^n`` and a fixed critical shift,
        ``t_life ∝ b(T)^(-1/n)``.
        """
        if not 0 < time_exponent < 1:
            raise ModelError("time exponent must lie in (0,1)")
        return self.prefactor_scale(celsius) ** (-1.0 / time_exponent)

    def at_temperature(self, model: NBTIModel, celsius: float) -> NBTIModel:
        """Return ``model`` re-scaled to operate at ``celsius``."""
        return model.with_prefactor(model.prefactor * self.prefactor_scale(celsius))


@dataclass(frozen=True)
class BankThermalProfile:
    """Activity-driven per-bank steady-state temperatures.

    A simple lumped model: each bank sits at
    ``ambient + rise_per_activity · utilization`` where utilization is
    the bank's share of busy (non-drowsy) time. This captures the
    first-order coupling the module docstring describes without a full
    floorplan thermal solver.
    """

    ambient_celsius: float = 45.0
    rise_per_activity: float = 35.0

    def __post_init__(self) -> None:
        _kelvin(self.ambient_celsius)
        if self.rise_per_activity < 0:
            raise ModelError("temperature rise must be non-negative")

    def bank_temperatures(self, sleep_fractions: Sequence[float]) -> np.ndarray:
        """Per-bank temperature from per-bank sleep fractions."""
        sleep = np.asarray(sleep_fractions, dtype=float)
        if sleep.size == 0:
            raise ModelError("need at least one bank")
        if sleep.min() < 0.0 or sleep.max() > 1.0:
            raise ModelError("sleep fractions must be in [0,1]")
        activity = 1.0 - sleep
        return self.ambient_celsius + self.rise_per_activity * activity


def thermal_bank_lifetimes(
    sleep_fractions: Sequence[float],
    base_lifetime_years: float = 2.93,
    eta: float = 0.75,
    thermal: ThermalModel | None = None,
    profile: BankThermalProfile | None = None,
    time_exponent: float = 1.0 / 6.0,
) -> np.ndarray:
    """Per-bank lifetimes with both sleep recovery and self-heating.

    Combines the linearized sleep law (LT = base / (1 - eta·I)) with the
    Arrhenius lifetime scale at each bank's activity-driven temperature.
    The reference temperature is assumed for a 50%-active bank, keeping
    the nominal tables comparable.
    """
    thermal = thermal if thermal is not None else ThermalModel()
    profile = profile if profile is not None else BankThermalProfile()
    sleep = np.asarray(sleep_fractions, dtype=float)
    temps = profile.bank_temperatures(sleep)
    reference_temp = profile.ambient_celsius + profile.rise_per_activity * 0.5
    lifetimes = np.empty_like(sleep)
    for i, (s, t) in enumerate(zip(sleep, temps)):
        sleep_term = base_lifetime_years / (1.0 - eta * float(s))
        scale = thermal.lifetime_scale(float(t), time_exponent) / thermal.lifetime_scale(
            reference_temp, time_exponent
        )
        lifetimes[i] = sleep_term * scale
    return lifetimes
