"""Lifetime lookup table — the interface between cell physics and the
cache simulator.

Section IV-A: *"the aging curves are profiled and the lifetime of the
cell calculated. The collected data are stored in a lookup table, which
is used by the cache simulator to estimate the aging of the cache banks,
and thus, of the entire cache."*

:class:`LifetimeLUT` tabulates lifetime over a (p0, Psleep) grid using a
:class:`~repro.aging.cell.CharacterizationFramework` and answers queries
with bilinear interpolation. Because characterizing the cell involves
butterfly-curve bisection, the default table is built once and memoised
per framework configuration.
"""

from __future__ import annotations

import numpy as np

from repro.aging.cell import CharacterizationFramework
from repro.errors import ModelError

_DEFAULT_LUT: "LifetimeLUT | None" = None


class LifetimeLUT:
    """Bilinear-interpolated (p0, Psleep) → lifetime-in-years table.

    Parameters
    ----------
    framework:
        Characterization framework used to fill the table.
    p0_points, psleep_points:
        Grid densities. Psleep is sampled more densely because the cache
        simulator queries it with measured sleep fractions; p0 is
        typically pinned at 0.5 for caches (data is value-balanced at the
        granularity of whole banks).

    Notes
    -----
    Lifetime diverges as (p0, Psleep) → stress-free corners; the table
    clips Psleep to ``psleep_max`` (default 0.9999) which corresponds to
    the paper's "virtually asleep all the time" banks.
    """

    def __init__(
        self,
        framework: CharacterizationFramework | None = None,
        p0_points: int = 11,
        psleep_points: int = 41,
        psleep_max: float = 0.9999,
    ) -> None:
        if p0_points < 2 or psleep_points < 2:
            raise ModelError("LUT needs at least a 2x2 grid")
        if not 0.0 < psleep_max < 1.0:
            raise ModelError("psleep_max must lie strictly inside (0, 1)")
        self.framework = framework if framework is not None else CharacterizationFramework()
        self.p0_grid = np.linspace(0.0, 1.0, p0_points)
        self.psleep_grid = np.linspace(0.0, psleep_max, psleep_points)
        self.table = self._build()

    def _build(self) -> np.ndarray:
        """Fill the grid.

        One butterfly bisection is needed per p0 value; the Psleep axis
        is then filled through the drift law's exact time-scaling (see
        :mod:`repro.aging.cell`).
        """
        fw = self.framework
        table = np.empty((self.p0_grid.size, self.psleep_grid.size))
        for i, p0 in enumerate(self.p0_grid):
            base = fw.lifetime_years(float(p0), 0.0)
            eta = fw.nbti.sleep_recovery_efficiency
            # Exact scaling: lifetime(psleep) = base / (1 - eta * psleep).
            table[i, :] = base / (1.0 - eta * self.psleep_grid)
        return table

    def lifetime_years(self, p0: float, psleep: float) -> float:
        """Interpolate the lifetime for the given stress profile."""
        if not 0.0 <= p0 <= 1.0:
            raise ModelError(f"p0 must be in [0,1], got {p0}")
        if not 0.0 <= psleep <= 1.0:
            raise ModelError(f"psleep must be in [0,1], got {psleep}")
        ps = min(psleep, float(self.psleep_grid[-1]))

        i = int(np.clip(np.searchsorted(self.p0_grid, p0) - 1, 0, self.p0_grid.size - 2))
        j = int(
            np.clip(np.searchsorted(self.psleep_grid, ps) - 1, 0, self.psleep_grid.size - 2)
        )
        x0, x1 = self.p0_grid[i], self.p0_grid[i + 1]
        y0, y1 = self.psleep_grid[j], self.psleep_grid[j + 1]
        tx = (p0 - x0) / (x1 - x0)
        ty = (ps - y0) / (y1 - y0)
        f00, f01 = self.table[i, j], self.table[i, j + 1]
        f10, f11 = self.table[i + 1, j], self.table[i + 1, j + 1]
        return float(
            f00 * (1 - tx) * (1 - ty)
            + f10 * tx * (1 - ty)
            + f01 * (1 - tx) * ty
            + f11 * tx * ty
        )

    def lifetime_years_batch(self, p0: float, psleep: np.ndarray) -> np.ndarray:
        """Vectorized lifetime query for many sleep fractions at one p0.

        Used by the fine-grain simulator, which needs one lifetime per
        cache *line*. Interpolates linearly along the Psleep axis of the
        row pair bracketing ``p0`` (same arithmetic as
        :meth:`lifetime_years`, batched).
        """
        if not 0.0 <= p0 <= 1.0:
            raise ModelError(f"p0 must be in [0,1], got {p0}")
        values = np.asarray(psleep, dtype=float)
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ModelError("psleep values must be in [0,1]")
        clipped = np.minimum(values, self.psleep_grid[-1])

        i = int(np.clip(np.searchsorted(self.p0_grid, p0) - 1, 0, self.p0_grid.size - 2))
        x0, x1 = self.p0_grid[i], self.p0_grid[i + 1]
        tx = (p0 - x0) / (x1 - x0)
        row = (1.0 - tx) * self.table[i, :] + tx * self.table[i + 1, :]
        return np.interp(clipped, self.psleep_grid, row)

    @classmethod
    def default(cls) -> "LifetimeLUT":
        """Return the memoised LUT for the default 45nm cell."""
        global _DEFAULT_LUT
        if _DEFAULT_LUT is None:
            _DEFAULT_LUT = cls()
        return _DEFAULT_LUT
