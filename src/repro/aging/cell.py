"""Two-phase cell characterization: pre-stress aging, post-stress SNM.

This module mirrors the paper's "dedicated SPICE-based characterization
framework which predicts, under user-defined PVT operating conditions,
the aging profile of a 6T-SRAM cell" (Section IV-A):

* the *pre-stress* phase evaluates the NBTI drift of each PMOS for a
  functional profile — the probability ``p0`` of storing a logic '0' and
  the idleness ``Psleep`` of the cell — using the model in
  :mod:`repro.aging.nbti` (standing in for the HSPICE built-in aging
  models);
* the drift is *annotated* onto the cell as increased |Vth| on the two
  pull-ups (standing in for the DC-controlled voltage sources on the
  gate terminals);
* the *post-stress* phase re-evaluates the read SNM with the butterfly
  solver of :mod:`repro.aging.snm`;
* the cell's **lifetime** is the time at which the read SNM has dropped
  by more than 20% from its time-zero value.

A key structural property makes lifetime evaluation cheap: for a fixed
``p0`` the two pull-up shifts keep a constant *ratio* over time (both
follow ``(α·t)^n`` with different α), so SNM depends on time only through
a single monotone scale. The framework therefore bisects over that scale
once per ``p0`` and converts sleep fractions analytically — this is exact
under the drift law, not an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aging.devices import MOSFETParams
from repro.aging.nbti import NBTIModel
from repro.aging.snm import HalfCell, read_snm
from repro.errors import CalibrationError, ModelError
from repro.utils.units import seconds_to_years, years_to_seconds

#: End-of-life criterion: read SNM degraded by 20% (Section IV-A).
SNM_FAILURE_FRACTION: float = 0.20


@dataclass(frozen=True)
class SRAMCellSpec:
    """Electrical description of the 6T cell.

    Default values model a 45nm high-density cell: the pull-down driver is
    roughly twice as strong as the access transistor (cell ratio ~2, for
    read stability), which is in turn stronger than the pull-up.
    """

    vdd: float = 1.1
    pull_up: MOSFETParams = field(default_factory=lambda: MOSFETParams(k=1.0, vth=0.32))
    pull_down: MOSFETParams = field(default_factory=lambda: MOSFETParams(k=2.6, vth=0.30))
    access: MOSFETParams = field(default_factory=lambda: MOSFETParams(k=1.3, vth=0.30))

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ModelError("vdd must be positive")

    def half_cells(
        self, delta_vth_a: float = 0.0, delta_vth_b: float = 0.0
    ) -> tuple[HalfCell, HalfCell]:
        """Return the two half-cells with annotated pull-up degradation.

        ``delta_vth_a`` degrades the PMOS driving node Q (stressed while
        the cell stores '1', i.e. Q=1 keeps QB=0 on its gate);
        ``delta_vth_b`` degrades the PMOS driving node QB (stressed while
        the cell stores '0').
        """
        half_a = HalfCell(
            pull_up=self.pull_up.with_vth_shift(delta_vth_a),
            pull_down=self.pull_down,
            access=self.access,
        )
        half_b = HalfCell(
            pull_up=self.pull_up.with_vth_shift(delta_vth_b),
            pull_down=self.pull_down,
            access=self.access,
        )
        return half_a, half_b


@dataclass(frozen=True)
class CellAgingCurve:
    """A sampled SNM-vs-time aging profile for one stress profile."""

    times_years: np.ndarray
    snm_volts: np.ndarray
    snm_fresh: float
    lifetime_years: float


class CharacterizationFramework:
    """Predict SNM degradation and lifetime of a 6T cell.

    Parameters
    ----------
    cell:
        Electrical cell description.
    nbti:
        Drift model. If ``calibrate_to_years`` is given the prefactor is
        re-fitted so the balanced, always-on cell (p0=0.5, Psleep=0)
        lives exactly that long.
    snm_samples:
        Butterfly sampling density.
    """

    def __init__(
        self,
        cell: SRAMCellSpec | None = None,
        nbti: NBTIModel | None = None,
        *,
        calibrate_to_years: float | None = 2.93,
        snm_samples: int = 161,
    ) -> None:
        self.cell = cell if cell is not None else SRAMCellSpec()
        self.snm_samples = snm_samples
        self.nbti = nbti if nbti is not None else NBTIModel()
        self._snm_fresh = self.snm(0.0, 0.0)
        if self._snm_fresh <= 0:
            raise ModelError(
                "fresh cell has zero read SNM; check cell sizing (cell ratio)"
            )
        if calibrate_to_years is not None:
            self.calibrate(calibrate_to_years)

    # ------------------------------------------------------------------
    # Post-stress phase
    # ------------------------------------------------------------------
    @property
    def snm_fresh(self) -> float:
        """Read SNM of the un-degraded cell, volts."""
        return self._snm_fresh

    @property
    def snm_failure_threshold(self) -> float:
        """SNM value below which the cell is considered dead."""
        return (1.0 - SNM_FAILURE_FRACTION) * self._snm_fresh

    def snm(self, delta_vth_a: float, delta_vth_b: float) -> float:
        """Read SNM with the given pull-up degradations annotated."""
        half_a, half_b = self.cell.half_cells(delta_vth_a, delta_vth_b)
        return read_snm(half_a, half_b, self.cell.vdd, samples=self.snm_samples)

    # ------------------------------------------------------------------
    # Pre-stress phase
    # ------------------------------------------------------------------
    def device_duties(self, p0: float) -> tuple[float, float]:
        """Stress duties of the two pull-ups for a '0'-probability ``p0``.

        The PMOS driving Q has QB on its gate and is stressed while the
        cell stores '1' (duty ``1 - p0``); the PMOS driving QB is
        stressed while it stores '0' (duty ``p0``). Best case is p0=0.5
        where both degrade equally (Kumar et al., ISQED'06).
        """
        if not 0.0 <= p0 <= 1.0:
            raise ModelError(f"p0 must be in [0,1], got {p0}")
        return 1.0 - p0, p0

    def snm_at(self, t_years: float, p0: float = 0.5, psleep: float = 0.0) -> float:
        """Read SNM after ``t_years`` of operation under the given profile."""
        duty_a, duty_b = self.device_duties(p0)
        t = years_to_seconds(t_years)
        shift_a = self.nbti.delta_vth(t, duty_a, psleep)
        shift_b = self.nbti.delta_vth(t, duty_b, psleep)
        return self.snm(float(shift_a), float(shift_b))

    def aging_curve(
        self,
        p0: float = 0.5,
        psleep: float = 0.0,
        horizon_years: float = 12.0,
        points: int = 25,
    ) -> CellAgingCurve:
        """Sample SNM(t) and report the lifetime for one stress profile."""
        times = np.linspace(0.0, horizon_years, points)
        snms = np.array([self.snm_at(float(t), p0, psleep) for t in times])
        return CellAgingCurve(
            times_years=times,
            snm_volts=snms,
            snm_fresh=self._snm_fresh,
            lifetime_years=self.lifetime_years(p0, psleep),
        )

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def critical_shift(self, p0: float = 0.5) -> tuple[float, float]:
        """Pull-up shifts (ΔVth_a, ΔVth_b) at which the SNM hits −20%.

        Because both devices follow ``(α·t)^n``, their shifts stay in the
        fixed ratio ``(duty_a/duty_b)^n``; this bisects the common scale.
        """
        duty_a, duty_b = self.device_duties(p0)
        n = self.nbti.time_exponent
        ratio_a = duty_a**n
        ratio_b = duty_b**n
        norm = max(ratio_a, ratio_b)
        if norm == 0.0:
            raise ModelError("both devices unstressed; lifetime is infinite")
        ratio_a /= norm
        ratio_b /= norm
        target = self.snm_failure_threshold

        # Bracket the failing scale.
        hi = 0.05
        while self.snm(hi * ratio_a, hi * ratio_b) > target:
            hi *= 2.0
            if hi > self.cell.vdd:
                raise CalibrationError(
                    "SNM never degrades to the failure threshold; "
                    "cell model is insensitive to pull-up Vth"
                )
        lo = 0.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.snm(mid * ratio_a, mid * ratio_b) > target:
                lo = mid
            else:
                hi = mid
        scale = 0.5 * (lo + hi)
        return scale * ratio_a, scale * ratio_b

    def lifetime_years(self, p0: float = 0.5, psleep: float = 0.0) -> float:
        """Years until the read SNM has degraded by 20%.

        Exploits the exact time-scaling property described in the module
        docstring: the failing shift of the *more stressed* device is
        found once, then inverted through the drift law with the sleep
        factor applied.
        """
        duty_a, duty_b = self.device_duties(p0)
        shift_a, shift_b = self.critical_shift(p0)
        # Invert through the dominant (more stressed) device — both give
        # the same answer since the shifts share the same time scale.
        if duty_b >= duty_a:
            seconds = self.nbti.time_to_reach(shift_b, duty_b, psleep)
        else:
            seconds = self.nbti.time_to_reach(shift_a, duty_a, psleep)
        return seconds_to_years(seconds)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def calibrate(self, target_years: float, p0: float = 0.5) -> None:
        """Fit the NBTI prefactor so lifetime(p0, sleep=0) == target.

        The paper's reference: "the lifetime of a standard memory cell is
        2.93 years" in the ST 45nm technology.
        """
        duty_a, duty_b = self.device_duties(p0)
        shift_a, shift_b = self.critical_shift(p0)
        if duty_b >= duty_a:
            self.nbti = self.nbti.calibrated_prefactor(shift_b, target_years, duty_b)
        else:
            self.nbti = self.nbti.calibrated_prefactor(shift_a, target_years, duty_a)
        achieved = self.lifetime_years(p0, 0.0)
        if abs(achieved - target_years) > 1e-6 * target_years:
            raise CalibrationError(
                f"calibration failed: achieved {achieved} vs target {target_years}"
            )
