"""Content-flipping mitigation baselines (related work, Section II-B).

Two of the paper's cited alternatives attack the *value* axis instead of
the *idleness* axis:

* Kumar et al. [11] periodically invert the entire memory content so
  each pull-up is stressed ~50% of the time;
* Kunitake et al. [15] flip at word granularity every few thousand
  cycles using a per-word flip bit.

Both drive the effective '0'-probability toward 0.5 — the best case for
a symmetric cell — but do nothing about idleness, so their benefit is
bounded and *independent* of the partitioning/indexing machinery (the
two compose). This module models the schemes well enough to compare
them against (and combine them with) the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aging.cell import CharacterizationFramework
from repro.errors import ModelError


@dataclass(frozen=True)
class FlipScheme:
    """A periodic content-inversion scheme.

    Attributes
    ----------
    flip_fraction:
        Fraction of time the stored content is inverted. 0.5 models an
        ideal scheme (half the lifetime spent inverted); word-level
        schemes with fast flip periods get arbitrarily close to it.
    """

    flip_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_fraction <= 1.0:
            raise ModelError("flip_fraction must be in [0,1]")

    def effective_p0(self, content_p0: float) -> float:
        """Effective '0'-probability under flipping.

        While inverted, a stored 0 stresses the complementary pull-up:
        ``p0_eff = (1-f)·p0 + f·(1-p0)``. At f = 0.5 the duty is exactly
        balanced regardless of the content statistics.
        """
        if not 0.0 <= content_p0 <= 1.0:
            raise ModelError("content p0 must be in [0,1]")
        f = self.flip_fraction
        return (1.0 - f) * content_p0 + f * (1.0 - content_p0)


def flip_lifetime_years(
    framework: CharacterizationFramework,
    content_p0: float,
    scheme: FlipScheme | None = None,
    psleep: float = 0.0,
) -> float:
    """Cell lifetime under a flip scheme (optionally combined with sleep)."""
    scheme = scheme if scheme is not None else FlipScheme()
    return framework.lifetime_years(scheme.effective_p0(content_p0), psleep)


def flip_gain(
    framework: CharacterizationFramework,
    content_p0: float,
    scheme: FlipScheme | None = None,
) -> float:
    """Lifetime ratio of flipped vs unflipped for given content statistics.

    Equals 1.0 for already-balanced content (p0 = 0.5): flipping buys
    nothing — which is why the idleness lever matters for caches, whose
    bank-level content statistics are close to balanced.
    """
    base = framework.lifetime_years(content_p0, 0.0)
    flipped = flip_lifetime_years(framework, content_p0, scheme)
    return flipped / base
