"""Process variation on top of NBTI aging.

The paper's lifetime numbers are for a nominal cell; real arrays carry
random Vth variation (the paper's reference [1], Alam, is explicitly
about *reliability- and process-variation aware* design). A cell whose
pull-ups start with a higher |Vth| begins life closer to the SNM failure
threshold and dies sooner; a bank's lifetime is its *weakest* cell's.

:class:`VariationModel` layers this on the characterization framework:

1. characterize once how the critical NBTI shift shrinks as the initial
   pull-up Vth offset grows (a small grid of butterfly evaluations,
   interpolated);
2. convert an offset sample into a lifetime scale factor via the drift
   law (lifetime ∝ critical_shift ** (1/n));
3. Monte-Carlo the minimum over N cells to get bank/cache lifetime
   distributions and yield-style percentiles.

This quantifies a real limit of the paper's headline: with variation,
idleness balancing still buys the same *relative* improvement, but the
absolute lifetimes drop with array size (min over more cells).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aging.cell import CharacterizationFramework
from repro.errors import ModelError


@dataclass(frozen=True)
class LifetimeDistribution:
    """Summary of a Monte-Carlo lifetime population (years)."""

    samples: np.ndarray

    @property
    def mean(self) -> float:
        """Mean lifetime."""
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        """Standard deviation."""
        return float(self.samples.std())

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100])."""
        return float(np.percentile(self.samples, q))

    @property
    def yield_lifetime(self) -> float:
        """The 1st-percentile lifetime — a 99%-yield design point."""
        return self.percentile(1.0)


class VariationModel:
    """Monte-Carlo lifetime under random pull-up Vth variation.

    Parameters
    ----------
    framework:
        Calibrated characterization framework (nominal cell).
    sigma_vth:
        Standard deviation of the per-cell pull-up Vth offset, volts
        (each cell draws one offset applied to both pull-ups — the
        within-cell mismatch component is second-order for lifetime).
        The default 10 mV models the cell-to-cell systematic component;
        because lifetime goes as the 6th power of the remaining SNM
        margin, even this modest sigma dominates the weak tail of large
        arrays — the relative gains of idleness balancing survive, but
        absolute lifetimes drop with array size.
    offset_grid_points:
        Resolution of the offset → critical-shift characterization.
    """

    def __init__(
        self,
        framework: CharacterizationFramework | None = None,
        sigma_vth: float = 0.01,
        offset_grid_points: int = 7,
    ) -> None:
        if sigma_vth < 0:
            raise ModelError("sigma_vth must be non-negative")
        if offset_grid_points < 3:
            raise ModelError("need at least 3 offset grid points")
        self.framework = framework if framework is not None else CharacterizationFramework()
        self.sigma_vth = sigma_vth
        self._offsets, self._scales = self._characterize(offset_grid_points)

    # ------------------------------------------------------------------
    def _characterize(self, points: int) -> tuple[np.ndarray, np.ndarray]:
        """Tabulate lifetime scale factor vs initial Vth offset.

        For an offset ``d`` the failure criterion is still -20% of the
        *nominal fresh* SNM (the array is screened against the nominal
        spec), so a degraded-at-birth cell has less margin to burn:
        critical_shift(d) < critical_shift(0). The lifetime scales as
        ``(crit(d)/crit(0)) ** (1/n)`` through the drift law.
        """
        fw = self.framework
        span = max(4.0 * self.sigma_vth, 0.04)
        offsets = np.linspace(0.0, span, points)
        target = fw.snm_failure_threshold

        crits = []
        for offset in offsets:
            # Bisect the additional NBTI shift that kills a cell whose
            # pull-ups start at vth + offset.
            lo, hi = 0.0, 1.0
            if fw.snm(offset, offset) <= target:
                crits.append(0.0)
                continue
            for _ in range(40):
                mid = 0.5 * (lo + hi)
                if fw.snm(offset + mid, offset + mid) > target:
                    lo = mid
                else:
                    hi = mid
            crits.append(0.5 * (lo + hi))
        crits_arr = np.asarray(crits)
        reference = crits_arr[0]
        if reference <= 0:
            raise ModelError("nominal cell fails at time zero")
        exponent = 1.0 / self.framework.nbti.time_exponent
        scales = (crits_arr / reference) ** exponent
        return offsets, scales

    def lifetime_scale(self, offset: np.ndarray | float) -> np.ndarray:
        """Lifetime scale factor(s) for initial Vth offset(s), volts.

        Negative offsets (stronger-than-nominal pull-ups) are clamped to
        the nominal scale of 1.0 — a conservative choice that keeps the
        population min dominated by the weak tail.
        """
        values = np.clip(np.asarray(offset, dtype=float), 0.0, self._offsets[-1])
        return np.interp(values, self._offsets, self._scales)

    # ------------------------------------------------------------------
    def cell_lifetimes(
        self,
        count: int,
        psleep: float,
        rng: np.random.Generator,
        p0: float = 0.5,
    ) -> np.ndarray:
        """Sample ``count`` cell lifetimes (years) at a sleep fraction."""
        if count < 1:
            raise ModelError("need at least one cell")
        nominal = self.framework.lifetime_years(p0, psleep)
        offsets = rng.normal(0.0, self.sigma_vth, size=count)
        return nominal * self.lifetime_scale(offsets)

    def bank_lifetime_distribution(
        self,
        cells_per_bank: int,
        psleep: float,
        samples: int = 200,
        seed: int = 2011,
        p0: float = 0.5,
    ) -> LifetimeDistribution:
        """Monte-Carlo the lifetime of a bank (min over its cells)."""
        if samples < 1:
            raise ModelError("need at least one Monte-Carlo sample")
        rng = np.random.default_rng(seed)
        nominal = self.framework.lifetime_years(p0, psleep)
        minima = np.empty(samples)
        for i in range(samples):
            offsets = rng.normal(0.0, self.sigma_vth, size=cells_per_bank)
            minima[i] = nominal * float(self.lifetime_scale(offsets).min())
        return LifetimeDistribution(samples=minima)

    def cache_lifetime_distribution(
        self,
        sleep_fractions,
        cells_per_bank: int,
        samples: int = 200,
        seed: int = 2011,
    ) -> LifetimeDistribution:
        """Monte-Carlo the cache lifetime: min over banks of min over cells."""
        rng = np.random.default_rng(seed)
        nominals = [
            self.framework.lifetime_years(0.5, float(ps)) for ps in sleep_fractions
        ]
        minima = np.empty(samples)
        for i in range(samples):
            worst = np.inf
            for nominal in nominals:
                offsets = rng.normal(0.0, self.sigma_vth, size=cells_per_bank)
                worst = min(worst, nominal * float(self.lifetime_scale(offsets).min()))
            minima[i] = worst
        return LifetimeDistribution(samples=minima)
