"""Long-term NBTI threshold-voltage drift model.

We use the standard long-term form of the reaction–diffusion model
(Vattikonda et al., DAC'06; Wang et al.): under a stress duty factor
``α`` (the fraction of time the PMOS gate sees a logic '0'), the
threshold shift after time ``t`` is

    ΔVth(t) = b · (α_eff · t)^n ,      n = 1/6,

where ``b`` lumps technology and temperature dependence and ``α_eff``
accounts for the *reduced but non-zero* stress experienced while the
cell sits at the drowsy retention voltage: lowering Vdd lowers |Vgs| on
the stressed PMOS, shrinking the oxide field. We model the drowsy
stress rate as a fraction ``γ`` of the active-state rate:

    γ = ((vdd_low − vth_p) / (vdd − vth_p)) ** field_exponent,

so a bank asleep for a fraction ``Psleep`` of the time ages at

    α_eff = α · (1 − Psleep · (1 − γ)).

Calibration (see :meth:`NBTIModel.calibrated`):

* ``b`` is fitted so a cell with balanced content (p0 = 0.5) and no sleep
  reaches its end of life (read SNM −20%) after exactly the paper's
  reference lifetime of 2.93 years in the ST 45nm technology;
* ``field_exponent`` is fitted so that γ ≈ 0.25, i.e. the drowsy state
  suppresses ~75% of the aging rate. This value makes the model's
  lifetime-vs-idleness relation match the paper's measurements: e.g.
  Table IV's 32kB / 8-bank entry (idleness 68%) gives
  2.93 / (1 − 0.75·0.68) = 5.98 years, the paper's exact value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ModelError
from repro.utils.units import years_to_seconds

#: Reaction-diffusion time exponent for H2 diffusion.
DEFAULT_TIME_EXPONENT: float = 1.0 / 6.0


@dataclass(frozen=True)
class NBTIModel:
    """Parameters of the long-term NBTI drift law.

    Attributes
    ----------
    prefactor:
        ``b`` in volts per second**n. Set by calibration.
    time_exponent:
        ``n``; 1/6 for the standard RD model.
    vdd:
        Nominal supply voltage (active state), volts.
    vdd_low:
        Drowsy retention voltage, volts (must preserve state, so it stays
        above the retention limit; the paper adopts voltage scaling
        because memory-compiler blocks cannot be power-gated internally).
    vth_p:
        PMOS threshold magnitude, volts.
    field_exponent:
        Exponent translating the oxide-field reduction into a stress-rate
        reduction.
    """

    prefactor: float = 2.5e-3
    time_exponent: float = DEFAULT_TIME_EXPONENT
    vdd: float = 1.1
    vdd_low: float = 0.66
    vth_p: float = 0.32
    field_exponent: float = 1.67

    def __post_init__(self) -> None:
        if self.prefactor <= 0:
            raise ModelError("NBTI prefactor must be positive")
        if not 0 < self.time_exponent < 1:
            raise ModelError("time exponent must lie in (0, 1)")
        if self.vdd_low <= self.vth_p:
            raise ModelError(
                "vdd_low must stay above |Vth,p| for the drowsy state to "
                "preserve cell contents"
            )
        if self.vdd <= self.vdd_low:
            raise ModelError("vdd must exceed vdd_low")

    @property
    def sleep_stress_factor(self) -> float:
        """γ — ratio of drowsy-state to active-state aging rate (0..1)."""
        ratio = (self.vdd_low - self.vth_p) / (self.vdd - self.vth_p)
        return float(ratio**self.field_exponent)

    @property
    def sleep_recovery_efficiency(self) -> float:
        """η = 1 − γ — fraction of aging suppressed while asleep."""
        return 1.0 - self.sleep_stress_factor

    def effective_duty(self, stress_duty: float, psleep: float = 0.0) -> float:
        """Effective stress duty ``α_eff`` for a device.

        Parameters
        ----------
        stress_duty:
            Fraction of time the device's gate is at '0' (for a cell PMOS
            this is the probability of the corresponding stored value).
        psleep:
            Fraction of total time the cell spends in the drowsy state.
        """
        if not 0.0 <= stress_duty <= 1.0:
            raise ModelError(f"stress duty must be in [0,1], got {stress_duty}")
        if not 0.0 <= psleep <= 1.0:
            raise ModelError(f"psleep must be in [0,1], got {psleep}")
        return stress_duty * (1.0 - psleep * self.sleep_recovery_efficiency)

    def delta_vth(
        self,
        t_seconds: np.ndarray | float,
        stress_duty: float,
        psleep: float = 0.0,
    ) -> np.ndarray | float:
        """Threshold shift (volts) after ``t_seconds`` of operation."""
        t = np.asarray(t_seconds, dtype=float)
        if np.any(t < 0):
            raise ModelError("time must be non-negative")
        alpha = self.effective_duty(stress_duty, psleep)
        result = self.prefactor * (alpha * t) ** self.time_exponent
        return float(result) if np.isscalar(t_seconds) else result

    def time_to_reach(self, delta_vth_volts: float, stress_duty: float, psleep: float = 0.0) -> float:
        """Invert the drift law: seconds until ``ΔVth`` reaches the target.

        Returns ``inf`` when the effective stress is zero.
        """
        if delta_vth_volts < 0:
            raise ModelError("target shift must be non-negative")
        alpha = self.effective_duty(stress_duty, psleep)
        if alpha == 0.0:
            return float("inf")
        return (delta_vth_volts / self.prefactor) ** (1.0 / self.time_exponent) / alpha

    def with_prefactor(self, prefactor: float) -> "NBTIModel":
        """Return a copy with a different prefactor (calibration helper)."""
        return replace(self, prefactor=prefactor)

    def calibrated_prefactor(
        self,
        critical_delta_vth: float,
        target_lifetime_years: float,
        stress_duty: float = 0.5,
    ) -> "NBTIModel":
        """Fit ``b`` so ΔVth reaches ``critical_delta_vth`` at the target life.

        Used by the characterization framework to anchor the model to the
        paper's 2.93-year reference cell.
        """
        if critical_delta_vth <= 0:
            raise ModelError("critical ΔVth must be positive")
        if target_lifetime_years <= 0:
            raise ModelError("target lifetime must be positive")
        t = years_to_seconds(target_lifetime_years)
        alpha = self.effective_duty(stress_duty, 0.0)
        b = critical_delta_vth / ((alpha * t) ** self.time_exponent)
        return self.with_prefactor(b)
