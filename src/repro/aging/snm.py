"""Read static-noise-margin of a 6T SRAM cell via butterfly curves.

The paper (Section II-A and IV-A) uses the *read* SNM — the SNM with the
access transistors conducting, which is the worst case for NBTI-degraded
cells — as the aging metric: a cell is dead once its read SNM has dropped
by more than 20% from time zero.

This module computes the read SNM numerically:

1. For each half-cell (inverter + access transistor with the bitline held
   at Vdd), solve the voltage transfer curve by bisecting the node current
   balance — the net current into the output node is strictly decreasing
   in the node voltage, so bisection is robust. The bisection is
   vectorized over all input samples at once.
2. Form the butterfly plot from VTC A and the mirror of VTC B and find the
   largest square inscribed in each eye. Both boundaries are monotone
   non-increasing functions of the noise-plane abscissa, so the maximal
   square with its lower-left corner on the lower curve and upper-right
   corner on the upper curve can be found by a vectorized bisection on
   the square side. The SNM is the smaller of the two eyes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aging.devices import (
    MOSFETParams,
    access_nmos_current,
    nmos_current,
    pmos_current,
)
from repro.errors import ModelError


@dataclass(frozen=True)
class HalfCell:
    """One inverter of the cell plus its access transistor.

    ``pull_up`` is the PMOS (the NBTI victim), ``pull_down`` the driver
    NMOS, ``access`` the pass NMOS to the (precharged) bitline.
    """

    pull_up: MOSFETParams
    pull_down: MOSFETParams
    access: MOSFETParams


def _node_inflow(
    half: HalfCell, vdd: float, vin: np.ndarray, vout: np.ndarray
) -> np.ndarray:
    """Net current into the output node, element-wise over (vin, vout)."""
    up = pmos_current(half.pull_up, vdd, vin, vout)
    down = nmos_current(half.pull_down, vin, vout)
    acc = access_nmos_current(half.access, vdd, vout)
    return up + acc - down


def _read_vtc(half: HalfCell, vdd: float, vin: np.ndarray, iters: int = 60) -> np.ndarray:
    """Solve the read VTC: output node voltage for each input sample.

    The node equation is ``I_pullup + I_access = I_pulldown``; the inflow
    decreases monotonically with ``vout``, so a vectorized bisection over
    all ``vin`` samples converges unconditionally.
    """
    lo = np.zeros_like(vin)
    hi = np.full_like(vin, vdd)
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        inflow = _node_inflow(half, vdd, vin, mid)
        pull_up_wins = inflow > 0.0
        lo = np.where(pull_up_wins, mid, lo)
        hi = np.where(pull_up_wins, hi, mid)
    return 0.5 * (lo + hi)


def butterfly_curves(
    half_a: HalfCell,
    half_b: HalfCell,
    vdd: float,
    samples: int = 201,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(vin, vtc_a, vtc_b)`` for the two half-cells under read.

    ``vtc_a[i]`` is node Q when QB is forced to ``vin[i]``; ``vtc_b[i]``
    is node QB when Q is forced to ``vin[i]``.
    """
    if samples < 16:
        raise ModelError("butterfly sampling needs at least 16 points")
    if vdd <= 0:
        raise ModelError("vdd must be positive")
    vin = np.linspace(0.0, vdd, samples)
    vtc_a = _read_vtc(half_a, vdd, vin)
    vtc_b = _read_vtc(half_b, vdd, vin)
    return vin, vtc_a, vtc_b


def _mirror_as_function(vin: np.ndarray, vtc: np.ndarray, vdd: float):
    """Return the mirrored curve ``y(x)`` of the VTC ``(vtc(t), t)``.

    The mirrored curve maps abscissa ``x`` (the VTC's *output* voltage) to
    the input ``t`` that produced it. The VTC output is non-increasing in
    ``t``, so reversing gives the increasing grid :func:`numpy.interp`
    needs. Outside the attainable output range the curve is clamped, which
    only ever shrinks candidate squares (never inflates the SNM).
    """
    x_grid = vtc[::-1]
    y_grid = vin[::-1]
    # Guard against tiny non-monotonicity from bisection tolerance.
    x_grid = np.maximum.accumulate(x_grid)

    def func(x: np.ndarray) -> np.ndarray:
        return np.interp(x, x_grid, y_grid, left=vdd, right=0.0)

    return func


def _max_square_between(
    lower,
    upper,
    vdd: float,
    samples: int = 201,
    iters: int = 40,
) -> float:
    """Side of the largest axis-aligned square between two monotone curves.

    ``lower`` and ``upper`` are callables mapping abscissa arrays to
    ordinates; both are non-increasing. A square of side ``s`` anchored at
    abscissa ``x`` fits iff ``upper(x + s) - lower(x) >= s`` — its
    lower-left corner sits on the lower curve and its upper-right corner
    below/on the upper curve. For fixed ``x`` the residual is decreasing
    in ``s``, so a vectorized bisection over the anchor grid finds the
    maximal side.
    """
    x = np.linspace(0.0, vdd, samples)
    base = lower(x)
    lo = np.zeros_like(x)
    hi = np.full_like(x, vdd)
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        fits = upper(x + mid) - base >= mid
        lo = np.where(fits, mid, lo)
        hi = np.where(fits, hi, mid)
    return float(np.max(lo))


def read_snm(
    half_a: HalfCell,
    half_b: HalfCell,
    vdd: float,
    samples: int = 201,
) -> float:
    """Read static noise margin of the cell, in volts.

    The butterfly is formed in the (QB, Q) plane by VTC A as
    ``(vin, vtc_a)`` and VTC B mirrored as ``(vtc_b, vin)``. The SNM is
    the side of the largest square inscribed in the *smaller* of the two
    eyes (both noise polarities must be survived simultaneously).

    Returns 0.0 when the eyes have collapsed (cell no longer bistable
    under read).
    """
    vin, vtc_a, vtc_b = butterfly_curves(half_a, half_b, vdd, samples=samples)

    def curve_a(x: np.ndarray) -> np.ndarray:
        return np.interp(x, vin, vtc_a)

    curve_b_mirrored = _mirror_as_function(vin, vtc_b, vdd)

    # Eye 1: VTC A is the upper boundary, mirrored VTC B the lower one.
    lobe1 = _max_square_between(curve_b_mirrored, curve_a, vdd, samples=samples)
    # Eye 2: roles swapped.
    lobe2 = _max_square_between(curve_a, curve_b_mirrored, vdd, samples=samples)
    return max(0.0, min(lobe1, lobe2))
