"""NBTI aging substrate.

This package replaces the paper's SPICE-based characterization framework
(Section IV-A) with an equivalent analytical flow:

1. :mod:`repro.aging.devices` — square-law MOSFET models (the level-1
   equivalent of the HSPICE device cards).
2. :mod:`repro.aging.snm` — numerical read static-noise-margin evaluation
   of a 6T cell via butterfly curves and the maximal inscribed square
   (Seevinck's construction).
3. :mod:`repro.aging.nbti` — the long-term reaction–diffusion NBTI model
   (threshold-voltage drift ``ΔVth = b·(α·t)^n``) including the reduced
   stress experienced in the drowsy (voltage-scaled) state.
4. :mod:`repro.aging.cell` — the two-phase *pre-stress / post-stress*
   characterization of a cell, mirroring the paper's flow: compute device
   degradation for a stress profile, annotate the cell, re-evaluate SNM,
   and report the lifetime (time until read SNM degrades by 20%).
5. :mod:`repro.aging.lut` — the (p0, Psleep) → lifetime lookup table the
   cache simulator consumes, exactly as in the paper.
6. :mod:`repro.aging.lifetime` — bank- and cache-level lifetime
   computation (cache lifetime is the *worst* bank's lifetime).

Calibration: the NBTI prefactor is fitted so an always-on cell storing
0/1 with equal probability lives 2.93 years (the paper's reference cell
lifetime in the ST 45nm technology), and the drowsy stress-reduction
factor is fitted so sleep suppresses ~75% of the aging rate, which
reproduces the paper's measured lifetime/idleness relation.
"""

from repro.aging.cell import CellAgingCurve, CharacterizationFramework, SRAMCellSpec
from repro.aging.devices import MOSFETParams, nmos_current, pmos_current
from repro.aging.lifetime import (
    CacheLifetimeReport,
    LinearizedLifetimeModel,
    bank_lifetimes_years,
    cache_lifetime_years,
)
from repro.aging.lut import LifetimeLUT
from repro.aging.nbti import NBTIModel
from repro.aging.snm import butterfly_curves, read_snm

__all__ = [
    "SRAMCellSpec",
    "CharacterizationFramework",
    "CellAgingCurve",
    "MOSFETParams",
    "nmos_current",
    "pmos_current",
    "NBTIModel",
    "read_snm",
    "butterfly_curves",
    "LifetimeLUT",
    "LinearizedLifetimeModel",
    "bank_lifetimes_years",
    "cache_lifetime_years",
    "CacheLifetimeReport",
]
