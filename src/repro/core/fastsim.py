"""Vectorized simulation engine.

Produces bit-identical results to :class:`repro.core.simulator.ReferenceSimulator`
(the test suite enforces exact agreement on hits, misses, flushes,
per-bank access counts, sleep cycles and energy) while processing whole
re-indexing epochs with numpy:

* routing: the logical→physical permutation is constant within an
  epoch, so ``physical = mapping[logical]`` is a single ``take``;
* idleness: the sleep rule only looks at per-bank access-cycle gaps,
  and banks sleep straight through mapping changes, so per-bank stats
  come from one :func:`~repro.power.idleness.stats_from_access_cycles`
  call per bank over the whole run;
* hits/misses: within an epoch the mapping is a bijection, so the
  physical line of an access is identified by its logical index; sorting
  accesses by (index, time) makes each access adjacent to its
  predecessor on the same line, turning tag comparison into one
  vectorized equality. Epochs start cold (the update flushed).
"""

from __future__ import annotations

import numpy as np

from repro.cache.stats import CacheStats
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.core.simulator import _effective_breakeven, _finish
from repro.aging.lut import LifetimeLUT
from repro.power.idleness import stats_from_access_cycles
from repro.trace.trace import Trace
from repro.utils.bitops import log2_exact, mask


class FastSimulator:
    """Vectorized trace-driven simulator (same contract as the reference).

    Parameters
    ----------
    config:
        Architecture to simulate.
    lut:
        Lifetime lookup table; defaults to the shared calibrated one.
    """

    def __init__(self, config: ArchitectureConfig, lut: LifetimeLUT | None = None) -> None:
        self.config = config
        self.lut = lut

    # ------------------------------------------------------------------
    def _epoch_boundaries(self, trace: Trace) -> np.ndarray:
        """Update cycles that actually fire during the trace.

        The reference engine drains due updates lazily, right before the
        first access at or after each boundary; boundaries after the
        last access never fire. The returned array contains the firing
        boundaries in order.
        """
        schedule = self.config.make_update_schedule()
        if len(trace) == 0:
            return np.empty(0, dtype=np.int64)
        return schedule.boundaries_up_to(int(trace.cycles[-1]))

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate ``trace`` and return the measurement record.

        Raises
        ------
        ConfigurationError
            For set-associative geometries: the vectorized tag
            comparison is direct-mapped only (LRU state is inherently
            sequential). Use :class:`ReferenceSimulator`, or
            :func:`repro.core.simulator.simulate`, which dispatches
            automatically.
        """
        config = self.config
        geometry = config.geometry
        if geometry.ways != 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "FastSimulator supports direct-mapped caches only; use "
                "ReferenceSimulator for set-associative geometries"
            )
        num_banks = config.num_banks
        p_bits = log2_exact(num_banks)
        line_bits = geometry.index_bits - p_bits

        cycles = trace.cycles
        index = (trace.addresses >> geometry.offset_bits) & mask(geometry.index_bits)
        tag = trace.addresses >> (geometry.offset_bits + geometry.index_bits)
        logical_bank = index >> line_bits

        boundaries = self._epoch_boundaries(trace)
        starts = np.concatenate(
            ([0], np.searchsorted(cycles, boundaries, side="left"), [len(trace)])
        )

        policy = config.make_policy()
        physical = np.empty(len(trace), dtype=np.int64)
        hits = 0
        misses = 0
        flush_invalidations = 0
        touched_before_flush = 0

        for epoch in range(len(starts) - 1):
            if epoch > 0:
                policy.update()
                flush_invalidations += touched_before_flush
            lo, hi = int(starts[epoch]), int(starts[epoch + 1])
            if lo == hi:
                touched_before_flush = 0
                continue
            mapping = policy.mapping()
            physical[lo:hi] = mapping[logical_bank[lo:hi]]
            epoch_hits, epoch_lines = self._epoch_hits(index[lo:hi], tag[lo:hi])
            hits += epoch_hits
            misses += (hi - lo) - epoch_hits
            touched_before_flush = epoch_lines

        # Per-bank idleness over the whole run (sleep is oblivious to
        # mapping changes; only the physical access stream matters).
        breakeven = _effective_breakeven(config, trace.horizon)
        bank_stats = []
        order = np.argsort(physical[: len(trace)], kind="stable")
        sorted_banks = physical[order]
        sorted_cycles = cycles[order]
        splits = np.searchsorted(sorted_banks, np.arange(num_banks + 1))
        for bank in range(num_banks):
            bank_cycles = sorted_cycles[splits[bank] : splits[bank + 1]]
            bank_stats.append(
                stats_from_access_cycles(bank_cycles, breakeven, 0, trace.horizon)
            )

        cache_stats = CacheStats(hits=hits, misses=misses, flushes=len(boundaries))
        return _finish(
            config,
            trace,
            bank_stats,
            cache_stats,
            policy.updates_applied,
            flush_invalidations,
            self.lut,
        )

    @staticmethod
    def _epoch_hits(index: np.ndarray, tag: np.ndarray) -> tuple[int, int]:
        """Hits and distinct lines touched within one (cold-started) epoch.

        Sorting by (index, arrival) places every access next to the
        previous access of the same cache line; a hit is an access whose
        predecessor exists, is the same line, and carries the same tag
        (direct-mapped: any other tag evicted the line in between — but
        a *different* tag on the predecessor already means the line was
        re-allocated, so adjacent comparison is exact).
        """
        if index.size == 0:
            return 0, 0
        order = np.lexsort((np.arange(index.size), index))
        idx_sorted = index[order]
        tag_sorted = tag[order]
        same_line = idx_sorted[1:] == idx_sorted[:-1]
        same_tag = tag_sorted[1:] == tag_sorted[:-1]
        hits = int(np.count_nonzero(same_line & same_tag))
        distinct_lines = int(np.count_nonzero(~same_line)) + 1
        return hits, distinct_lines

