"""Vectorized simulation engine.

Produces bit-identical results to :class:`repro.core.simulator.ReferenceSimulator`
(the test suite enforces exact agreement on hits, misses, flushes,
per-bank access counts, sleep cycles and energy) while processing whole
re-indexing epochs with numpy:

* routing: the logical→physical permutation is constant within an
  epoch, so ``physical = mapping[logical]`` is a single ``take``;
* idleness: the sleep rule only looks at per-bank access-cycle gaps,
  and banks sleep straight through mapping changes, so per-bank stats
  come from one :func:`~repro.power.idleness.stats_from_access_cycles`
  call per bank over the whole run;
* hits/misses: within an epoch the mapping is a bijection on banks and
  the line-in-bank bits pass through unchanged, so the physical set of
  an access is identified by its logical set index; sorting accesses by
  (index, time) groups each set's accesses contiguously and in arrival
  order. Direct-mapped caches then reduce to one vectorized
  adjacent-tag comparison; set-associative caches run a lockstep LRU
  stack simulation over the set-groups (:meth:`FastSimulator._epoch_hits_lru`).
  Epochs start cold (the update flushed).
"""

from __future__ import annotations

import numpy as np

from repro.cache.stats import CacheStats
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.core.simulator import _effective_breakeven, _finish
from repro.aging.lut import LifetimeLUT
from repro.power.idleness import stats_from_access_cycles
from repro.trace.trace import Trace
from repro.utils.bitops import log2_exact, mask


class FastSimulator:
    """Vectorized trace-driven simulator (same contract as the reference).

    Parameters
    ----------
    config:
        Architecture to simulate.
    lut:
        Lifetime lookup table; defaults to the shared calibrated one.
    """

    def __init__(self, config: ArchitectureConfig, lut: LifetimeLUT | None = None) -> None:
        self.config = config
        self.lut = lut

    # ------------------------------------------------------------------
    def _epoch_boundaries(self, trace: Trace) -> np.ndarray:
        """Update cycles that actually fire during the trace.

        The reference engine drains due updates lazily, right before the
        first access at or after each boundary; boundaries after the
        last access never fire. The returned array contains the firing
        boundaries in order.
        """
        schedule = self.config.make_update_schedule()
        if len(trace) == 0:
            return np.empty(0, dtype=np.int64)
        return schedule.boundaries_up_to(int(trace.cycles[-1]))

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate ``trace`` and return the measurement record.

        Direct-mapped geometries use the adjacent-tag comparison of
        :meth:`_epoch_hits`; set-associative ones the lockstep LRU
        stack simulation of :meth:`_epoch_hits_lru`. Both agree exactly
        with :class:`~repro.core.simulator.ReferenceSimulator`.
        """
        config = self.config
        geometry = config.geometry
        ways = geometry.ways
        num_banks = config.num_banks
        p_bits = log2_exact(num_banks)
        line_bits = geometry.index_bits - p_bits

        cycles = trace.cycles
        index = (trace.addresses >> geometry.offset_bits) & mask(geometry.index_bits)
        tag = trace.addresses >> (geometry.offset_bits + geometry.index_bits)
        logical_bank = index >> line_bits

        boundaries = self._epoch_boundaries(trace)
        starts = np.concatenate(
            ([0], np.searchsorted(cycles, boundaries, side="left"), [len(trace)])
        )
        num_epochs = len(starts) - 1

        policy = config.make_policy()
        physical = np.empty(len(trace), dtype=np.int64)
        hits = 0
        flush_invalidations = 0

        if ways == 1:
            touched_before_flush = 0
            for epoch in range(num_epochs):
                if epoch > 0:
                    policy.update()
                    flush_invalidations += touched_before_flush
                lo, hi = int(starts[epoch]), int(starts[epoch + 1])
                if lo == hi:
                    touched_before_flush = 0
                    continue
                mapping = policy.mapping()
                physical[lo:hi] = mapping[logical_bank[lo:hi]]
                epoch_hits, epoch_lines = self._epoch_hits(index[lo:hi], tag[lo:hi])
                hits += epoch_hits
                touched_before_flush = epoch_lines
        else:
            # Set-associative: the epoch loop only applies the routing
            # permutation; hits come from one lockstep LRU pass over
            # all (epoch, set) groups at once.
            for epoch in range(num_epochs):
                if epoch > 0:
                    policy.update()
                lo, hi = int(starts[epoch]), int(starts[epoch + 1])
                if lo == hi:
                    continue
                mapping = policy.mapping()
                physical[lo:hi] = mapping[logical_bank[lo:hi]]
            if len(trace):
                num_sets = geometry.num_sets
                epoch_of = np.repeat(np.arange(num_epochs), np.diff(starts))
                hits, lines_per_group, group_keys = self._grouped_lru(
                    epoch_of * num_sets + index, tag, ways
                )
                lines_per_epoch = np.zeros(num_epochs, dtype=np.int64)
                np.add.at(lines_per_epoch, group_keys // num_sets, lines_per_group)
                # Each boundary flush drops whatever lines the epoch it
                # closes left valid; the final epoch is never flushed.
                flush_invalidations = int(lines_per_epoch[:-1].sum())
        misses = len(trace) - hits

        # Per-bank idleness over the whole run (sleep is oblivious to
        # mapping changes; only the physical access stream matters).
        breakeven = _effective_breakeven(config, trace.horizon)
        bank_stats = []
        order = np.argsort(physical[: len(trace)], kind="stable")
        sorted_banks = physical[order]
        sorted_cycles = cycles[order]
        splits = np.searchsorted(sorted_banks, np.arange(num_banks + 1))
        for bank in range(num_banks):
            bank_cycles = sorted_cycles[splits[bank] : splits[bank + 1]]
            bank_stats.append(
                stats_from_access_cycles(bank_cycles, breakeven, 0, trace.horizon)
            )

        cache_stats = CacheStats(hits=hits, misses=misses, flushes=len(boundaries))
        return _finish(
            config,
            trace,
            bank_stats,
            cache_stats,
            policy.updates_applied,
            flush_invalidations,
            self.lut,
        )

    @staticmethod
    def _epoch_hits(index: np.ndarray, tag: np.ndarray) -> tuple[int, int]:
        """Hits and distinct lines touched within one (cold-started) epoch.

        Sorting by (index, arrival) places every access next to the
        previous access of the same cache line; a hit is an access whose
        predecessor exists, is the same line, and carries the same tag
        (direct-mapped: any other tag evicted the line in between — but
        a *different* tag on the predecessor already means the line was
        re-allocated, so adjacent comparison is exact).
        """
        if index.size == 0:
            return 0, 0
        order = np.lexsort((np.arange(index.size), index))
        idx_sorted = index[order]
        tag_sorted = tag[order]
        same_line = idx_sorted[1:] == idx_sorted[:-1]
        same_tag = tag_sorted[1:] == tag_sorted[:-1]
        hits = int(np.count_nonzero(same_line & same_tag))
        distinct_lines = int(np.count_nonzero(~same_line)) + 1
        return hits, distinct_lines

    @staticmethod
    def _epoch_hits_lru(index: np.ndarray, tag: np.ndarray, ways: int) -> tuple[int, int]:
        """Hits and surviving lines within one (cold-started) LRU epoch.

        Per-epoch convenience over :meth:`_grouped_lru` (the engine
        itself fuses all epochs into a single grouped pass).
        """
        hits, lines_per_set, _ = FastSimulator._grouped_lru(index, tag, ways)
        return hits, int(lines_per_set.sum())

    @staticmethod
    def _grouped_lru(
        keys: np.ndarray, tag: np.ndarray, ways: int
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Lockstep LRU simulation over contiguous key-groups.

        ``keys`` identifies the cold-started LRU set each access falls
        into (the engine passes ``epoch * num_sets + set_index`` so one
        call covers the whole trace). Sorting by (key, arrival) makes
        each group contiguous and in arrival order; the LRU stacks of
        all groups then advance in lockstep, one within-group access
        *rank* per Python iteration, with the compare/shift work
        vectorized across every group still active at that rank. This
        is exact because an LRU set's contents are history-independent:
        after any prefix the set holds precisely its ``ways`` most
        recently accessed distinct tags, so an access hits iff its tag
        is among them and the stack update needs no per-access control
        flow.

        Returns ``(hits, lines_per_group, group_keys)``: total hits,
        the valid lines each group retains at the end —
        ``min(distinct tags, ways)``, since each miss allocates one
        line and evicts only when the set is already full — and the
        sorted unique keys the line counts are aligned with.
        """
        n = keys.size
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return 0, empty, empty
        order = np.argsort(keys, kind="stable")  # stable = arrival order per group
        key_sorted = keys[order]
        tag_sorted = tag[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = key_sorted[1:] != key_sorted[:-1]
        starts = np.flatnonzero(new_group)
        group_keys = key_sorted[starts]
        lengths = np.diff(np.append(starts, n))

        # Surviving lines: distinct (key, tag) pairs per group, capped.
        pair_order = np.lexsort((tag, keys))
        pair_key = keys[pair_order]
        pair_tag = tag[pair_order]
        first_pair = np.empty(n, dtype=bool)
        first_pair[0] = True
        first_pair[1:] = (pair_key[1:] != pair_key[:-1]) | (pair_tag[1:] != pair_tag[:-1])
        group_of_pair = np.cumsum(np.concatenate(([True], pair_key[1:] != pair_key[:-1]))) - 1
        distinct_tags = np.bincount(group_of_pair[first_pair], minlength=starts.size)
        lines_per_group = np.minimum(distinct_tags, ways).astype(np.int64)

        # Longest groups first, so the groups active at rank r are
        # always a leading slice of the stack matrix.
        by_length = np.argsort(-lengths, kind="stable")
        starts_by_length = starts[by_length]
        lengths_by_length = lengths[by_length]
        stacks = np.full((starts.size, ways), -1, dtype=np.int64)  # -1 = invalid
        hits = 0
        for rank in range(int(lengths_by_length[0])):
            active = int(np.searchsorted(-lengths_by_length, -rank, side="left"))
            current = tag_sorted[starts_by_length[:active] + rank]
            live = stacks[:active]
            matches = live == current[:, None]
            hit_mask = matches.any(axis=1)
            hits += int(np.count_nonzero(hit_mask))
            # A hit rotates the stack above the matched way; a miss
            # rotates the whole stack, evicting the LRU way.
            depth = np.where(hit_mask, matches.argmax(axis=1), ways - 1)
            for way in range(ways - 1, 0, -1):
                rotate = depth >= way
                live[rotate, way] = live[rotate, way - 1]
            live[:, 0] = current
        return hits, lines_per_group, group_keys

