"""Vectorized simulation engine.

Produces bit-identical results to :class:`repro.core.simulator.ReferenceSimulator`
(the test suite enforces exact agreement on hits, misses, flushes,
per-bank access counts, sleep cycles and energy) while processing whole
re-indexing epochs with numpy:

* routing: the logical→physical permutation is constant within an
  epoch, so ``physical = mapping[logical]`` is a single ``take``;
* idleness: the sleep rule only looks at per-bank access-cycle gaps,
  and banks sleep straight through mapping changes, so all banks' stats
  come from one
  :func:`~repro.power.idleness.batch_stats_from_sorted_accesses` pass
  over the bank-sorted stream (held to the per-bank
  :func:`~repro.power.idleness.stats_from_access_cycles` oracle by the
  tests);
* hits/misses: within an epoch the mapping is a bijection on banks and
  the line-in-bank bits pass through unchanged, so the physical set of
  an access is identified by its logical set index; sorting accesses by
  (index, time) groups each set's accesses contiguously and in arrival
  order. Direct-mapped caches then reduce to one vectorized
  adjacent-tag comparison; set-associative caches run a lockstep LRU
  stack simulation over the set-groups (:meth:`FastSimulator._epoch_hits_lru`).
  Epochs start cold (the update flushed).

Across a sweep, everything breakeven-independent — decode, epoch
bracketing, hit counts, the bank sort — is shared between points through
:class:`repro.core.plan.TracePlan`, and :func:`run_breakeven_group`
evaluates a whole ``breakeven_override`` axis from one gap computation.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cache.stats import CacheStats
from repro.core.config import ArchitectureConfig
from repro.core.engine import Engine, register_engine
from repro.core.plan import TracePlan, ensure_plan
from repro.core.results import SimulationResult
from repro.core.simulator import _effective_breakeven, _finish
from repro.aging.lut import LifetimeLUT
from repro.errors import SimulationError
from repro.kernels import dispatch as kernels
from repro.power.idleness import batch_stats_from_gaps
from repro.trace.trace import Trace


class FastSimulator:
    """Vectorized trace-driven simulator (same contract as the reference).

    Parameters
    ----------
    config:
        Architecture to simulate.
    lut:
        Lifetime lookup table; defaults to the shared calibrated one.
    plan:
        Optional shared :class:`~repro.core.plan.TracePlan`. When given,
        the decode, epoch boundaries, bank sort and hit counts are read
        from (and grown into) the plan's caches; when omitted a private
        plan is built per :meth:`run` call. Results are identical either
        way.
    backend:
        Kernel backend override (see :mod:`repro.kernels.dispatch`);
        ``None`` uses the process default. Every backend is
        bit-identical, so this only changes speed.
    """

    def __init__(
        self,
        config: ArchitectureConfig,
        lut: LifetimeLUT | None = None,
        plan: TracePlan | None = None,
        backend: str | None = None,
    ) -> None:
        self.config = config
        self.lut = lut
        self.plan = plan
        self.backend = backend

    # ------------------------------------------------------------------
    def _epoch_boundaries(self, trace: Trace) -> np.ndarray:
        """Update cycles that actually fire during the trace.

        The reference engine drains due updates lazily, right before the
        first access at or after each boundary; boundaries after the
        last access never fire. The returned array contains the firing
        boundaries in order. Thin view over
        :meth:`~repro.core.plan.TracePlan.epoch_starts` — the single
        implementation of schedule bracketing.
        """
        boundaries, _ = ensure_plan(self.plan, trace).epoch_starts(self.config)
        return boundaries

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate ``trace`` and return the measurement record.

        Direct-mapped geometries use the adjacent-tag comparison of
        :meth:`_epoch_hits`; set-associative ones the lockstep LRU
        stack simulation of :meth:`_epoch_hits_lru`. Both agree exactly
        with :class:`~repro.core.simulator.ReferenceSimulator`.
        """
        return run_breakeven_group(
            [self.config], trace, lut=self.lut, plan=self.plan, backend=self.backend
        )[0]

    @staticmethod
    def _epoch_hits(index: np.ndarray, tag: np.ndarray) -> tuple[int, int]:
        """Hits and distinct lines touched within one (cold-started) epoch.

        Sorting by (index, arrival) places every access next to the
        previous access of the same cache line; a hit is an access whose
        predecessor exists, is the same line, and carries the same tag
        (direct-mapped: any other tag evicted the line in between — but
        a *different* tag on the predecessor already means the line was
        re-allocated, so adjacent comparison is exact).
        """
        if index.size == 0:
            return 0, 0
        order = np.lexsort((np.arange(index.size), index))
        idx_sorted = index[order]
        tag_sorted = tag[order]
        same_line = idx_sorted[1:] == idx_sorted[:-1]
        same_tag = tag_sorted[1:] == tag_sorted[:-1]
        hits = int(np.count_nonzero(same_line & same_tag))
        distinct_lines = int(np.count_nonzero(~same_line)) + 1
        return hits, distinct_lines

    @staticmethod
    def _epoch_hits_lru(index: np.ndarray, tag: np.ndarray, ways: int) -> tuple[int, int]:
        """Hits and surviving lines within one (cold-started) LRU epoch.

        Per-epoch convenience over :meth:`_grouped_lru` (the engine
        itself fuses all epochs into a single grouped pass).
        """
        hits, lines_per_set, _ = FastSimulator._grouped_lru(index, tag, ways)
        return hits, int(lines_per_set.sum())

    @staticmethod
    def _grouped_lru(
        keys: np.ndarray, tag: np.ndarray, ways: int, backend: str | None = None
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """LRU simulation over contiguous key-groups.

        ``keys`` identifies the cold-started LRU set each access falls
        into (the engine passes ``epoch * num_sets + set_index`` so one
        call covers the whole trace). Sorting by (key, arrival) makes
        each group contiguous and in arrival order; the per-group stack
        walk itself is :func:`repro.kernels.lru_walk` — a lockstep rank
        walk on the numpy backend, a sequential scan on the compiled
        ones, bit-identical either way. Exact because an LRU set's
        contents are history-independent: after any prefix the set
        holds precisely its ``ways`` most recently accessed distinct
        tags.

        Returns ``(hits, lines_per_group, group_keys)``: total hits,
        the valid lines each group retains at the end —
        ``min(distinct tags, ways)``, since each miss allocates one
        line and evicts only when the set is already full — and the
        sorted unique keys the line counts are aligned with.
        """
        n = keys.size
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return 0, empty, empty
        order = np.argsort(keys, kind="stable")  # stable = arrival order per group
        key_sorted = keys[order]
        tag_sorted = tag[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = key_sorted[1:] != key_sorted[:-1]
        starts = np.flatnonzero(new_group)
        group_keys = key_sorted[starts]
        bounds = np.append(starts, n).astype(np.int64)
        hits, lines_per_group = kernels.lru_walk(
            tag_sorted, bounds, ways, backend=backend
        )
        return hits, lines_per_group, group_keys


def _functional_counts(
    index: np.ndarray,
    tag: np.ndarray,
    starts: np.ndarray,
    ways: int,
    num_sets: int,
    backend: str | None = None,
) -> tuple[int, int]:
    """(hits, flush_invalidations) over all cold-started epochs.

    Pure function of the decode, the epoch bracketing and the set
    geometry — deliberately independent of bank count, policy and power
    management, which is what lets sweeps share it across those axes.
    """
    num_epochs = len(starts) - 1
    if ways == 1:
        hits = 0
        flush_invalidations = 0
        for epoch in range(num_epochs):
            lo, hi = int(starts[epoch]), int(starts[epoch + 1])
            if lo == hi:
                continue
            epoch_hits, epoch_lines = FastSimulator._epoch_hits(
                index[lo:hi], tag[lo:hi]
            )
            hits += epoch_hits
            # Each boundary flush drops whatever lines the epoch it
            # closes left valid; the final epoch is never flushed.
            if epoch < num_epochs - 1:
                flush_invalidations += epoch_lines
        return hits, flush_invalidations
    if int(starts[-1]) == 0:
        return 0, 0
    epoch_of = np.repeat(np.arange(num_epochs), np.diff(starts))
    hits, lines_per_group, group_keys = FastSimulator._grouped_lru(
        epoch_of * num_sets + index, tag, ways, backend=backend
    )
    lines_per_epoch = np.zeros(num_epochs, dtype=np.int64)
    np.add.at(lines_per_epoch, group_keys // num_sets, lines_per_group)
    return int(hits), int(lines_per_epoch[:-1].sum())


def validate_breakeven_group(configs) -> None:
    """Reject groups whose configs differ in anything but the breakeven.

    Shared by :func:`run_breakeven_group` and the streaming
    :class:`~repro.core.streamsim.StreamCursor`, so the group contract
    is enforced identically on both paths.
    """
    base = configs[0]
    for other in configs[1:]:
        if replace(other, breakeven_override=base.breakeven_override) != base:
            raise SimulationError(
                "breakeven group configs must differ only in breakeven_override"
            )


def run_breakeven_group(
    configs,
    trace: Trace,
    lut: LifetimeLUT | None = None,
    plan: TracePlan | None = None,
    backend: str | None = None,
) -> list[SimulationResult]:
    """Simulate configs that differ only in ``breakeven_override``.

    The breakeven time only enters the per-bank idleness thresholding,
    so the whole group shares one decode, one epoch bracketing, one
    hit/miss computation and one bank sort; the batched idleness kernel
    then evaluates every breakeven from a single gap computation.
    Returns one :class:`~repro.core.results.SimulationResult` per
    config, in order, each bit-identical to an independent
    :meth:`FastSimulator.run`.
    """
    if not configs:
        return []
    base = configs[0]
    validate_breakeven_group(configs)
    plan = ensure_plan(plan, trace)

    geometry = base.geometry
    index, tag = plan.decode(geometry.offset_bits, geometry.index_bits)
    boundaries, starts = plan.epoch_starts(base)
    hits, flush_invalidations = plan.cached(
        (
            "hits",
            geometry.offset_bits,
            geometry.index_bits,
            geometry.ways,
            plan.schedule_key(base),
        ),
        lambda: _functional_counts(
            index, tag, starts, geometry.ways, geometry.num_sets, backend=backend
        ),
    )
    # Per-bank idleness over the whole run (sleep is oblivious to
    # mapping changes; only the physical access stream matters). The
    # breakeven-independent gap structure is cached per routing, so
    # even *separate* groups sharing a routing (e.g. a power_managed
    # or technology axis) pay for the sort-and-gap pass once.
    gaps = plan.idle_gaps(base, backend=backend)
    breakevens = [_effective_breakeven(config, trace.horizon) for config in configs]
    stats_batch = batch_stats_from_gaps(gaps, breakevens, backend=backend)

    misses = len(trace) - hits
    updates_applied = len(boundaries)
    results = []
    for config, bank_stats in zip(configs, stats_batch):
        cache_stats = CacheStats(hits=hits, misses=misses, flushes=len(boundaries))
        results.append(
            _finish(
                config,
                trace,
                bank_stats,
                cache_stats,
                updates_applied,
                flush_invalidations,
                lut,
            )
        )
    return results


class FastEngine(Engine):
    """Registry adapter for :class:`FastSimulator`.

    Highest-priority ``auto`` candidate: it covers every
    :class:`~repro.core.config.ArchitectureConfig` and is bit-identical
    to the reference oracle. Also exposes the breakeven-group batched
    fast path through ``run_group``, which the sweep engine uses to
    evaluate a whole ``breakeven_override`` axis from one gap
    computation.
    """

    name = "fast"
    description = "vectorized numpy engine, bit-identical to the reference"
    priority = 10

    #: The fast engine always runs the pure-numpy kernels — it is the
    #: stable differential anchor the compiled engine is pinned
    #: against (see repro.kernels.engine.CompiledEngine).
    backend = "numpy"

    #: Streaming passes of this engine can be sharded across worker
    #: processes by set/bank partition (see
    #: repro.core.streamsim.stream_selected).
    supports_stream_shards = True

    def supports(self, config) -> bool:
        return isinstance(config, ArchitectureConfig)

    def run(self, config, trace, lut=None, plan=None):
        return FastSimulator(config, lut, plan=plan, backend=self.backend).run(trace)

    @staticmethod
    def run_group(configs, trace, lut=None, plan=None):
        """Batched evaluation of a breakeven-only config group."""
        return run_breakeven_group(configs, trace, lut=lut, plan=plan, backend="numpy")

    # -- streaming capabilities (see repro.core.streamsim) -------------
    @staticmethod
    def run_streaming(config, stream, lut=None, plan=None):
        """Out-of-core simulation from a chunked trace stream."""
        from repro.core.streamsim import run_streaming

        return run_streaming(config, stream, lut=lut, plan=plan, backend="numpy")

    @staticmethod
    def run_streaming_group(configs, stream, lut=None, plan=None):
        """One streamed pass for a whole breakeven-only group."""
        from repro.core.streamsim import run_streaming_group

        return run_streaming_group(configs, stream, lut=lut, plan=plan, backend="numpy")

    @staticmethod
    def open_stream_cursor(configs, plan, shard=None):
        """Carried-state cursor for single-pass multi-group evaluation."""
        from repro.core.streamsim import StreamCursor

        return StreamCursor(configs, plan, backend="numpy", shard=shard)


register_engine(FastEngine())

