"""Engine registry: simulation engines as pluggable extension points.

An *engine* is anything that can turn ``(config, trace)`` into a
:class:`~repro.core.results.SimulationResult`. The library ships three —
``fast`` (vectorized, bit-identical to the oracle), ``reference`` (the
event-by-event oracle) and ``finegrain`` (the per-line drowsy template
of [7]) — and anything else can join by implementing the small
:class:`Engine` protocol and calling :func:`register_engine`. Every
layer of the library (``simulate()``, sweeps, campaigns, the experiment
runner, the CLI ``--engine`` flag) resolves engines through this one
registry, so a registered engine participates everywhere with zero
special-casing.

Resolution rules
----------------
* An explicit engine name selects that engine; if its
  :meth:`Engine.supports` rejects the configuration, the dispatch fails
  loudly instead of silently substituting another engine.
* ``"auto"`` picks the highest-:attr:`~Engine.priority` *auto-eligible*
  engine whose ``supports()`` accepts the configuration. Engines that
  simulate a *different machine* (the fine-grain template does — lines,
  not banks, are its power domains) set ``auto_eligible = False`` so
  ``auto`` never silently changes what is being simulated.

The built-in engines register themselves when their modules import;
:func:`_ensure_builtins` makes any registry read trigger those imports,
so callers never see a half-populated registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigurationError, SimulationError, UnknownEngineError

if TYPE_CHECKING:  # import cycle: config/results import through core
    from repro.aging.lut import LifetimeLUT
    from repro.core.config import ArchitectureConfig
    from repro.core.plan import TracePlan
    from repro.core.results import SimulationResult
    from repro.trace.trace import Trace


class Engine:
    """Protocol (and convenient base class) for simulation engines.

    Attributes
    ----------
    name:
        Registry key and CLI ``--engine`` value.
    description:
        One-line capability summary (shown by ``repro engines``).
    priority:
        ``auto`` preference; higher is tried first.
    auto_eligible:
        Whether ``engine="auto"`` may pick this engine. Engines that
        simulate a different architectural template than the banked
        baseline must opt out.
    requires:
        Optional one-line statement of what ``supports()`` demands,
        used to build actionable dispatch errors.
    family:
        *Result family*: engines in the same family produce
        bit-identical results for the same ``(config, trace)`` (fast
        and reference are both ``"banked"``), so stores may share their
        records. An engine simulating a different machine declares its
        own family and its campaign points get distinct store
        identities.
    fidelity:
        Execution fidelity tier. ``"simulate"`` engines replay the
        trace and are mutually substitutable within a family;
        ``"estimate"`` engines predict metrics from trace statistics
        (closed-form, no replay) and their records must never alias or
        satisfy simulated ones. ``engine="auto"`` never picks a
        non-``"simulate"`` engine — the registry enforces that
        non-simulate engines are not auto-eligible.

    Subclasses (or any duck-typed object carrying the same attributes)
    implement :meth:`supports` and :meth:`run`; engines with a batched
    fast path for ``breakeven_override`` axes may additionally provide
    ``run_group(configs, trace, lut=None, plan=None)`` (see
    :class:`~repro.core.fastsim.FastEngine`).

    Engines that can simulate chunked (out-of-core) traces expose
    *streaming capabilities*, likewise duck-typed and
    ``supports()``-gated at dispatch:

    * ``run_streaming(config, stream, lut=None)`` — simulate one
      configuration from a :class:`~repro.trace.stream.TraceStream`;
    * ``run_streaming_group(configs, stream, lut=None)`` — one pass for
      a breakeven-only group;
    * ``open_stream_cursor(configs, plan)`` — a carried-state cursor
      (``process(plan)`` per chunk, ``finalize(horizon, name, lut)``)
      letting :func:`~repro.core.streamsim.stream_selected` evaluate
      many grid points in a single pass over the stream.

    :func:`supports_streaming` is the capability query; engines without
    it fail loudly on streaming entry points instead of silently
    materializing the trace.
    """

    name: str = ""
    description: str = ""
    priority: int = 0
    auto_eligible: bool = True
    requires: str = ""
    family: str = "banked"
    fidelity: str = "simulate"

    def supports(self, config: ArchitectureConfig) -> bool:
        """Whether this engine can simulate ``config``."""
        raise NotImplementedError

    def run(
        self,
        config: ArchitectureConfig,
        trace: Trace,
        lut: LifetimeLUT | None = None,
        plan: TracePlan | None = None,
    ) -> SimulationResult:
        """Simulate ``trace`` on ``config``; return a ``SimulationResult``."""
        raise NotImplementedError


_REGISTRY: dict[str, Engine] = {}
_builtins_loaded = False

#: Names the lazily imported built-in modules register themselves;
#: everything else is a plugin that worker processes must be handed
#: explicitly (see :func:`custom_engines` / :func:`install_engines`).
_BUILTIN_ENGINE_NAMES = frozenset({"fast", "reference", "finegrain", "compiled", "estimate"})

#: The actual built-in instances, captured at their registration — a
#: replace=True override of a built-in name is then still recognized
#: as a plugin that must travel to worker processes.
_BUILTIN_ENGINE_OBJECTS: dict[str, Engine] = {}


def _ensure_builtins() -> None:
    """Import the modules that register the built-in engines (once)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.core.simulator  # noqa: F401  (registers "reference")
    import repro.core.fastsim  # noqa: F401  (registers "fast")
    import repro.finegrain.engine  # noqa: F401  (registers "finegrain")
    import repro.kernels.engine  # noqa: F401  (registers "compiled")
    import repro.estimate.engine  # noqa: F401  (registers "estimate")


def register_engine(engine: Engine, replace: bool = False) -> None:
    """Add ``engine`` to the registry under ``engine.name``.

    Raises
    ------
    ConfigurationError
        For an empty or reserved name, or a duplicate registration
        without ``replace=True`` — two engines silently shadowing each
        other is exactly the bug a registry must prevent.
    """
    name = getattr(engine, "name", "")
    if not name or not isinstance(name, str):
        raise ConfigurationError("an engine must carry a non-empty string name")
    if name == "auto":
        raise ConfigurationError("'auto' is the dispatcher's reserved name")
    family = getattr(engine, "family", "banked")
    if getattr(engine, "auto_eligible", True) and family != "banked":
        # The store keys 'auto' results under the banked family; an
        # auto-pickable engine of another family would alias records
        # that are not bit-identical.
        raise ConfigurationError(
            f"engine {name!r}: auto-eligible engines must produce the "
            f"'banked' result family (got {family!r}); set "
            "auto_eligible=False or family='banked'"
        )
    fidelity = getattr(engine, "fidelity", "simulate")
    if getattr(engine, "auto_eligible", True) and fidelity != "simulate":
        # 'auto' promises trace-accurate simulation; an auto-pickable
        # estimator would silently substitute predictions for replay.
        raise ConfigurationError(
            f"engine {name!r}: auto-eligible engines must have fidelity "
            f"'simulate' (got {fidelity!r}); set auto_eligible=False"
        )
    if not replace and name in _REGISTRY:
        raise ConfigurationError(
            f"engine {name!r} is already registered; pass replace=True to override"
        )
    if name in _BUILTIN_ENGINE_NAMES and name not in _BUILTIN_ENGINE_OBJECTS:
        _BUILTIN_ENGINE_OBJECTS[name] = engine
    _REGISTRY[name] = engine


def unregister_engine(name: str) -> None:
    """Remove a registered engine (primarily for tests and plugins)."""
    _ensure_builtins()
    if _REGISTRY.pop(name, None) is None:
        raise UnknownEngineError(
            f"unknown engine {name!r}; known: {', '.join(engine_names())}"
        )


def engine_names() -> tuple[str, ...]:
    """``("auto", ...registered names...)`` — the CLI/validation view."""
    _ensure_builtins()
    return ("auto", *sorted(_REGISTRY))


def registered_engines() -> tuple[Engine, ...]:
    """All registered engines, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def custom_engines() -> tuple[Engine, ...]:
    """Registered engines that are not built-ins (sorted by name).

    Worker processes rebuild the built-ins by importing, but plugins
    only exist in the registering process — the parallel sweep ships
    these through its pool initializer (the objects must pickle).
    Identity-based: a replace=True override of a built-in *name* is a
    plugin and ships too.
    """
    _ensure_builtins()
    return tuple(
        engine
        for name, engine in sorted(_REGISTRY.items())
        if _BUILTIN_ENGINE_OBJECTS.get(name) is not engine
    )


def install_engines(engines: Iterable[Engine]) -> None:
    """Register ``engines``, replacing same-name entries (worker setup)."""
    for engine in engines:
        register_engine(engine, replace=True)


def get_engine(name: str) -> Engine:
    """Look up a registered engine by name.

    Raises
    ------
    UnknownEngineError
        Listing the registered names, so a typo'd spec file or CLI flag
        is self-diagnosing.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownEngineError(
            f"unknown engine {name!r}; known: {', '.join(engine_names())}"
        ) from None


def validate_engine(engine: str) -> None:
    """Raise :class:`UnknownEngineError` for names the registry lacks.

    Shared by :func:`~repro.core.simulator.simulate`, the sweep
    front-end and :class:`~repro.campaign.spec.CampaignSpec`, so a
    typo'd engine fails identically on every path.
    """
    if engine == "auto":
        return
    get_engine(engine)


def supports_streaming(engine: Engine) -> bool:
    """Whether ``engine`` exposes the ``run_streaming`` capability."""
    return callable(getattr(engine, "run_streaming", None))


def result_family(engine: str) -> str:
    """The result family an engine selector produces.

    ``"auto"`` is ``"banked"``: only auto-eligible engines can be
    picked, and those simulate the banked baseline by contract.
    """
    if engine == "auto":
        return "banked"
    return getattr(get_engine(engine), "family", "banked")


def result_fidelity(engine: str) -> str:
    """The fidelity tier an engine selector produces.

    ``"auto"`` is ``"simulate"``: non-simulate engines can never be
    auto-eligible (enforced at registration).
    """
    if engine == "auto":
        return "simulate"
    return getattr(get_engine(engine), "fidelity", "simulate")


def resolve_engine(engine: str, config: ArchitectureConfig) -> Engine:
    """The engine that will simulate ``config`` under selector ``engine``.

    ``"auto"`` walks the auto-eligible engines by descending priority
    and returns the first supporting one; an explicit name returns that
    engine or fails if it rejects the configuration.
    """
    _ensure_builtins()
    if engine == "auto":
        candidates = sorted(
            (e for e in _REGISTRY.values() if e.auto_eligible),
            key=lambda e: (-e.priority, e.name),
        )
        for candidate in candidates:
            if candidate.supports(config):
                return candidate
        raise SimulationError(
            "no registered engine supports this configuration under 'auto' "
            f"(registered: {', '.join(sorted(_REGISTRY))})"
        )
    chosen = get_engine(engine)
    if not chosen.supports(config):
        requires = getattr(chosen, "requires", "")
        detail = f" (requires {requires})" if requires else ""
        raise SimulationError(
            f"engine {engine!r} does not support this configuration{detail}"
        )
    return chosen
