"""Simulation results.

Every engine produces a :class:`SimulationResult`; the experiment
harness and examples read everything — energy savings, idleness
distribution, lifetime, hit rates — from this one object. Derived
quantities beyond the classic fields live in the :attr:`metrics`
mapping, filled by the registered
:class:`~repro.core.metrics.Metric` objects from the measured counters
(so they can always be recomputed from a serialized record).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aging.lifetime import CacheLifetimeReport
from repro.cache.stats import CacheStats
from repro.core.config import ArchitectureConfig
from repro.power.energy import BankEnergyBreakdown
from repro.power.idleness import BankIdleStats


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one trace-driven run.

    Attributes
    ----------
    config:
        The simulated architecture.
    trace_name:
        Label of the driving trace.
    total_cycles:
        Simulated horizon.
    bank_stats:
        Per-power-domain idleness/activity counters — one per physical
        bank for the banked engines, one per cache *line* for the
        fine-grain engine (see :attr:`template`).
    cache_stats:
        Hit/miss/flush counters (whole cache).
    updates_applied:
        Re-indexing updates that fired during the run.
    flush_invalidations:
        Valid lines dropped by update-induced flushes.
    bank_energy:
        Per-domain energy breakdowns (pJ).
    energy_pj:
        Total energy of the simulated cache (pJ).
    baseline_energy_pj:
        Energy of the unmanaged monolithic reference on the same trace.
    lifetime:
        Domain/cache lifetime report.
    metrics:
        Named derived values from the registered metrics (plus any
        engine-provided payloads); see :meth:`metric`.
    template:
        Counter template: ``"banked"`` or ``"finegrain"``.
    fidelity:
        Execution fidelity tier: ``"simulate"`` for trace-replayed
        results, ``"estimate"`` for closed-form predictions (see
        ``repro.estimate``). Estimated results carry synthesized
        counters and must never be conflated with simulated ones.
    """

    config: ArchitectureConfig
    trace_name: str
    total_cycles: int
    bank_stats: tuple[BankIdleStats, ...]
    cache_stats: CacheStats
    updates_applied: int
    flush_invalidations: int
    bank_energy: tuple[BankEnergyBreakdown, ...]
    energy_pj: float
    baseline_energy_pj: float
    lifetime: CacheLifetimeReport
    metrics: dict = field(default_factory=dict)
    template: str = "banked"
    fidelity: str = "simulate"

    # ------------------------------------------------------------------
    # Metrics access
    # ------------------------------------------------------------------
    def measurement(self):
        """The counter substrate this result was assembled from."""
        from repro.core.metrics import Measurement

        return Measurement(
            config=self.config,
            trace_name=self.trace_name,
            total_cycles=self.total_cycles,
            bank_stats=self.bank_stats,
            cache_stats=self.cache_stats,
            updates_applied=self.updates_applied,
            flush_invalidations=self.flush_invalidations,
            template=self.template,
        )

    def metric(self, name: str, lut=None):
        """Read metric value ``name``, computing lazy metrics on demand.

        With ``lut=None``, eager metrics (and engine payloads) come
        straight from :attr:`metrics`. Passing an explicit ``lut``
        forces recomputation from the counters under *that* LUT — the
        stored values were derived with the run's LUT and would
        otherwise be returned silently. Values no registered metric
        provides (engine payloads) are LUT-independent and always read
        from :attr:`metrics`.
        """
        if lut is None and name in self.metrics:
            return self.metrics[name]
        from repro.core.metrics import compute_metric
        from repro.errors import UnknownMetricError

        try:
            return compute_metric(self.measurement(), name, lut=lut)
        except UnknownMetricError:
            if name in self.metrics:
                return self.metrics[name]
            raise

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def energy_savings(self) -> float:
        """Fractional saving vs the unmanaged monolithic cache (Esav)."""
        if self.baseline_energy_pj == 0:
            return 0.0
        return 1.0 - self.energy_pj / self.baseline_energy_pj

    @property
    def bank_idleness(self) -> tuple[float, ...]:
        """Useful idleness of each power domain (Table I's I_j)."""
        return tuple(s.useful_idleness for s in self.bank_stats)

    @property
    def average_idleness(self) -> float:
        """Mean domain idleness — the power-relevant aggregate."""
        values = self.bank_idleness
        return sum(values) / len(values)

    @property
    def worst_idleness(self) -> float:
        """Minimum domain idleness — the aging-relevant aggregate."""
        return min(self.bank_idleness)

    @property
    def lifetime_years(self) -> float:
        """Cache lifetime (worst domain) in years."""
        return self.lifetime.cache_lifetime_years

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over the run."""
        return self.cache_stats.hit_rate

    @property
    def total_accesses(self) -> int:
        """Accesses driven into the cache."""
        return self.cache_stats.accesses

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        values = self.bank_idleness
        if len(values) > 8:
            idle = (
                f"min {min(values):.1%}, max {max(values):.1%} "
                f"over {len(values)} domains"
            )
        else:
            idle = ", ".join(f"{v:.1%}" for v in values)
        return (
            f"{self.trace_name or 'trace'} on {self.config.num_banks}-bank "
            f"{self.config.geometry.size_bytes // 1024}kB cache "
            f"[{self.config.policy}]: Esav={self.energy_savings:.1%}, "
            f"lifetime={self.lifetime_years:.2f}y (bank idleness: {idle}), "
            f"hit rate={self.hit_rate:.1%}, updates={self.updates_applied}"
        )
