"""Simulation results.

Both engines produce a :class:`SimulationResult`; the experiment harness
and examples read everything — energy savings, idleness distribution,
lifetime, hit rates — from this one object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aging.lifetime import CacheLifetimeReport
from repro.cache.stats import CacheStats
from repro.core.config import ArchitectureConfig
from repro.power.energy import BankEnergyBreakdown
from repro.power.idleness import BankIdleStats


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one trace-driven run.

    Attributes
    ----------
    config:
        The simulated architecture.
    trace_name:
        Label of the driving trace.
    total_cycles:
        Simulated horizon.
    bank_stats:
        Per-physical-bank idleness/activity counters.
    cache_stats:
        Hit/miss/flush counters (whole cache).
    updates_applied:
        Re-indexing updates that fired during the run.
    flush_invalidations:
        Valid lines dropped by update-induced flushes.
    bank_energy:
        Per-bank energy breakdowns (pJ).
    energy_pj:
        Total energy of the simulated cache (pJ).
    baseline_energy_pj:
        Energy of the unmanaged monolithic reference on the same trace.
    lifetime:
        Bank/cache lifetime report.
    """

    config: ArchitectureConfig
    trace_name: str
    total_cycles: int
    bank_stats: tuple[BankIdleStats, ...]
    cache_stats: CacheStats
    updates_applied: int
    flush_invalidations: int
    bank_energy: tuple[BankEnergyBreakdown, ...]
    energy_pj: float
    baseline_energy_pj: float
    lifetime: CacheLifetimeReport

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def energy_savings(self) -> float:
        """Fractional saving vs the unmanaged monolithic cache (Esav)."""
        return 1.0 - self.energy_pj / self.baseline_energy_pj

    @property
    def bank_idleness(self) -> tuple[float, ...]:
        """Useful idleness of each physical bank (Table I's I_j)."""
        return tuple(s.useful_idleness for s in self.bank_stats)

    @property
    def average_idleness(self) -> float:
        """Mean bank idleness — the power-relevant aggregate."""
        values = self.bank_idleness
        return sum(values) / len(values)

    @property
    def worst_idleness(self) -> float:
        """Minimum bank idleness — the aging-relevant aggregate."""
        return min(self.bank_idleness)

    @property
    def lifetime_years(self) -> float:
        """Cache lifetime (worst bank) in years."""
        return self.lifetime.cache_lifetime_years

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over the run."""
        return self.cache_stats.hit_rate

    @property
    def total_accesses(self) -> int:
        """Accesses driven into the cache."""
        return self.cache_stats.accesses

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        idle = ", ".join(f"{v:.1%}" for v in self.bank_idleness)
        return (
            f"{self.trace_name or 'trace'} on {self.config.num_banks}-bank "
            f"{self.config.geometry.size_bytes // 1024}kB cache "
            f"[{self.config.policy}]: Esav={self.energy_savings:.1%}, "
            f"lifetime={self.lifetime_years:.2f}y (bank idleness: {idle}), "
            f"hit rate={self.hit_rate:.1%}, updates={self.updates_applied}"
        )
