"""The paper's architecture, assembled: partitioned cache + power
management + dynamic indexing + aging, driven by traces.

* :mod:`repro.core.config` — :class:`ArchitectureConfig`, the single
  description object everything is built from;
* :mod:`repro.core.architecture` — structural summary (decoder widths,
  idle-counter width, per-bank geometry) backing the paper's overhead
  claims;
* :mod:`repro.core.engine` — the engine registry: ``fast``,
  ``reference`` and ``finegrain`` ship in-tree, anything else joins via
  :func:`register_engine`;
* :mod:`repro.core.simulator` — the cycle-faithful reference engine
  and the :func:`simulate` dispatcher;
* :mod:`repro.core.fastsim` — the vectorized numpy engine (identical
  results, orders of magnitude faster);
* :mod:`repro.core.metrics` — the pluggable derived-metrics pipeline
  mapping measured counters to named values;
* :mod:`repro.core.plan` — :class:`TracePlan`, memoized per-trace state
  shared across sweep points, and :class:`StreamingPlan`, its per-chunk
  counterpart for out-of-core runs;
* :mod:`repro.core.streamsim` — streaming simulation over chunked
  traces (:func:`simulate_stream`, carried-state cursors);
* :mod:`repro.core.results` — :class:`SimulationResult` with energy,
  idleness, hit-rate, lifetime and metric views.
"""

from repro.core.architecture import ArchitectureSummary, summarize
from repro.core.config import ArchitectureConfig
from repro.core.engine import (
    Engine,
    engine_names,
    get_engine,
    register_engine,
    registered_engines,
    resolve_engine,
    supports_streaming,
    unregister_engine,
    validate_engine,
)
from repro.core.fastsim import FastSimulator, run_breakeven_group
from repro.core.metrics import (
    Measurement,
    MeasurementTemplate,
    Metric,
    compute_metric,
    compute_metrics,
    metric_names,
    register_metric,
    register_template,
    registered_metrics,
    template_names,
    unregister_metric,
    unregister_template,
)
from repro.core.plan import StreamingPlan, TracePlan
from repro.core.results import SimulationResult
from repro.core.simulator import ReferenceSimulator, assemble_result, simulate
from repro.core.streamsim import run_streaming, run_streaming_group, simulate_stream

__all__ = [
    "ArchitectureConfig",
    "ArchitectureSummary",
    "summarize",
    "ENGINE_NAMES",
    "Engine",
    "engine_names",
    "get_engine",
    "register_engine",
    "registered_engines",
    "resolve_engine",
    "supports_streaming",
    "unregister_engine",
    "validate_engine",
    "Measurement",
    "MeasurementTemplate",
    "Metric",
    "compute_metric",
    "compute_metrics",
    "metric_names",
    "register_metric",
    "register_template",
    "registered_metrics",
    "template_names",
    "unregister_metric",
    "unregister_template",
    "ReferenceSimulator",
    "FastSimulator",
    "TracePlan",
    "StreamingPlan",
    "run_breakeven_group",
    "run_streaming",
    "run_streaming_group",
    "simulate_stream",
    "SimulationResult",
    "assemble_result",
    "simulate",
]


def __getattr__(name: str):
    # Live registry view (PEP 562): engines registered after import —
    # including plugins — show up without re-importing.
    if name == "ENGINE_NAMES":
        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
