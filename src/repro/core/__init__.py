"""The paper's architecture, assembled: partitioned cache + power
management + dynamic indexing + aging, driven by traces.

* :mod:`repro.core.config` — :class:`ArchitectureConfig`, the single
  description object everything is built from;
* :mod:`repro.core.architecture` — structural summary (decoder widths,
  idle-counter width, per-bank geometry) backing the paper's overhead
  claims;
* :mod:`repro.core.simulator` — the cycle-faithful reference engine;
* :mod:`repro.core.fastsim` — the vectorized numpy engine (identical
  results, orders of magnitude faster);
* :mod:`repro.core.plan` — :class:`TracePlan`, memoized per-trace state
  shared across sweep points;
* :mod:`repro.core.results` — :class:`SimulationResult` with energy,
  idleness, hit-rate and lifetime views.
"""

from repro.core.architecture import ArchitectureSummary, summarize
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator, run_breakeven_group
from repro.core.plan import TracePlan
from repro.core.results import SimulationResult
from repro.core.simulator import ENGINE_NAMES, ReferenceSimulator, simulate

__all__ = [
    "ArchitectureConfig",
    "ArchitectureSummary",
    "summarize",
    "ENGINE_NAMES",
    "ReferenceSimulator",
    "FastSimulator",
    "TracePlan",
    "run_breakeven_group",
    "SimulationResult",
    "simulate",
]
