"""Pluggable derived-metrics pipeline over measured counters.

The engines *measure* — per-bank activity counters, cache hit/miss
counters, update bookkeeping — and everything else (energy, lifetime,
aging margins, …) is *derived*. This module is the seam between the
two: a :class:`Measurement` is the complete counter substrate of one
run, and registered :class:`Metric` objects map
``(config, counters) -> named values`` deterministically. Because the
substrate is exactly what :mod:`repro.core.serialize` persists, every
registered metric — including ones written *after* a campaign ran —
can be recomputed from a stored record without resimulating.

Two templates share the substrate:

* ``"banked"`` — the paper's M-bank architecture; one
  :class:`~repro.power.idleness.BankIdleStats` per physical bank,
  energy from the banked :class:`~repro.power.energy.EnergyModel`;
* ``"finegrain"`` — the per-line drowsy template of [7]; one stats
  entry per cache *line* (lines are the power domains), energy from
  :class:`~repro.finegrain.model.LineEnergyModel`.

Metrics are template-agnostic unless they consult the energy model, in
which case :func:`energy_breakdowns` dispatches on the template.

Built-in metrics
----------------
``energy`` (total/baseline/savings), ``lifetime`` (worst-domain years +
limiting domain), ``lifetime_spread`` (max − min domain lifetime — the
uniformity headline), ``idleness_spread``, ``transition_share`` (sleep
entry/exit energy as a share of the total) and ``nbti_delta_vth``
(threshold drift of the fastest-aging domain after
:data:`EVALUATION_HORIZON_YEARS`). ``snm_margin`` (read-SNM margin over
the −20% failure threshold at the same horizon) is registered *lazy*
(``eager=False``): it runs the butterfly-curve solver, so it is
computed on demand (``repro campaign show --metric snm_margin_10y_mv``,
:meth:`SimulationResult.metric <repro.core.results.SimulationResult.metric>`)
rather than on every simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.aging.lifetime import CacheLifetimeReport, bank_lifetimes_years
from repro.aging.nbti import NBTIModel
from repro.errors import ConfigurationError, ModelError, SimulationError, UnknownMetricError
from repro.power.energy import BankEnergyBreakdown
from repro.utils.units import years_to_seconds

if TYPE_CHECKING:  # import cycle: config -> ... -> metrics
    from repro.aging.cell import CharacterizationFramework
    from repro.aging.lut import LifetimeLUT
    from repro.cache.stats import CacheStats
    from repro.core.config import ArchitectureConfig
    from repro.power.idleness import BankIdleStats

#: Fixed evaluation horizon of the aging metrics (years of operation).
EVALUATION_HORIZON_YEARS: float = 10.0

#: Stored-value probability of the aging metrics (balanced content).
AGING_P0: float = 0.5


@dataclass(frozen=True)
class Measurement:
    """The complete counter substrate of one simulated run.

    Everything here is either configuration or an integer counter —
    exactly the information a v2
    :class:`~repro.core.serialize.ResultRecord` stores, which is what
    makes every metric recomputable from disk.

    Attributes
    ----------
    config:
        The simulated :class:`~repro.core.config.ArchitectureConfig`.
    trace_name:
        Label of the driving trace.
    total_cycles:
        Simulated horizon.
    bank_stats:
        Per-power-domain activity counters: one per physical bank
        (``banked``) or per cache line (``finegrain``).
    cache_stats:
        Whole-cache hit/miss/flush counters.
    updates_applied, flush_invalidations:
        Re-indexing bookkeeping.
    template:
        Which architectural template produced the counters.
    """

    config: ArchitectureConfig
    trace_name: str
    total_cycles: int
    bank_stats: tuple[BankIdleStats, ...]
    cache_stats: CacheStats
    updates_applied: int
    flush_invalidations: int
    template: str = "banked"

    def __post_init__(self) -> None:
        if self.template not in _TEMPLATE_REGISTRY:
            raise SimulationError(
                f"unknown measurement template {self.template!r}; "
                f"known: {', '.join(template_names())}"
            )

    @property
    def sleep_fractions(self) -> list[float]:
        """Useful idleness of each power domain."""
        return [s.useful_idleness for s in self.bank_stats]

    def _derived_cache(self) -> dict[str, Any]:
        # Shared memo for the derivation helpers below: several eager
        # metrics consult the same breakdowns/lifetimes, and without
        # sharing, every simulated point would pay the derivation cost
        # once per metric. Lives in the instance __dict__ (allowed on a
        # frozen dataclass) — pure memoization, never observable state.
        return self.__dict__.setdefault("_derived", {})


# ----------------------------------------------------------------------
# Measurement templates (registry) and energy accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasurementTemplate:
    """How one architectural template derives energy from its counters.

    A *template* names the counter semantics of a measurement (what a
    ``bank_stats`` entry is) and supplies the per-domain energy
    derivation. Engines whose :attr:`~repro.core.engine.Engine.family`
    is neither of the in-tree machines register their own template and
    pass its name to
    :func:`~repro.core.simulator.assemble_result`.

    Attributes
    ----------
    name:
        Registry key; the value of ``Measurement.template``.
    description:
        One-liner (what a power domain is under this template).
    breakdowns:
        ``Measurement -> tuple[BankEnergyBreakdown, ...]``, one entry
        per domain. Must be a pure function of (config, counters) so
        stored records stay recomputable.
    """

    name: str
    description: str
    breakdowns: Callable[["Measurement"], tuple[BankEnergyBreakdown, ...]]


_TEMPLATE_REGISTRY: dict[str, MeasurementTemplate] = {}


def register_template(template: MeasurementTemplate, replace: bool = False) -> None:
    """Add a measurement template to the registry."""
    if not template.name:
        raise ConfigurationError("a template must carry a non-empty name")
    if not replace and template.name in _TEMPLATE_REGISTRY:
        raise ConfigurationError(
            f"template {template.name!r} is already registered; "
            "pass replace=True to override"
        )
    _TEMPLATE_REGISTRY[template.name] = template


def unregister_template(name: str) -> None:
    """Remove a registered template (primarily for tests and plugins)."""
    if _TEMPLATE_REGISTRY.pop(name, None) is None:
        raise UnknownMetricError(
            f"unknown template {name!r}; known: {', '.join(template_names())}"
        )


def template_names() -> tuple[str, ...]:
    """Registered template names, sorted."""
    return tuple(sorted(_TEMPLATE_REGISTRY))


def _banked_breakdowns(measurement: "Measurement") -> tuple[BankEnergyBreakdown, ...]:
    model = measurement.config.make_energy_model()
    return tuple(
        model.bank_energy(
            accesses=s.accesses,
            active_cycles=s.active_cycles,
            sleep_cycles=s.sleep_cycles,
            transitions=s.transitions,
        )
        for s in measurement.bank_stats
    )


def _finegrain_breakdowns(
    measurement: "Measurement",
) -> tuple[BankEnergyBreakdown, ...]:
    from repro.finegrain.model import LineEnergyModel

    config = measurement.config
    model = LineEnergyModel(config.geometry, config.technology)
    access = model.access_energy()
    leak = model.line_leakage_power()
    drowsy = model.line_drowsy_power()
    transition = model.line_transition_energy()
    # Summed over lines this reproduces LineEnergyModel.total_energy
    # exactly: every access pays the full (monolithic) access energy no
    # matter which line it hits.
    return tuple(
        BankEnergyBreakdown(
            dynamic=s.accesses * access,
            leakage_active=s.active_cycles * leak,
            leakage_drowsy=s.sleep_cycles * drowsy,
            transitions=s.transitions * transition,
        )
        for s in measurement.bank_stats
    )


register_template(
    MeasurementTemplate(
        name="banked",
        description="M-bank partition: one stats entry per physical bank",
        breakdowns=_banked_breakdowns,
    )
)
register_template(
    MeasurementTemplate(
        name="finegrain",
        description="per-line drowsy template: one stats entry per cache line",
        breakdowns=_finegrain_breakdowns,
    )
)


def energy_breakdowns(measurement: Measurement) -> tuple[BankEnergyBreakdown, ...]:
    """Per-domain energy breakdowns (pJ) under the measurement's template."""
    cache = measurement._derived_cache()
    cached = cache.get("breakdowns")
    if cached is not None:
        return cached
    template = _TEMPLATE_REGISTRY[measurement.template]
    breakdowns = tuple(template.breakdowns(measurement))
    cache["breakdowns"] = breakdowns
    return breakdowns


def baseline_energy(measurement: Measurement) -> float:
    """Energy of the unmanaged monolithic reference on the same trace.

    Identical under both templates: the baseline is always the whole
    geometry at full Vdd with no banking and no sleep.
    """
    cache = measurement._derived_cache()
    cached = cache.get("baseline")
    if cached is None:
        cached = cache["baseline"] = (
            measurement.config.make_baseline_energy_model().unmanaged_energy(
                measurement.cache_stats.accesses, measurement.total_cycles
            )
        )
    return cached


def domain_lifetimes(
    measurement: Measurement, lut: LifetimeLUT | None = None
) -> list[float]:
    """Per-domain lifetimes (years), memoized per (measurement, lut)."""
    cache = measurement._derived_cache()
    entry = cache.get("lifetimes")
    if entry is None or entry[0] is not lut:
        entry = (lut, bank_lifetimes_years(measurement.sleep_fractions, lut=lut))
        cache["lifetimes"] = entry
    return entry[1]


def lifetime_report(
    measurement: Measurement, lut: LifetimeLUT | None = None
) -> CacheLifetimeReport:
    """Per-domain and worst-case lifetime from the sleep fractions.

    Same derivation as
    :func:`repro.aging.lifetime.cache_lifetime_years`, reading the
    memoized per-domain lifetimes.
    """
    lifetimes = domain_lifetimes(measurement, lut)
    if not lifetimes:
        raise ModelError("cache must have at least one power domain")
    worst = min(range(len(lifetimes)), key=lifetimes.__getitem__)
    return CacheLifetimeReport(
        bank_lifetimes_years=tuple(lifetimes),
        cache_lifetime_years=lifetimes[worst],
        limiting_bank=worst,
    )


# ----------------------------------------------------------------------
# The Metric protocol and registry
# ----------------------------------------------------------------------
class Metric:
    """Protocol (and base class) for derived metrics.

    Attributes
    ----------
    name:
        Registry key.
    description:
        One-liner shown by ``repro metrics``.
    provides:
        Names of the values :meth:`compute` returns. Value names are
        globally unique across registered metrics — they are the keys
        of :attr:`SimulationResult.metrics` and the vocabulary of
        ``repro campaign show --metric``.
    eager:
        Eager metrics are computed into every assembled result; lazy
        ones only on demand (use for expensive derivations).
    """

    name: str = ""
    description: str = ""
    provides: tuple[str, ...] = ()
    eager: bool = True

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        """Map the measured counters to ``{value name: value}``."""
        raise NotImplementedError


_METRICS: dict[str, Metric] = {}
_PROVIDERS: dict[str, str] = {}  # value name -> metric name


def register_metric(metric: Metric, replace: bool = False) -> None:
    """Add ``metric`` to the registry; value names must not collide."""
    name = getattr(metric, "name", "")
    if not name or not isinstance(name, str):
        raise ConfigurationError("a metric must carry a non-empty string name")
    if not metric.provides:
        raise ConfigurationError(f"metric {name!r} provides no value names")
    if not replace and name in _METRICS:
        raise ConfigurationError(
            f"metric {name!r} is already registered; pass replace=True to override"
        )
    # Validate *before* touching the registry: a failed replace must
    # leave the previous metric fully installed. Entries owned by the
    # metric being replaced don't count as collisions.
    for value_name in metric.provides:
        owner = _PROVIDERS.get(value_name)
        if owner is not None and owner != name:
            raise ConfigurationError(
                f"metric value {value_name!r} is already provided by "
                f"metric {owner!r}"
            )
    if name in _METRICS:
        _forget_provides(name)
    _METRICS[name] = metric
    for value_name in metric.provides:
        _PROVIDERS[value_name] = name


def _forget_provides(name: str) -> None:
    for value_name, owner in list(_PROVIDERS.items()):
        if owner == name:
            del _PROVIDERS[value_name]


def unregister_metric(name: str) -> None:
    """Remove a registered metric (primarily for tests and plugins)."""
    if _METRICS.pop(name, None) is None:
        raise UnknownMetricError(
            f"unknown metric {name!r}; known: {', '.join(metric_names())}"
        )
    _forget_provides(name)


def metric_names() -> tuple[str, ...]:
    """Registered metric names, sorted."""
    return tuple(sorted(_METRICS))


def registered_metrics() -> tuple[Metric, ...]:
    """All registered metrics, sorted by name."""
    return tuple(_METRICS[name] for name in sorted(_METRICS))


def get_metric(name: str) -> Metric:
    """Look up a metric by its registry name."""
    try:
        return _METRICS[name]
    except KeyError:
        raise UnknownMetricError(
            f"unknown metric {name!r}; known: {', '.join(metric_names())}"
        ) from None


def compute_metrics(
    measurement: Measurement,
    lut: LifetimeLUT | None = None,
    eager_only: bool = True,
) -> dict[str, Any]:
    """Merged ``{value name: value}`` of the registered metrics."""
    values: dict[str, Any] = {}
    for metric in registered_metrics():
        if eager_only and not metric.eager:
            continue
        values.update(metric.compute(measurement, lut))
    return values


def compute_metric(
    measurement: Measurement, value_name: str, lut: LifetimeLUT | None = None
) -> Any:
    """One named value, recomputed from counters (lazy metrics included)."""
    owner = _PROVIDERS.get(value_name)
    if owner is None:
        known = ", ".join(sorted(_PROVIDERS))
        raise UnknownMetricError(
            f"no registered metric provides {value_name!r}; known values: {known}"
        )
    return _METRICS[owner].compute(measurement, lut)[value_name]


# ----------------------------------------------------------------------
# Built-in metrics
# ----------------------------------------------------------------------
class EnergyMetric(Metric):
    """Total, baseline and fractional-saving energy of the run."""

    name = "energy"
    description = "managed vs unmanaged-monolithic energy (pJ) and Esav"
    provides = ("energy_pj", "baseline_energy_pj", "energy_savings")

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        energy = sum(b.total for b in energy_breakdowns(measurement))
        baseline = baseline_energy(measurement)
        savings = 1.0 - energy / baseline if baseline else 0.0
        return {
            "energy_pj": energy,
            "baseline_energy_pj": baseline,
            "energy_savings": savings,
        }


class LifetimeMetric(Metric):
    """Worst-domain NBTI lifetime (the paper's LT) and which domain limits."""

    name = "lifetime"
    description = "cache lifetime = worst power domain's lifetime (years)"
    provides = ("lifetime_years", "limiting_bank")

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        report = lifetime_report(measurement, lut)
        return {
            "lifetime_years": report.cache_lifetime_years,
            "limiting_bank": report.limiting_bank,
        }


class LifetimeSpreadMetric(Metric):
    """Max − min per-domain lifetime: 0 means perfectly uniform aging."""

    name = "lifetime_spread"
    description = "per-bank (or per-line) lifetime spread, years"
    provides = ("bank_lifetime_spread_years",)

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        lifetimes = domain_lifetimes(measurement, lut)
        return {"bank_lifetime_spread_years": max(lifetimes) - min(lifetimes)}


class IdlenessSpreadMetric(Metric):
    """Max − min per-domain useful idleness (Table I's balance claim)."""

    name = "idleness_spread"
    description = "per-bank (or per-line) useful-idleness spread"
    provides = ("idleness_spread",)

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        fractions = measurement.sleep_fractions
        return {"idleness_spread": max(fractions) - min(fractions)}


class TransitionShareMetric(Metric):
    """How much of the managed energy goes into sleep entry/exit."""

    name = "transition_share"
    description = "sleep/wake transition energy as a share of total energy"
    provides = ("sleep_transition_share",)

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        breakdowns = energy_breakdowns(measurement)
        total = sum(b.total for b in breakdowns)
        transitions = sum(b.transitions for b in breakdowns)
        return {"sleep_transition_share": transitions / total if total else 0.0}


class NBTIDeltaVthMetric(Metric):
    """Threshold drift of the fastest-aging domain at the horizon.

    The least-slept domain ages fastest (lowest effective recovery), so
    its ΔVth after :data:`EVALUATION_HORIZON_YEARS` of the measured
    activity profile is the aging headroom the cache actually has.
    """

    name = "nbti_delta_vth"
    description = (
        f"worst-domain NBTI ΔVth (mV) after {EVALUATION_HORIZON_YEARS:.0f} "
        "years at the measured sleep profile"
    )
    provides = ("nbti_delta_vth_10y_mv",)

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        worst_sleep = min(measurement.sleep_fractions)
        model = NBTIModel()
        shift = model.delta_vth(
            years_to_seconds(EVALUATION_HORIZON_YEARS), AGING_P0, worst_sleep
        )
        return {"nbti_delta_vth_10y_mv": 1000.0 * float(shift)}


def _characterization_framework() -> CharacterizationFramework:
    """Memoized calibrated framework (butterfly solver is expensive)."""
    global _FRAMEWORK
    if _FRAMEWORK is None:
        from repro.aging.cell import CharacterizationFramework

        _FRAMEWORK = CharacterizationFramework()
    return _FRAMEWORK


_FRAMEWORK: CharacterizationFramework | None = None


class SNMMarginMetric(Metric):
    """Read-SNM margin over the failure threshold at the horizon.

    Runs the butterfly-curve solver for the worst (least-slept) domain
    at :data:`EVALUATION_HORIZON_YEARS`; positive margin means the cell
    is still alive then. Lazy — computed on demand, never on every
    simulation.
    """

    name = "snm_margin"
    description = (
        f"worst-domain read-SNM margin (mV) over the -20% failure "
        f"threshold after {EVALUATION_HORIZON_YEARS:.0f} years"
    )
    provides = ("snm_margin_10y_mv",)
    eager = False

    def compute(
        self, measurement: Measurement, lut: LifetimeLUT | None = None
    ) -> dict[str, Any]:
        framework = _characterization_framework()
        worst_sleep = min(measurement.sleep_fractions)
        snm = framework.snm_at(EVALUATION_HORIZON_YEARS, AGING_P0, worst_sleep)
        margin = snm - framework.snm_failure_threshold
        return {"snm_margin_10y_mv": 1000.0 * margin}


register_metric(EnergyMetric())
register_metric(LifetimeMetric())
register_metric(LifetimeSpreadMetric())
register_metric(IdlenessSpreadMetric())
register_metric(TransitionShareMetric())
register_metric(NBTIDeltaVthMetric())
register_metric(SNMMarginMetric())

#: Everything registered above ships in-tree and exists in any process
#: that imports this module; anything else — including a replace=True
#: override of a built-in *name* — is a plugin that parallel workers
#: must be handed explicitly. Snapshots hold the instances, so the
#: filters below are identity-based.
_BUILTIN_METRIC_OBJECTS = dict(_METRICS)
_BUILTIN_TEMPLATE_OBJECTS = dict(_TEMPLATE_REGISTRY)


def custom_metrics() -> tuple[Metric, ...]:
    """Registered metrics that are not built-ins (sorted by name)."""
    return tuple(
        metric
        for name, metric in sorted(_METRICS.items())
        if _BUILTIN_METRIC_OBJECTS.get(name) is not metric
    )


def custom_templates() -> tuple[MeasurementTemplate, ...]:
    """Registered templates that are not built-ins (sorted by name)."""
    return tuple(
        template
        for name, template in sorted(_TEMPLATE_REGISTRY.items())
        if _BUILTIN_TEMPLATE_OBJECTS.get(name) is not template
    )


def install_metrics(metrics: Iterable[Metric]) -> None:
    """Register ``metrics``, replacing same-name entries (worker setup)."""
    for metric in metrics:
        register_metric(metric, replace=True)


def install_templates(templates: Iterable[MeasurementTemplate]) -> None:
    """Register ``templates``, replacing same-name entries (worker setup)."""
    for template in templates:
        register_template(template, replace=True)
