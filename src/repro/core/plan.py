"""Shared per-trace precomputation: the *trace plan*.

A design-space sweep simulates one trace under dozens of configurations,
and most of the per-point work is identical across the grid: the address
decode depends only on the geometry's bit split, the re-indexing epoch
boundaries only on the update schedule, and the bank-sorted access
stream only on the routing (bank count × policy × schedule). A
:class:`TracePlan` memoizes each of those layers keyed by exactly the
configuration fields it depends on, so e.g. a ``breakeven_override``
axis reuses *everything* and a ``policy`` axis still reuses the decode
and the epoch boundaries.

The plan is engine-agnostic shared state:
:class:`~repro.core.fastsim.FastSimulator` (and, for the decode layer,
:class:`~repro.finegrain.sim.FineGrainSimulator`) accept one and build a
private plan when none is given — sharing is an optimization, never a
requirement, and every cached layer is a pure function of (trace, key),
so results are bit-identical with or without sharing. Plans live per
process: the parallel sweep ships the trace once per worker through the
pool initializer and each worker grows its own plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.power.idleness import IdleGapStructure, idle_gaps_from_sorted_accesses
from repro.trace.trace import Trace
from repro.utils.bitops import log2_exact, mask


@dataclass(frozen=True)
class BankOrder:
    """The bank-sorted view of one routed access stream.

    Only the projection idleness accounting actually consumes is
    retained — keeping the full ``physical``/``order`` permutation
    arrays per routing would dominate the plan's memory on long traces
    (they are cheap to recompute from the config when a caller needs
    them, and ``sorted_banks`` is just
    ``np.repeat(np.arange(num_banks), np.diff(splits))``).

    Attributes
    ----------
    sorted_cycles:
        The trace cycles reordered by (physical bank, arrival) — the
        stable argsort of the routed stream.
    splits:
        Segment boundaries: bank ``b`` owns
        ``sorted_cycles[splits[b]:splits[b + 1]]``.
    """

    sorted_cycles: np.ndarray
    splits: np.ndarray


class TracePlan:
    """Memoized per-trace state shared across simulation points.

    Parameters
    ----------
    trace:
        The trace every consumer of this plan must simulate; engines
        check with :meth:`matches` and refuse mismatched traces.
    """

    #: FIFO capacity of the per-routing idle-gap cache — the only layer
    #: holding O(accesses) arrays per *routing* rather than per trace.
    max_gap_routings: int = 8

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._cache: dict = {}

    # ------------------------------------------------------------------
    def matches(self, trace: Trace) -> bool:
        """True when ``trace`` is the plan's trace (identity or equality)."""
        mine = self.trace
        if mine is trace:
            return True
        return (
            len(mine) == len(trace)
            and mine.horizon == trace.horizon
            and bool(np.array_equal(mine.cycles, trace.cycles))
            and bool(np.array_equal(mine.addresses, trace.addresses))
        )

    def cached(self, key, compute):
        """Generic memoized section (used by the engines for their own
        derived state, e.g. the fast engine's hit counts)."""
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = compute()
            return value

    def __len__(self) -> int:
        """Number of cached sections (introspection/tests)."""
        return len(self._cache)

    # ------------------------------------------------------------------
    @staticmethod
    def schedule_key(config) -> tuple | None:
        """Hashable identity of the config's firing update schedule.

        ``None`` means no updates ever fire (static indexing, or a
        dynamic policy with neither a period nor explicit events).
        """
        if config.policy == "static":
            return None
        if config.update_events is not None:
            return ("events", config.update_events)
        if config.update_period_cycles is None:
            return None
        return ("period", config.update_period_cycles)

    def decode(self, offset_bits: int, index_bits: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(index, tag)`` arrays for a geometry's bit split."""

        def compute():
            addresses = self.trace.addresses
            index = (addresses >> offset_bits) & mask(index_bits)
            tag = addresses >> (offset_bits + index_bits)
            return index, tag

        return self.cached(("decode", offset_bits, index_bits), compute)

    def epoch_starts(self, config) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(boundaries, starts)`` of the firing update schedule.

        ``boundaries`` are the update cycles that actually fire (those at
        or before the last access); ``starts`` brackets each epoch's
        accesses: epoch ``e`` owns trace positions
        ``starts[e]:starts[e + 1]``.
        """

        def compute():
            trace = self.trace
            if len(trace) == 0:
                boundaries = np.empty(0, dtype=np.int64)
            else:
                schedule = config.make_update_schedule()
                boundaries = schedule.boundaries_up_to(int(trace.cycles[-1]))
            starts = np.concatenate(
                (
                    [0],
                    np.searchsorted(trace.cycles, boundaries, side="left"),
                    [len(trace)],
                )
            )
            return boundaries, starts

        return self.cached(("epochs", self.schedule_key(config)), compute)

    def _routing_key(self, kind: str, config) -> tuple:
        """Cache key covering exactly what routing depends on."""
        geometry = config.geometry
        return (
            kind,
            geometry.offset_bits,
            geometry.index_bits,
            config.num_banks,
            config.policy,
            self.schedule_key(config),
        )

    def _compute_bank_order(self, config) -> BankOrder:
        """Route the trace through ``config`` and sort by (bank, arrival).

        With a single bank the stream is already sorted and the stable
        argsort is skipped outright.
        """
        trace = self.trace
        cycles = trace.cycles
        n = len(trace)
        geometry = config.geometry
        num_banks = config.num_banks
        if num_banks == 1:
            return BankOrder(cycles, np.array([0, n], dtype=np.int64))
        index, _ = self.decode(geometry.offset_bits, geometry.index_bits)
        line_bits = geometry.index_bits - log2_exact(num_banks)
        logical_bank = index >> line_bits
        _, starts = self.epoch_starts(config)
        policy = config.make_policy()
        physical = np.empty(n, dtype=np.int64)
        for epoch in range(len(starts) - 1):
            if epoch > 0:
                policy.update()
            lo, hi = int(starts[epoch]), int(starts[epoch + 1])
            if lo == hi:
                continue
            physical[lo:hi] = policy.mapping()[logical_bank[lo:hi]]
        order = np.argsort(physical, kind="stable")
        sorted_banks = physical[order]
        sorted_cycles = cycles[order]
        splits = np.searchsorted(sorted_banks, np.arange(num_banks + 1))
        return BankOrder(sorted_cycles, splits)

    def bank_order(self, config) -> BankOrder:
        """Routed-and-sorted access stream for a config's routing.

        Ad-hoc convenience, computed fresh on each call (the decode and
        epoch layers it builds on are still cached): the engines go
        through :meth:`idle_gaps` instead, which retains only the much
        smaller per-routing gap structure.
        """
        return self._compute_bank_order(config)

    def idle_gaps(self, config) -> IdleGapStructure:
        """Cached breakeven-independent idle-gap structure per routing.

        This is the layer the fast engine's idleness accounting reads:
        the bank sort is computed transiently (not retained) and only
        the gap structure — the part every breakeven re-thresholds — is
        kept. The cache holds at most :attr:`max_gap_routings`
        structures (FIFO eviction), bounding plan memory on grids with
        many routings; eviction only costs a re-sort if an old routing
        recurs, never correctness.
        """
        key = self._routing_key("gaps", config)

        def compute():
            route = self._compute_bank_order(config)
            return idle_gaps_from_sorted_accesses(
                route.sorted_cycles, route.splits, 0, self.trace.horizon
            )

        gaps = self.cached(key, compute)
        gap_keys = [
            k for k in self._cache if isinstance(k, tuple) and k and k[0] == "gaps"
        ]
        if len(gap_keys) > self.max_gap_routings:
            for stale in gap_keys[: len(gap_keys) - self.max_gap_routings]:
                if stale != key:
                    del self._cache[stale]
        return gaps


def ensure_plan(plan: TracePlan | None, trace: Trace) -> TracePlan:
    """The plan to use for ``trace``: validate a given one, else build one."""
    if plan is None:
        return TracePlan(trace)
    if not plan.matches(trace):
        raise SimulationError("trace plan was built for a different trace")
    return plan
